"""``python -m tools.repro_lint`` entry point."""

from __future__ import annotations

import sys

from tools.repro_lint.framework import main

if __name__ == "__main__":
    sys.exit(main())
