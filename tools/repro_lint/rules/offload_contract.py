"""Rule ``offload-contract``: bounding backends match the driver contract.

``SearchDriver`` talks to pluggable bounding backends through exactly two
methods (see ``docs/ARCHITECTURE.md``, "The bound_block offload
contract")::

    bound_nodes(nodes)                 -> (bounds, simulated_s, measured_s)
    bound_block(block, siblings=False) -> (bounds, simulated_s, measured_s)

Four implementations exist today (local, batching service, distributed,
executor); the driver calls them interchangeably and unpacks a 3-tuple.
A fifth backend with a drifted signature or a 2-tuple return would fail
deep inside the solve loop — this rule fails it at lint time instead.

Checked per class method named ``bound_nodes``/``bound_block``:

* ``bound_nodes``: exactly one required parameter besides ``self``.
* ``bound_block``: a block parameter plus a ``siblings`` parameter with a
  default, and nothing else required.
* every ``return`` of a tuple literal has exactly 3 elements; bare
  ``return``/``return None`` is flagged.  Non-literal returns (e.g.
  ``return future.result()``) are beyond static reach and pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.framework import Finding, Rule, SourceModule

CONTRACT_METHODS = ("bound_nodes", "bound_block")


def _args_after_self(fn: ast.FunctionDef) -> tuple[list[ast.arg], int]:
    """(positional args after self, number of them having defaults)."""
    args = fn.args.posonlyargs + fn.args.args
    if args and args[0].arg in ("self", "cls"):
        args = args[1:]
    return args, len(fn.args.defaults)


def _check_signature(fn: ast.FunctionDef) -> str | None:
    """A human message when the signature drifts from the contract."""
    args, n_defaults = _args_after_self(fn)
    n_required = len(args) - n_defaults
    if fn.name == "bound_nodes":
        if n_required != 1:
            return (
                "bound_nodes must take exactly one required argument "
                "(the node sequence): bound_nodes(self, nodes)"
            )
        return None
    # bound_block
    if n_required != 1 or len(args) < 2:
        return (
            "bound_block must take one required block argument and a "
            "defaulted siblings flag: bound_block(self, block, siblings=False)"
        )
    if not any(arg.arg == "siblings" for arg in args[1:]) and not fn.args.kwonlyargs:
        return (
            "bound_block's optional parameter must be named 'siblings' "
            "(the driver passes it by keyword)"
        )
    return None


def _tuple_arity_violations(fn: ast.FunctionDef) -> Iterator[tuple[int, str]]:
    """(line, message) for each return that statically breaks 3-tuple arity."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return):
            continue
        value = node.value
        if value is None or (isinstance(value, ast.Constant) and value.value is None):
            yield (
                node.lineno,
                f"{fn.name} must return (bounds, simulated_s, measured_s); "
                "bare return/None breaks the driver's unpacking",
            )
        elif isinstance(value, ast.Tuple) and len(value.elts) != 3:
            yield (
                node.lineno,
                f"{fn.name} returns a {len(value.elts)}-tuple; the contract is "
                "the 3-tuple (bounds, simulated_s, measured_s)",
            )


class OffloadContractRule(Rule):
    name = "offload-contract"
    description = "bound_nodes/bound_block implementations match the driver backend contract"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in cls.body:
                if not isinstance(fn, ast.FunctionDef) or fn.name not in CONTRACT_METHODS:
                    continue
                message = _check_signature(fn)
                if message is not None:
                    yield Finding(
                        rule=self.name,
                        path=module.relpath,
                        line=fn.lineno,
                        message=f"{cls.name}.{fn.name}: {message}",
                    )
                for line, msg in _tuple_arity_violations(fn):
                    yield Finding(
                        rule=self.name,
                        path=module.relpath,
                        line=line,
                        message=f"{cls.name}.{fn.name}: {msg}",
                    )
