"""Rule ``single-loop``: one solve loop, owned by ``bb/driver.py``.

PR 4 unified the repo's eight hand-rolled solve loops behind one audited
``SearchDriver`` select→branch→bound→eliminate iteration.  The scaling
claims (and every counter the benchmarks assert) depend on that loop
staying singular: a second ``while frontier:`` loop elsewhere silently
forks the search semantics.

The rule flags any ``while`` statement whose condition reads a
frontier/pool value — an identifier named exactly ``pool``/``frontier``
or ending in ``_pool``/``_frontier``, as a bare name or a ``self.``/
attribute access — in any module other than ``bb/driver.py``.  Loops
that legitimately iterate a pool without being a solve loop (selection
operators, pool-construction helpers) carry an inline
``# repro-lint: ignore[single-loop]`` with the rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.framework import Finding, Rule, SourceModule

#: The only module allowed to run a frontier-driven ``while`` loop.
ALLOWED_PATHS = frozenset({"src/repro/bb/driver.py"})


def _is_frontier_name(name: str) -> bool:
    return name in ("pool", "frontier") or name.endswith(("_pool", "_frontier"))


def _frontier_names(test: ast.expr) -> list[str]:
    """Frontier/pool identifiers read by a ``while`` condition."""
    names = []
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and _is_frontier_name(node.id):
            names.append(node.id)
        elif isinstance(node, ast.Attribute) and _is_frontier_name(node.attr):
            names.append(node.attr)
    return names


class SingleLoopRule(Rule):
    name = "single-loop"
    description = "solve-style while-loops over a frontier/pool belong to bb/driver.py only"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath in ALLOWED_PATHS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While):
                continue
            names = _frontier_names(node.test)
            if not names:
                continue
            yield Finding(
                rule=self.name,
                path=module.relpath,
                line=node.lineno,
                message=(
                    f"while-loop over {', '.join(sorted(set(names)))!s} outside bb/driver.py; "
                    "route the iteration through SearchDriver or justify with "
                    "'# repro-lint: ignore[single-loop] -- <why this is not a solve loop>'"
                ),
            )
