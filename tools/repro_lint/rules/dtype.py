"""Rule ``dtype``: frontier columns keep their documented dtypes.

The structure-of-arrays frontier (PR 3) is int32 columns plus an int64
packed sort key ``(lb << 41 | depth << 32 | order)``; the vectorized
kernels assume those widths.  A ``np.array([...])`` without an explicit
dtype silently upcasts to int64 on one platform and int32 on another —
doubling memory traffic or corrupting the packed key.  This rule demands
that every array construction in the frontier/kernel modules name its
dtype, and that literal dtypes come from the documented set.

Non-literal dtype expressions (``dtype=arr.dtype``, ``dtype=dt``) pass:
they are deliberate propagation, not a silent default.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.repro_lint.framework import Finding, Rule, SourceModule

#: Modules holding frontier-column / kernel array constructions.
CHECKED_PATHS = frozenset(
    {
        "src/repro/bb/frontier.py",
        "src/repro/core/kernels.py",
    }
)

#: numpy constructors that take a ``dtype`` and default it silently.
CONSTRUCTORS = frozenset(
    {"array", "zeros", "empty", "ones", "full", "asarray", "arange", "fromiter"}
)

#: The documented dtype vocabulary: int32 columns, int64 packed keys,
#: float32/float64 bound vectors, bool_ masks.
ALLOWED_DTYPES = frozenset({"int32", "int64", "bool_", "float32", "float64"})


def _np_constructor(call: ast.Call) -> Optional[str]:
    """The constructor name if ``call`` is ``np.<constructor>(...)``."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in CONSTRUCTORS
    ):
        return func.attr
    return None


def _literal_dtype_name(value: ast.expr) -> Optional[str]:
    """The dtype's literal name when statically known, else ``None``."""
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        if value.value.id in ("np", "numpy"):
            return value.attr
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    return None


class DtypeRule(Rule):
    name = "dtype"
    description = "frontier/kernel array constructions carry explicit documented dtypes"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath not in CHECKED_PATHS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = _np_constructor(node)
            if ctor is None:
                continue
            dtype_kw = next((kw for kw in node.keywords if kw.arg == "dtype"), None)
            if dtype_kw is None:
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"np.{ctor}(...) without an explicit dtype= in a "
                        "frontier/kernel module; the columnar layout is int32 "
                        "columns / int64 packed keys — silent platform-dependent "
                        "defaults are how upcasts reappear"
                    ),
                )
                continue
            literal = _literal_dtype_name(dtype_kw.value)
            if literal is not None and literal not in ALLOWED_DTYPES:
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"np.{ctor}(..., dtype={literal}) is outside the "
                        f"documented set {{{', '.join(sorted(ALLOWED_DTYPES))}}}"
                    ),
                )
