"""Rule ``dtype``: frontier columns keep their documented dtypes.

The structure-of-arrays frontier (PR 3) is int32 columns plus an int64
packed sort key ``(lb << 41 | depth << 32 | order)``; the vectorized
kernels assume those widths.  A ``np.array([...])`` without an explicit
dtype silently upcasts to int64 on one platform and int32 on another —
doubling memory traffic or corrupting the packed key.  This rule demands
that every array construction in the frontier/kernel modules name its
dtype, and that literal dtypes come from the documented set.

Non-literal dtype expressions (``dtype=arr.dtype``, ``dtype=dt``) pass:
they are deliberate propagation, not a silent default.

On top of the module-wide explicit-dtype demand, the named frontier
columns and the segmented-index cache arrays are pinned to their exact
documented dtype (:data:`COLUMN_DTYPES`): the packed selection key and
the per-segment minima must be int64, every row-id / counter column
int32, the masks and dirty flags boolean.  Assigning
``self._seg_krow = np.zeros(..., dtype=np.int64)`` is not an upcast bug
a width-agnostic check would catch — it is a contract violation this
rule reports directly.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.repro_lint.framework import Finding, Rule, SourceModule

#: Modules holding frontier-column / kernel array constructions.
CHECKED_PATHS = frozenset(
    {
        "src/repro/bb/frontier.py",
        "src/repro/core/kernels.py",
    }
)

#: numpy constructors that take a ``dtype`` and default it silently.
CONSTRUCTORS = frozenset(
    {"array", "zeros", "empty", "ones", "full", "asarray", "arange", "fromiter"}
)

#: The documented dtype vocabulary: int32 columns, int64 packed keys,
#: float32/float64 bound vectors, bool/bool_ masks.
ALLOWED_DTYPES = frozenset({"int32", "int64", "bool", "bool_", "float32", "float64"})

#: Exact dtype contract per named frontier/index column: the node columns
#: are int32, the packed selection key and the cached per-segment key
#: minima int64, the segment row-id caches int32 (rows are int32
#: everywhere), masks and segment dirty flags boolean.
COLUMN_DTYPES = {
    "_lb": {"int32"},
    "_depth": {"int32"},
    "_order": {"int32"},
    "_tid": {"int32"},
    "_release": {"int32"},
    "_key": {"int64"},
    "_mask": {"bool", "bool_"},
    "_seg_key": {"int64"},
    "_seg_krow": {"int32"},
    "_seg_omax": {"int32"},
    "_seg_orow": {"int32"},
    "_seg_dirty": {"bool", "bool_"},
}


def _np_constructor(call: ast.Call) -> Optional[str]:
    """The constructor name if ``call`` is ``np.<constructor>(...)``."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in CONSTRUCTORS
    ):
        return func.attr
    return None


def _literal_dtype_name(value: ast.expr) -> Optional[str]:
    """The dtype's literal name when statically known, else ``None``."""
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        if value.value.id in ("np", "numpy"):
            return value.attr
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    if isinstance(value, ast.Name) and value.id in ("bool", "int", "float"):
        return value.id
    return None


def _self_attr_target(node: ast.Assign) -> Optional[str]:
    """The attribute name for a single-target ``self.<name> = ...`` assign."""
    if len(node.targets) != 1:
        return None
    target = node.targets[0]
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


class DtypeRule(Rule):
    name = "dtype"
    description = "frontier/kernel array constructions carry explicit documented dtypes"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath not in CHECKED_PATHS:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                yield from self._check_column_assign(module, node)
            if not isinstance(node, ast.Call):
                continue
            ctor = _np_constructor(node)
            if ctor is None:
                continue
            dtype_kw = next((kw for kw in node.keywords if kw.arg == "dtype"), None)
            if dtype_kw is None:
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"np.{ctor}(...) without an explicit dtype= in a "
                        "frontier/kernel module; the columnar layout is int32 "
                        "columns / int64 packed keys — silent platform-dependent "
                        "defaults are how upcasts reappear"
                    ),
                )
                continue
            literal = _literal_dtype_name(dtype_kw.value)
            if literal is not None and literal not in ALLOWED_DTYPES:
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"np.{ctor}(..., dtype={literal}) is outside the "
                        f"documented set {{{', '.join(sorted(ALLOWED_DTYPES))}}}"
                    ),
                )

    def _check_column_assign(
        self, module: SourceModule, node: ast.Assign
    ) -> Iterator[Finding]:
        """Pin named frontier/index columns to their exact documented dtype."""
        attr = _self_attr_target(node)
        if attr is None or attr not in COLUMN_DTYPES:
            return
        call = node.value
        if not isinstance(call, ast.Call) or _np_constructor(call) is None:
            return
        dtype_kw = next((kw for kw in call.keywords if kw.arg == "dtype"), None)
        if dtype_kw is None:
            return  # the module-wide explicit-dtype check already fires
        literal = _literal_dtype_name(dtype_kw.value)
        if literal is not None and literal not in COLUMN_DTYPES[attr]:
            expected = "/".join(sorted(COLUMN_DTYPES[attr]))
            yield Finding(
                rule=self.name,
                path=module.relpath,
                line=node.lineno,
                message=(
                    f"self.{attr} is documented as {expected} but is "
                    f"constructed with dtype={literal}; the columnar layout "
                    "contract (int32 rows/columns, int64 packed keys and "
                    "segment minima, boolean masks) must hold exactly"
                ),
            )
