"""The rule registry of ``repro lint``.

Each module contributes one :class:`~tools.repro_lint.framework.Rule`
subclass; :func:`all_rules` instantiates them in reporting order.  Adding
a rule = adding a module here and listing it below — the framework
handles walking, suppressions, baselining, and output.
"""

from __future__ import annotations

from tools.repro_lint.framework import Rule
from tools.repro_lint.rules.bare_except import BareExceptRule
from tools.repro_lint.rules.dtype import DtypeRule
from tools.repro_lint.rules.guarded_by import GuardedByRule
from tools.repro_lint.rules.layer_dag import LayerDagRule
from tools.repro_lint.rules.offload_contract import OffloadContractRule
from tools.repro_lint.rules.single_loop import SingleLoopRule

__all__ = ["all_rules"]


def all_rules() -> list[Rule]:
    """The full rule suite, in reporting order."""
    return [
        SingleLoopRule(),
        LayerDagRule(),
        GuardedByRule(),
        DtypeRule(),
        OffloadContractRule(),
        BareExceptRule(),
    ]
