"""Rule ``guarded-by``: a lightweight static race detector.

The threaded modules (the service dispatch/session/service trio and the
work-stealing incumbent) protect shared state with explicit locks.  The
convention this rule enforces: an attribute that the lock protects is
*declared* in ``__init__`` with a trailing annotation::

    self._pending: list[_Pending] = []  # guarded-by: _lock, _wakeup

and every later read or write of that attribute must sit lexically inside
a ``with self._lock:`` / ``with self._wakeup:`` block naming one of its
declared guards.  Accesses in the declaring ``__init__`` are free (no
other thread can see the object yet).  Deliberate unlocked accesses —
"caller holds the lock" helpers, documented-safe stale reads — carry a
targeted ``# repro-lint: ignore[guarded-by]`` with the rationale, which
is exactly the reviewer-visible record this rule exists to create.

This is lexical, not a happens-before analysis: it catches the dominant
bug shape (someone touches ``self._pending`` in a new method and forgets
the lock) without false certainty about the rest.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.repro_lint.framework import Finding, Rule, SourceModule

#: Modules whose classes are scanned for guarded-by declarations.
THREADED_PATHS = frozenset(
    {
        "src/repro/service/dispatch.py",
        "src/repro/service/session.py",
        "src/repro/service/service.py",
        "src/repro/bb/worksteal.py",
    }
)

_ANNOTATION = re.compile(r"#\s*guarded-by:\s*(?P<guards>[A-Za-z0-9_,\s]+)")


def _declared_guards(module: SourceModule, line: int) -> frozenset[str]:
    """Guard names from a ``# guarded-by:`` comment on ``line`` (or empty)."""
    if not (1 <= line <= len(module.lines)):
        return frozenset()
    match = _ANNOTATION.search(module.lines[line - 1])
    if not match:
        return frozenset()
    return frozenset(g.strip() for g in match.group("guards").split(",") if g.strip())


def _self_attr(node: ast.expr) -> str | None:
    """The attribute name of a ``self.X`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_guard_ranges(cls: ast.ClassDef) -> list[tuple[int, int, str]]:
    """(start, end, guard) for every ``with self.<guard>:`` block in ``cls``."""
    ranges = []
    for node in ast.walk(cls):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            ctx = item.context_expr
            # "with self._lock:" and "with self._cv:" both count; so does
            # "with self._value.get_lock():" (multiprocessing.Value).
            if isinstance(ctx, ast.Call):
                ctx = ctx.func
                if isinstance(ctx, ast.Attribute):  # .get_lock() / .acquire()
                    ctx = ctx.value
            guard = _self_attr(ctx)
            if guard is not None:
                ranges.append((node.lineno, node.end_lineno or node.lineno, guard))
    return ranges


class GuardedByRule(Rule):
    name = "guarded-by"
    description = "annotated shared attributes are only touched under their declared lock"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath not in THREADED_PATHS:
            return
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        init = next(
            (
                n
                for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name == "__init__"
            ),
            None,
        )
        if init is None:
            return

        # Pass 1: collect "# guarded-by:" declarations from __init__.
        guarded: dict[str, frozenset[str]] = {}
        for stmt in ast.walk(init):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                guards = _declared_guards(module, stmt.lineno)
                if guards:
                    guarded[attr] = guards
        if not guarded:
            return

        # Pass 2: every self.<attr> access outside __init__ must be inside
        # a with-block holding one of the attribute's declared guards.
        lock_ranges = _with_guard_ranges(cls)
        init_span = (init.lineno, init.end_lineno or init.lineno)
        for node in ast.walk(cls):
            attr = _self_attr(node) if isinstance(node, ast.Attribute) else None
            if attr is None or attr not in guarded:
                continue
            line = node.lineno
            if init_span[0] <= line <= init_span[1]:
                continue
            guards = guarded[attr]
            held = any(
                start <= line <= end and guard in guards
                for start, end, guard in lock_ranges
            )
            if held:
                continue
            yield Finding(
                rule=self.name,
                path=module.relpath,
                line=line,
                message=(
                    f"'{cls.name}.{attr}' is guarded by "
                    f"{', '.join(sorted(guards))} but accessed outside a "
                    f"'with self.<guard>:' block; acquire the lock or document "
                    "the safe unlocked access with "
                    "'# repro-lint: ignore[guarded-by] -- <why>'"
                ),
            )
