"""Rule ``guarded-by``: a lightweight static race detector.

The threaded modules (the service dispatch/session/service trio, the
work-stealing incumbent and the async offload pipeline) protect shared
state with explicit locks.  The convention this rule enforces: an
attribute that the lock protects is *declared* in ``__init__`` with a
trailing annotation::

    self._pending: list[_Pending] = []  # guarded-by: _lock, _wakeup

and every later read or write of that attribute must sit lexically inside
a ``with self._lock:`` / ``with self._wakeup:`` block naming one of its
declared guards.  Accesses in the declaring ``__init__`` are free (no
other thread can see the object yet).  Deliberate unlocked accesses —
"caller holds the lock" helpers, documented-safe stale reads — carry a
targeted ``# repro-lint: ignore[guarded-by]`` with the rationale, which
is exactly the reviewer-visible record this rule exists to create.

Pipeline state that is not lock-protected but *thread-confined* — written
by the offload worker, read by the joiner strictly after an ``Event``
hand-off — declares the confinement instead::

    self._value: Any = None  # confined-to: _finish, result

and every later access of that attribute must sit inside one of the
listed methods (``__init__`` stays free).  Someone touching the field
from a new method — where neither the confinement nor the happens-before
edge is established — gets flagged.

This is lexical, not a happens-before analysis: it catches the dominant
bug shape (someone touches ``self._pending`` in a new method and forgets
the lock, or reads a ticket payload outside the hand-off pair) without
false certainty about the rest.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.repro_lint.framework import Finding, Rule, SourceModule

#: Modules whose classes are scanned for guarded-by declarations.
THREADED_PATHS = frozenset(
    {
        "src/repro/service/dispatch.py",
        "src/repro/service/session.py",
        "src/repro/service/service.py",
        "src/repro/bb/worksteal.py",
        "src/repro/bb/offload.py",
    }
)

_ANNOTATION = re.compile(r"#\s*guarded-by:\s*(?P<guards>[A-Za-z0-9_,\s]+)")
_CONFINED = re.compile(r"#\s*confined-to:\s*(?P<methods>[A-Za-z0-9_,\s]+)")


def _declared_guards(module: SourceModule, line: int) -> frozenset[str]:
    """Guard names from a ``# guarded-by:`` comment on ``line`` (or empty)."""
    if not (1 <= line <= len(module.lines)):
        return frozenset()
    match = _ANNOTATION.search(module.lines[line - 1])
    if not match:
        return frozenset()
    return frozenset(g.strip() for g in match.group("guards").split(",") if g.strip())


def _declared_confinement(module: SourceModule, line: int) -> frozenset[str]:
    """Method names from a ``# confined-to:`` comment on ``line`` (or empty)."""
    if not (1 <= line <= len(module.lines)):
        return frozenset()
    match = _CONFINED.search(module.lines[line - 1])
    if not match:
        return frozenset()
    return frozenset(m.strip() for m in match.group("methods").split(",") if m.strip())


def _self_attr(node: ast.expr) -> str | None:
    """The attribute name of a ``self.X`` expression, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_guard_ranges(cls: ast.ClassDef) -> list[tuple[int, int, str]]:
    """(start, end, guard) for every ``with self.<guard>:`` block in ``cls``."""
    ranges = []
    for node in ast.walk(cls):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            ctx = item.context_expr
            # "with self._lock:" and "with self._cv:" both count; so does
            # "with self._value.get_lock():" (multiprocessing.Value).
            if isinstance(ctx, ast.Call):
                ctx = ctx.func
                if isinstance(ctx, ast.Attribute):  # .get_lock() / .acquire()
                    ctx = ctx.value
            guard = _self_attr(ctx)
            if guard is not None:
                ranges.append((node.lineno, node.end_lineno or node.lineno, guard))
    return ranges


class GuardedByRule(Rule):
    name = "guarded-by"
    description = "annotated shared attributes are only touched under their declared lock"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath not in THREADED_PATHS:
            return
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        init = next(
            (
                n
                for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                and n.name == "__init__"
            ),
            None,
        )
        if init is None:
            return

        # Pass 1: collect "# guarded-by:" / "# confined-to:" declarations
        # from __init__.
        guarded: dict[str, frozenset[str]] = {}
        confined: dict[str, frozenset[str]] = {}
        for stmt in ast.walk(init):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                guards = _declared_guards(module, stmt.lineno)
                if guards:
                    guarded[attr] = guards
                methods = _declared_confinement(module, stmt.lineno)
                if methods:
                    confined[attr] = methods
        if not guarded and not confined:
            return

        # Pass 2: every self.<attr> access outside __init__ must be inside
        # a with-block holding one of the attribute's declared guards
        # (guarded-by) or inside one of its declared methods (confined-to).
        lock_ranges = _with_guard_ranges(cls)
        method_spans = {
            n.name: (n.lineno, n.end_lineno or n.lineno)
            for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        init_span = (init.lineno, init.end_lineno or init.lineno)
        for node in ast.walk(cls):
            attr = _self_attr(node) if isinstance(node, ast.Attribute) else None
            if attr is None or (attr not in guarded and attr not in confined):
                continue
            line = node.lineno
            if init_span[0] <= line <= init_span[1]:
                continue
            if attr in guarded:
                guards = guarded[attr]
                held = any(
                    start <= line <= end and guard in guards
                    for start, end, guard in lock_ranges
                )
                if held:
                    continue
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=line,
                    message=(
                        f"'{cls.name}.{attr}' is guarded by "
                        f"{', '.join(sorted(guards))} but accessed outside a "
                        f"'with self.<guard>:' block; acquire the lock or document "
                        "the safe unlocked access with "
                        "'# repro-lint: ignore[guarded-by] -- <why>'"
                    ),
                )
                continue
            methods = confined[attr]
            inside = any(
                method_spans[name][0] <= line <= method_spans[name][1]
                for name in methods
                if name in method_spans
            )
            if inside:
                continue
            yield Finding(
                rule=self.name,
                path=module.relpath,
                line=line,
                message=(
                    f"'{cls.name}.{attr}' is confined to "
                    f"{', '.join(sorted(methods))} but accessed from another "
                    f"method, where the thread-confinement hand-off is not "
                    "established; move the access or document it with "
                    "'# repro-lint: ignore[guarded-by] -- <why>'"
                ),
            )
