"""Rule ``layer-dag``: imports must respect the layer DAG.

The package is layered (``docs/ARCHITECTURE.md``, "Layer map")::

    flowshop  ->  bb  ->  {gpu, core, perf}  ->  {service, experiments, cli}

A module may import its own layer or any lower one; an upward import
(e.g. ``bb`` importing ``service``) couples the search core to an
orchestration layer and is flagged.  Imports inside ``if TYPE_CHECKING:``
blocks are ignored — they never execute, so they create no runtime edge.
``repro/__init__.py`` and ``repro/__main__.py`` are package facades and
exempt.

One module gets a stricter, additional contract: ``service/protocol.py``
is the wire format and must stay importable on a client machine with no
solver installed — the rule flags any module-level (executed) import of
``numpy`` or of the solver layers (``flowshop``/``bb``/``gpu``/``core``/
``perf``) there.  Function-local lazy imports are fine.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from tools.repro_lint.framework import Finding, Rule, SourceModule

#: Layer rank of each top-level ``repro`` subpackage/module.  A module of
#: rank r may import ranks <= r.  Unlisted names are not ranked (skipped).
RANKS = {
    "flowshop": 0,
    "bb": 1,
    "gpu": 2,
    "core": 2,
    "perf": 2,
    "service": 3,
    "experiments": 3,
    "cli": 3,
}

#: Package facades allowed to import from any layer.
EXEMPT_PATHS = frozenset({"src/repro/__init__.py", "src/repro/__main__.py"})

#: The wire-format module and the imports banned at its module level.
PROTOCOL_PATH = "src/repro/service/protocol.py"
PROTOCOL_BANNED_TOP = frozenset({"numpy", "cupy"})
PROTOCOL_BANNED_LAYERS = frozenset({"flowshop", "bb", "gpu", "core", "perf"})


def _module_layer(relpath: str) -> Optional[str]:
    """The ``RANKS`` key of a checked file, or ``None`` if unranked."""
    parts = relpath.split("/")
    if parts[:2] != ["src", "repro"] or len(parts) < 3:
        return None
    top = parts[2]
    if top.endswith(".py"):
        top = top[: -len(".py")]
    return top if top in RANKS else None


def _dotted_package(relpath: str) -> str:
    """The importing module's package, for resolving relative imports."""
    parts = relpath.split("/")[1:]  # drop "src"
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + []
    return ".".join(parts)


def _resolve_import(module: SourceModule, node: ast.AST) -> list[tuple[str, int]]:
    """Absolute dotted targets of an import node, with the node's line."""
    targets = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            targets.append((alias.name, node.lineno))
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            base = node.module or ""
        else:
            package_parts = _dotted_package(module.relpath).split(".")
            if node.level > 1:
                package_parts = package_parts[: -(node.level - 1)]
            base = ".".join(package_parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if base:
            targets.append((base, node.lineno))
        else:  # "from . import x" — each name is its own module
            prefix = ".".join(_dotted_package(module.relpath).split("."))
            for alias in node.names:
                targets.append((f"{prefix}.{alias.name}", node.lineno))
    return targets


def _target_layer(dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1] if parts[1] in RANKS else None


def _type_checking_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    """Line ranges of ``if TYPE_CHECKING:`` blocks (imports there are free)."""
    ranges = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )
        if is_tc:
            ranges.append((node.lineno, node.end_lineno or node.lineno))
    return ranges


def _function_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    """Line ranges of function bodies (imports there are lazy)."""
    return [
        (node.lineno, node.end_lineno or node.lineno)
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _in_ranges(line: int, ranges: list[tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in ranges)


class LayerDagRule(Rule):
    name = "layer-dag"
    description = "imports respect flowshop -> bb -> {gpu, core, perf} -> {service, experiments, cli}"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.relpath in EXEMPT_PATHS:
            return
        layer = _module_layer(module.relpath)
        tc_ranges = _type_checking_ranges(module.tree)
        fn_ranges = _function_ranges(module.tree)
        is_protocol = module.relpath == PROTOCOL_PATH

        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for dotted, line in _resolve_import(module, node):
                if _in_ranges(line, tc_ranges):
                    continue

                # Layer ordering (runtime imports anywhere in the module,
                # including lazy function-level ones: they still execute).
                if layer is not None:
                    target = _target_layer(dotted)
                    if target is not None and RANKS[target] > RANKS[layer]:
                        yield Finding(
                            rule=self.name,
                            path=module.relpath,
                            line=line,
                            message=(
                                f"layer '{layer}' (rank {RANKS[layer]}) imports "
                                f"'{dotted}' from higher layer '{target}' "
                                f"(rank {RANKS[target]}); the DAG is "
                                "flowshop -> bb -> {gpu, core, perf} -> "
                                "{service, experiments, cli}"
                            ),
                        )

                # service/protocol.py: module-level imports must be
                # solver-free so clients can speak the wire format alone.
                if is_protocol and not _in_ranges(line, fn_ranges):
                    top = dotted.split(".")[0]
                    banned = top in PROTOCOL_BANNED_TOP or (
                        top == "repro" and _target_layer(dotted) in PROTOCOL_BANNED_LAYERS
                    )
                    if banned:
                        yield Finding(
                            rule=self.name,
                            path=module.relpath,
                            line=line,
                            message=(
                                f"service/protocol.py imports '{dotted}' at module "
                                "level; the wire format must stay importable "
                                "without numpy or the solver — move the import "
                                "inside the function that needs it"
                            ),
                        )
