"""Rule ``bare-except``: no silent exception swallowing in recovery code.

The fault-tolerance work (checkpoint/resume, session restarts, launch
retry/degrade) hinges on failures *reaching* the recovery machinery: a
``except: pass`` between a crash and the restart logic turns a recovered
fault into a silent wrong answer or a hang.  Scoped to the two layers
that own recovery — ``src/repro/service/`` and ``src/repro/bb/`` — the
rule flags:

- a bare ``except:`` handler, always (it also catches ``SystemExit`` and
  ``KeyboardInterrupt``);
- an ``except Exception``/``except BaseException`` handler (alone or in
  a tuple) whose body does nothing — only ``pass``/``...`` — so the
  failure is dropped on the floor.

Handlers that catch broadly but *act* (log, retry, degrade, re-raise)
are fine.  Deliberate recovery sites that must stay broad carry an
inline ``# repro-lint: ignore[bare-except] -- <why>`` with the rationale,
which doubles as the annotation ``docs/SERVING.md`` points auditors at.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.framework import Finding, Rule, SourceModule

#: The layers owning fault recovery; elsewhere broad handlers are out of scope.
CHECKED_PREFIXES = ("src/repro/service/", "src/repro/bb/")

#: Exception names so broad that a do-nothing handler hides real faults.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    """Does the handler's type include Exception/BaseException?"""
    expr = handler.type
    elements = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    for element in elements:
        if isinstance(element, ast.Name) and element.id in BROAD_NAMES:
            return True
        if isinstance(element, ast.Attribute) and element.attr in BROAD_NAMES:
            return True
    return False


def _body_does_nothing(handler: ast.ExceptHandler) -> bool:
    """Only ``pass`` / ``...`` statements: the exception is swallowed."""
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            if statement.value.value is Ellipsis:
                continue
        return False
    return True


class BareExceptRule(Rule):
    name = "bare-except"
    description = (
        "no bare/broad-and-silent except handlers in service/ and bb/ "
        "(fault recovery must see failures)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.relpath.startswith(CHECKED_PREFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        "bare 'except:' also swallows SystemExit/KeyboardInterrupt; "
                        "name the exceptions, or justify a recovery site with "
                        "'# repro-lint: ignore[bare-except] -- <why>'"
                    ),
                )
            elif _catches_broad(node) and _body_does_nothing(node):
                yield Finding(
                    rule=self.name,
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        "'except Exception: pass' drops the failure before the "
                        "recovery machinery (restart/retry/degrade) can see it; "
                        "handle it, narrow it, or justify with "
                        "'# repro-lint: ignore[bare-except] -- <why>'"
                    ),
                )
