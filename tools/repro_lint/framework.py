"""The ``repro lint`` checker framework.

The repository's load-bearing design claims — one solve loop, a layered
import DAG, lock-guarded shared state, explicit frontier dtypes, the
``(bounds, simulated_s, measured_s)`` offload contract — live in
``docs/ARCHITECTURE.md`` prose.  This framework machine-checks them: it
walks the source tree once, parses every file into an ``ast`` module plus
its raw lines and suppression comments, runs each registered
:class:`Rule` over the parsed modules, filters the findings through
inline suppressions and the committed baseline, and renders what is left
as human-readable text or JSON.

Everything here is pure stdlib (``ast`` + ``tokenize``); the rules live
in :mod:`tools.repro_lint.rules`.

Suppressions
------------
A finding is suppressed by a comment naming its rule::

    while pool:  # repro-lint: ignore[single-loop] -- selection operator, not a solve loop

The comment suppresses the named rule(s) on its own line.  Placed on the
header line of a ``def``/``class``/``while``/``with``/``for``/``if``
statement, it covers the whole statement body — used for "caller holds
the lock" helper functions.  Several rules may be listed:
``ignore[guarded-by, single-loop]``.  Text after ``--`` is the rationale
and is strongly encouraged; ``repro lint`` is the reviewer's record of
*why* an exception is sound.

Baseline
--------
``tools/repro_lint/baseline.json`` holds grandfathered findings as
``{"rule", "path", "snippet"}`` fingerprints (the stripped source line,
so entries survive unrelated line drift).  Baselined findings are
reported as a suppressed count, not failures; ``--update-baseline``
rewrites the file from the current findings.  The committed baseline is
empty: every historical finding was either fixed or justified with an
inline suppression when the suite landed.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "SourceModule",
    "Rule",
    "Baseline",
    "LintReport",
    "iter_source_files",
    "load_module",
    "run_lint",
    "main",
]

#: Directories (relative to the lint root) whose ``*.py`` files are checked.
CHECKED_DIRS = ("src/repro",)

#: Marker introducing a suppression comment.
SUPPRESS_MARKER = "repro-lint:"

#: Compound statements whose header-line suppression covers the whole body.
_BLOCK_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.With,
    ast.AsyncWith,
    ast.If,
    ast.Try,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    message: str

    @property
    def fingerprint_key(self) -> tuple[str, str]:
        return (self.rule, self.path)

    def fingerprint(self, snippet: str) -> dict[str, str]:
        """The baseline entry identifying this finding across line drift."""
        return {"rule": self.rule, "path": self.path, "snippet": snippet}


class SourceModule:
    """One parsed source file: AST, raw lines, and suppression ranges."""

    def __init__(self, root: Path, path: Path, source: str):
        self.root = root
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: line -> set of rule names suppressed exactly on that line
        self.line_suppressions: dict[int, set[str]] = _collect_suppressions(source)
        #: (start, end, rules) ranges from suppressions on block header lines
        self.range_suppressions: list[tuple[int, int, set[str]]] = []
        self._extend_block_suppressions()

    def _extend_block_suppressions(self) -> None:
        if not self.line_suppressions:
            return
        for node in ast.walk(self.tree):
            if not isinstance(node, _BLOCK_NODES):
                continue
            body = getattr(node, "body", None)
            if not body:
                continue
            header_end = body[0].lineno - 1
            for line in range(node.lineno, header_end + 1):
                rules = self.line_suppressions.get(line)
                if rules:
                    end = getattr(node, "end_lineno", None) or node.lineno
                    self.range_suppressions.append((node.lineno, end, set(rules)))

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether an inline comment suppresses ``rule`` at ``line``."""
        if rule in self.line_suppressions.get(line, ()):
            return True
        for start, end, rules in self.range_suppressions:
            if start <= line <= end and rule in rules:
                return True
        return False

    def snippet(self, line: int) -> str:
        """The stripped source text of ``line`` (baseline fingerprints)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line numbers to the rule names suppressed by their comments."""
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith(SUPPRESS_MARKER):
                continue
            directive = text[len(SUPPRESS_MARKER) :].strip()
            if not directive.startswith("ignore[") or "]" not in directive:
                continue
            names = directive[len("ignore[") : directive.index("]")]
            rules = {name.strip() for name in names.split(",") if name.strip()}
            if rules:
                suppressions.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:  # pragma: no cover - unparseable files fail earlier
        pass
    return suppressions


class Rule:
    """Base class of one architecture/concurrency check.

    Subclasses set :attr:`name` (the suppression/baseline identifier) and
    implement :meth:`check`, yielding :class:`Finding` objects.  Rules
    never see suppressions or the baseline — the framework filters.
    """

    name = "abstract"
    description = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError


class Baseline:
    """The committed ledger of grandfathered findings."""

    def __init__(self, entries: list[dict[str, str]]):
        self.entries = entries
        self._index: dict[tuple[str, str], list[str]] = {}
        for entry in entries:
            key = (entry.get("rule", ""), entry.get("path", ""))
            self._index.setdefault(key, []).append(entry.get("snippet", ""))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls([])
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = payload.get("findings", []) if isinstance(payload, dict) else payload
        return cls(list(entries))

    def matches(self, finding: Finding, snippet: str) -> bool:
        return snippet in self._index.get(finding.fingerprint_key, ())

    @staticmethod
    def dump(findings: Iterable[tuple[Finding, str]], path: Path) -> None:
        entries = [finding.fingerprint(snippet) for finding, snippet in findings]
        payload = {
            "comment": (
                "Grandfathered repro-lint findings; remove entries as they are "
                "fixed. Regenerate with: repro lint --update-baseline"
            ),
            "findings": entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }


def iter_source_files(root: Path) -> Iterator[Path]:
    """Every ``*.py`` file under the checked directories, sorted."""
    for rel in CHECKED_DIRS:
        base = root / rel
        if not base.is_dir():
            continue
        yield from sorted(base.rglob("*.py"))


def load_module(root: Path, path: Path) -> SourceModule:
    return SourceModule(root, path, path.read_text(encoding="utf-8"))


def run_lint(
    root: Path,
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
    collect_all: bool = False,
) -> LintReport:
    """Run ``rules`` over the tree at ``root``; filter and report.

    ``collect_all=True`` disables suppression/baseline filtering and
    returns every raw finding (used by ``--update-baseline``).
    """
    baseline = baseline if baseline is not None else Baseline([])
    report = LintReport()
    for path in iter_source_files(root):
        try:
            module = load_module(root, path)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule="parse",
                    path=path.relative_to(root).as_posix(),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        report.files_checked += 1
        for rule in rules:
            for finding in rule.check(module):
                if collect_all:
                    report.findings.append(finding)
                    continue
                if module.is_suppressed(finding.rule, finding.line):
                    report.suppressed += 1
                    continue
                if baseline.matches(finding, module.snippet(finding.line)):
                    report.baselined += 1
                    continue
                report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def format_human(report: LintReport, rules: Sequence[Rule]) -> str:
    lines = []
    for finding in report.findings:
        lines.append(f"{finding.path}:{finding.line}: [{finding.rule}] {finding.message}")
    summary = (
        f"repro lint: {len(report.findings)} finding(s) in {report.files_checked} files "
        f"({report.suppressed} suppressed inline, {report.baselined} baselined; "
        f"rules: {', '.join(rule.name for rule in rules)})"
    )
    lines.append(summary)
    return "\n".join(lines)


def _default_root() -> Optional[Path]:
    """Walk up from the CWD to the directory holding this checker."""
    current = Path.cwd().resolve()
    for candidate in (current, *current.parents):
        if (candidate / "tools" / "repro_lint" / "framework.py").is_file():
            return candidate
    return None


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based architecture & concurrency checks for this repository",
    )
    parser.add_argument(
        "--root",
        help="repository root to lint (default: walk up from the CWD)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="stdout format (default: human)",
    )
    parser.add_argument(
        "--output",
        help="also write the JSON report to this path (CI artifact)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file (default: <root>/tools/repro_lint/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current unsuppressed findings",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro lint`` / ``python -m tools.repro_lint``."""
    from tools.repro_lint.rules import all_rules

    args = build_arg_parser().parse_args(argv)
    root = Path(args.root).resolve() if args.root else _default_root()
    if root is None:
        print("repro lint: cannot locate the repository root; pass --root", file=sys.stderr)
        return 2
    baseline_path = (
        Path(args.baseline) if args.baseline else root / "tools" / "repro_lint" / "baseline.json"
    )
    rules = all_rules()

    if args.update_baseline:
        raw = run_lint(root, rules, collect_all=True)
        keep = []
        modules: dict[str, SourceModule] = {}
        for finding in raw.findings:
            module = modules.get(finding.path)
            if module is None:
                module = load_module(root, root / finding.path)
                modules[finding.path] = module
            if not module.is_suppressed(finding.rule, finding.line):
                keep.append((finding, module.snippet(finding.line)))
        Baseline.dump(keep, baseline_path)
        print(f"baseline updated: {len(keep)} finding(s) -> {baseline_path}")
        return 0

    report = run_lint(root, rules, baseline=Baseline.load(baseline_path))
    if args.output:
        Path(args.output).write_text(
            json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(format_human(report, rules))
    return 0 if report.ok else 1
