"""``repro lint`` — AST-based architecture & concurrency checks.

Run as ``repro lint`` (via the package CLI) or directly::

    python -m tools.repro_lint [--format json] [--root DIR]

See :mod:`tools.repro_lint.framework` for the checker framework and
:mod:`tools.repro_lint.rules` for the rule suite.
"""

from __future__ import annotations

from tools.repro_lint.framework import (
    Baseline,
    Finding,
    LintReport,
    Rule,
    SourceModule,
    main,
    run_lint,
)
from tools.repro_lint.rules import all_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "Rule",
    "SourceModule",
    "all_rules",
    "main",
    "run_lint",
]
