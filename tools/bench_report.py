#!/usr/bin/env python3
"""Aggregate per-benchmark JSON artifacts into one trajectory report.

Each benchmark under ``benchmarks/`` that takes ``--json`` writes a
self-describing result file (``bench_frontier.json``,
``bench_frontier_index.json``, ...).  CI uploads them individually, which
is fine for archaeology but makes the perf trajectory across PRs hard to
eyeball.  This tool folds **all** per-bench JSONs into a single
top-level report (``BENCH_report.json`` in CI) keyed by bench name:

* every input's full result dict is preserved under ``benches.<name>``,
* the headline figures (any key matching ``speedup*`` or ``*_per_s``,
  plus declared floors) are copied up into ``headlines.<name>`` so the
  cross-PR diff is one small dict per bench,
* inputs that are missing are skipped with a warning (a bench that did
  not run should not fail the aggregation of the ones that did).

Usage (mirrors the CI bench-smoke job)::

    python tools/bench_report.py --output BENCH_report.json \
        bench_frontier.json bench_overlap.json ...

Exit code 0 when at least one input was aggregated; 1 when none were.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: result keys copied into the per-bench headline summary (exact match)
HEADLINE_KEYS = ("pending", "smoke", "speedup_floor")
#: result-key patterns copied into the headline summary (substring match)
HEADLINE_PATTERNS = ("speedup", "_per_s")


def headline(results: dict) -> dict:
    """The small cross-PR summary of one bench's full result dict."""
    picked = {}
    for key, value in results.items():
        if key in HEADLINE_KEYS or any(p in key for p in HEADLINE_PATTERNS):
            if isinstance(value, float):
                value = round(value, 3)
            picked[key] = value
    return picked


def bench_name(path: Path, results: dict) -> str:
    """Prefer the self-declared ``bench`` key; fall back to the filename."""
    name = results.get("bench")
    if isinstance(name, str) and name:
        return name
    stem = path.stem
    return stem[len("bench_") :] if stem.startswith("bench_") else stem


def aggregate(paths: list[Path]) -> dict:
    """Fold the readable inputs into the report dict (see module doc)."""
    benches: dict[str, dict] = {}
    headlines: dict[str, dict] = {}
    skipped: list[str] = []
    for path in paths:
        try:
            results = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"bench_report: skipping {path}: {exc}", file=sys.stderr)
            skipped.append(str(path))
            continue
        if not isinstance(results, dict):
            print(f"bench_report: skipping {path}: not a JSON object", file=sys.stderr)
            skipped.append(str(path))
            continue
        name = bench_name(path, results)
        benches[name] = results
        headlines[name] = headline(results)
    return {"headlines": headlines, "benches": benches, "skipped_inputs": skipped}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="+", help="per-bench JSON result files")
    parser.add_argument(
        "--output",
        default="BENCH_report.json",
        help="aggregated report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    report = aggregate([Path(p) for p in args.inputs])
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    for name in sorted(report["headlines"]):
        print(f"{name}: {report['headlines'][name]}")
    print(f"aggregated {len(report['benches'])} bench(es) -> {args.output}")
    return 0 if report["benches"] else 1


if __name__ == "__main__":
    sys.exit(main())
