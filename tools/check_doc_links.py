#!/usr/bin/env python3
"""Check that intra-repository markdown links resolve to real files.

Scans every ``*.md`` file in the repository (root, ``docs/`` and any other
tracked directory), extracts inline links ``[text](target)``, and verifies
each relative target exists on disk.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped; a
``path#anchor`` target is checked for the path part only.

Exit code 0 when every link resolves; 1 otherwise, listing each broken
link as ``file:line: target``.  Run by the CI docs job alongside
``python -m doctest`` over ARCHITECTURE.md / SERVING.md::

    python tools/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links; images (``![alt](src)``) are excluded — badge
#: sources are GitHub-relative URLs that only resolve on the forge
LINK_PATTERN = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
#: directories never scanned (build output, caches, VCS internals)
SKIP_DIRS = {".git", ".ruff_cache", "__pycache__", ".pytest_cache", "node_modules", ".venv"}


def iter_markdown_files(root: Path):
    """Yield every ``*.md`` under ``root``, skipping cache/VCS directories."""
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def check_file(path: Path, root: Path) -> list[str]:
    """Return ``file:line: target`` entries for broken links in one file."""
    broken: list[str] = []
    in_code_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure in-page anchor
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(root)}:{lineno}: {match.group(1)}")
    return broken


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]).resolve() if args else Path(__file__).resolve().parent.parent
    broken: list[str] = []
    checked = 0
    for path in iter_markdown_files(root):
        broken.extend(check_file(path, root))
        checked += 1
    if broken:
        print(f"{len(broken)} broken markdown link(s) across {checked} file(s):")
        for entry in broken:
            print(f"  {entry}")
        return 1
    print(f"all markdown links resolve ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
