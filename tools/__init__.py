"""Repository development tooling (not shipped with the ``repro`` package)."""
