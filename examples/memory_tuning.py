#!/usr/bin/env python3
"""Data-access optimisation and pool-size auto-tuning.

The second half of the paper is about *where* to place the six lower-bound
data structures on the GPU memory hierarchy and *how large* the off-loaded
pools should be.  This example exposes both analyses programmatically:

1. Table I for each instance class (sizes, access counts, packed bytes).
2. The placement ranking of :func:`repro.core.analyze_placements`: which
   combinations fit in shared memory, the occupancy they allow and the
   predicted kernel cost (the paper's recommendation — PTM + JM — should
   come out on top whenever it fits).
3. The pool-size auto-tuner in action (the paper's stated follow-up work).

Run with::

    python examples/memory_tuning.py
"""

from __future__ import annotations

from repro import DataStructureComplexity, GpuBBConfig, PoolSizeAutotuner, TESLA_C2050
from repro.core import analyze_placements
from repro.experiments.table1 import format_table1, table1
from repro.flowshop import taillard_instance

INSTANCE_CLASSES = ((20, 20), (50, 20), (100, 20), (200, 20))


def show_table1() -> None:
    print(format_table1(table1(200, 20)))
    print()


def show_placement_ranking() -> None:
    for n_jobs, n_machines in INSTANCE_CLASSES:
        complexity = DataStructureComplexity(n=n_jobs, m=n_machines)
        print(f"Placement ranking for {n_jobs}x{n_machines} on {TESLA_C2050.name}:")
        for analysis in analyze_placements(complexity, TESLA_C2050):
            if analysis.fits:
                print(
                    f"  {analysis.name:<18} shared/block={analysis.shared_bytes_per_block:>6} B  "
                    f"active warps={analysis.active_warps_per_sm:>2}  "
                    f"kernel cycles/thread={analysis.per_thread_cycles:,.0f}"
                )
            else:
                print(
                    f"  {analysis.name:<18} shared/block={analysis.shared_bytes_per_block:>6} B  "
                    f"does not fit"
                )
        print()


def show_autotuning() -> None:
    for n_jobs, n_machines in ((20, 20), (200, 20)):
        instance = taillard_instance(n_jobs, n_machines, index=1)
        tuner = PoolSizeAutotuner(instance, GpuBBConfig())
        report = tuner.run()
        print(f"Auto-tuned pool size for {instance.name}: {report.best_pool_size}")
        for sample in report.samples:
            print(
                f"  pool {sample.pool_size:>7}: predicted speed-up x{sample.predicted_speedup:.1f}"
                f"  ({sample.per_node_s * 1e6:.2f} us/node)"
            )
        print()


def main() -> None:
    show_table1()
    show_placement_ranking()
    show_autotuning()


if __name__ == "__main__":
    main()
