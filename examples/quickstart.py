#!/usr/bin/env python3
"""Quickstart: solve a flow-shop instance with the GPU-accelerated B&B.

This example walks through the library's public API end to end:

1. build a small Taillard-style instance,
2. compute an initial upper bound with the NEH heuristic,
3. solve the instance to optimality with the GPU-accelerated Branch-and-Bound
   (the paper's algorithm) and with the serial reference engine,
4. print the exploration statistics and the simulated device accounting,
5. reproduce the Figure 1 walk-through on a 3-job instance (the search tree
   the paper uses to introduce B&B).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GpuBBConfig,
    GpuBranchAndBound,
    SequentialBranchAndBound,
    neh_heuristic,
    random_instance,
)
from repro.flowshop import FlowShopInstance


def solve_small_instance() -> None:
    """Solve an 11x6 instance with both engines and compare."""
    instance = random_instance(11, 6, seed=3)
    print(f"Instance {instance.name}: {instance.n_jobs} jobs x {instance.n_machines} machines")

    heuristic = neh_heuristic(instance)
    print(f"NEH upper bound           : {heuristic.makespan}")

    gpu_result = GpuBranchAndBound(instance, GpuBBConfig(pool_size=512)).solve()
    print(f"GPU B&B optimal makespan  : {gpu_result.best_makespan}")
    print(f"  proved optimal          : {gpu_result.proved_optimal}")
    print(f"  nodes bounded           : {gpu_result.stats.nodes_bounded}")
    print(f"  pools off-loaded        : {gpu_result.stats.pools_evaluated}")
    print(f"  simulated device time   : {gpu_result.simulated_device_time_s * 1e3:.3f} ms")
    print(f"  placement               : {gpu_result.config.placement.name}")

    serial_result = SequentialBranchAndBound(instance).solve()
    print(f"Serial B&B optimal        : {serial_result.best_makespan}")
    print(f"  nodes bounded           : {serial_result.stats.nodes_bounded}")
    print(f"  bounding fraction       : {serial_result.stats.bounding_fraction:.1%}")

    assert gpu_result.best_makespan == serial_result.best_makespan
    print("Both engines agree on the optimum.\n")


def figure1_walkthrough() -> None:
    """Reproduce the paper's Figure 1: the B&B tree of a 3-job instance."""
    # A 3-job, 2-machine instance small enough to draw the whole tree.
    instance = FlowShopInstance([[4, 3], [2, 5], [6, 2]], name="figure1-toy")
    solver = SequentialBranchAndBound(
        instance, initial_upper_bound=float("inf"), trace=True, selection="fifo"
    )
    result = solver.solve()
    print("Figure 1 style walk-through (3-job instance)")
    print(f"  optimal makespan: {result.best_makespan}, order {result.best_order}")
    for event in result.trace:
        label = "".join(f"J{j + 1}" for j in event.prefix) or "root"
        print(
            f"  node {label:<9} LB/cost={event.lower_bound:<4} "
            f"UB at visit={event.upper_bound_at_visit:<6} -> {event.action}"
        )


def main() -> None:
    solve_small_instance()
    figure1_walkthrough()


if __name__ == "__main__":
    main()
