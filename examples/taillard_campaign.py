#!/usr/bin/env python3
"""Reproduce the paper's evaluation campaign on the Taillard instance classes.

This example regenerates, with the simulated Tesla C2050, the full sweep of
the paper's Section IV/V:

* Table II  — speed-ups with every matrix in global memory,
* Table III — speed-ups with PTM and JM in shared memory,
* Table IV  — the multi-threaded CPU baseline,
* Figure 4  — global vs shared placement at pool size 262144,
* Figure 5  — GPU vs multi-threaded CPU at ~500 GFLOPS,

and prints, for every table, the cell-by-cell comparison against the
published numbers.

Run with::

    python examples/taillard_campaign.py
"""

from __future__ import annotations

from repro.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    figure4,
    figure5,
    table2,
    table3,
    table4,
)


def print_series(title: str, series_by_label) -> None:
    print(title)
    for label, series in series_by_label.items():
        points = ", ".join(f"{int(x)} jobs: x{v:.1f}" for x, v in zip(series.xs(), series.values()))
        print(f"  {label:<24} {points}")
    print()


def main() -> None:
    for build, reference, name in (
        (table2, PAPER_TABLE2, "Table II"),
        (table3, PAPER_TABLE3, "Table III"),
        (table4, PAPER_TABLE4, "Table IV"),
    ):
        table = build()
        print(table.to_text())
        comparison = table.compare(reference)
        print(
            f"\n{name} vs paper: mean |error| = "
            f"{comparison.mean_absolute_relative_error:.1%}, "
            f"max |error| = {comparison.max_absolute_relative_error:.1%}\n"
        )

    print_series("Figure 4 - placement comparison at pool 262144:", figure4())
    print_series("Figure 5 - GPU vs multi-threaded at ~500 GFLOPS:", figure5())

    fig5 = figure5()
    gpu_best = dict(zip(fig5["gpu"].xs(), fig5["gpu"].values()))
    cpu_best = dict(zip(fig5["multithreaded"].xs(), fig5["multithreaded"].values()))
    for n_jobs in sorted(gpu_best):
        ratio = gpu_best[n_jobs] / cpu_best[n_jobs]
        print(f"  {int(n_jobs)} jobs: GPU is x{ratio:.1f} faster than the multi-threaded CPU B&B")


if __name__ == "__main__":
    main()
