#!/usr/bin/env python3
"""Compare the three Branch-and-Bound engines on the same instance.

Solves one medium instance with

* the serial engine (the paper's ``T_cpu`` reference),
* the multi-core engine (Section V's baseline, process backend),
* the GPU-accelerated engine (the paper's contribution, simulated device),

and reports, for each: the optimal makespan (they must agree), the number of
nodes bounded, the wall-clock time on this host, and — for the GPU engine —
the simulated device time plus the measured throughput advantage of the
batched kernel over the scalar one.

Run with::

    python examples/compare_backends.py [n_jobs] [n_machines]
"""

from __future__ import annotations

import sys
import time

from repro import (
    GpuBBConfig,
    GpuBranchAndBound,
    MulticoreBranchAndBound,
    SequentialBranchAndBound,
    random_instance,
)
from repro.bb.operators import bound_nodes_batch, encode_pool
from repro.experiments.protocol import collect_pending_pool
from repro.flowshop.bounds import LowerBoundData, lower_bound


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    n_machines = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    instance = random_instance(n_jobs, n_machines, seed=11)
    print(f"Instance: {instance.name} ({n_jobs} jobs x {n_machines} machines)\n")

    # --- serial ----------------------------------------------------------
    start = time.perf_counter()
    serial = SequentialBranchAndBound(instance).solve()
    serial_s = time.perf_counter() - start
    print(
        f"serial    : C_max={serial.best_makespan}  nodes={serial.stats.nodes_bounded:>6}  "
        f"time={serial_s:.3f}s  bounding={serial.stats.bounding_fraction:.0%}"
    )

    # --- multi-core (work-stealing, shared incumbent) ---------------------
    start = time.perf_counter()
    multicore = MulticoreBranchAndBound(instance, n_workers=4, backend="process").solve()
    multicore_s = time.perf_counter() - start
    print(
        f"multicore : C_max={multicore.best_makespan}  nodes={multicore.stats.nodes_bounded:>6}  "
        f"time={multicore_s:.3f}s  (4 work-stealing worker processes)"
    )

    # --- GPU-accelerated --------------------------------------------------
    start = time.perf_counter()
    gpu = GpuBranchAndBound(instance, GpuBBConfig(pool_size=4096)).solve()
    gpu_s = time.perf_counter() - start
    print(
        f"gpu       : C_max={gpu.best_makespan}  nodes={gpu.stats.nodes_bounded:>6}  "
        f"time={gpu_s:.3f}s  pools={gpu.stats.pools_evaluated}  "
        f"simulated device={gpu.simulated_device_time_s * 1e3:.2f}ms"
    )

    assert serial.best_makespan == multicore.best_makespan == gpu.best_makespan
    print("\nAll engines agree on the optimal makespan.\n")

    # --- measured kernel throughput: scalar vs batched --------------------
    data = LowerBoundData(instance)
    pool = collect_pending_pool(instance, pool_size=512, data=data, upper_bound=float("inf"))
    if pool:
        start = time.perf_counter()
        for node in pool:
            lower_bound(data, node.prefix, release=node.release)
        scalar_s = time.perf_counter() - start

        mask, release = encode_pool(pool, data.n_jobs, data.n_machines)
        start = time.perf_counter()
        bound_nodes_batch(pool, data)
        batch_s = time.perf_counter() - start
        print(f"bounding a pool of {len(pool)} nodes on this host:")
        print(f"  scalar kernel : {scalar_s * 1e3:8.2f} ms")
        print(
            f"  batched kernel: {batch_s * 1e3:8.2f} ms  "
            f"(x{scalar_s / max(batch_s, 1e-12):.1f} faster)"
        )


if __name__ == "__main__":
    main()
