#!/usr/bin/env python3
"""Future-work extension: a cluster of GPU-accelerated nodes.

The paper's conclusion plans to extend the GPU-accelerated B&B "to a cluster
of GPU-accelerated multi-core processors".  This example exercises the
reproduction's implementation of that extension:

1. scaling of one distributed bounding step with the node count, for a large
   and a small pool (the pool-size trade-off reappears one level up: small
   pools cannot amortise the scatter/gather cost of the interconnect);
2. an exact distributed solve of a small instance with
   :class:`repro.core.ClusterBranchAndBound`, checked against the single-GPU
   engine.

Run with::

    python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro import (
    ClusterBranchAndBound,
    ClusterSpec,
    GpuBBConfig,
    GpuBranchAndBound,
    random_instance,
)
from repro.core.cluster import ClusterSimulator
from repro.flowshop.bounds import DataStructureComplexity

NODE_COUNTS = (1, 2, 4, 8, 16)


def show_step_scaling() -> None:
    complexity = DataStructureComplexity(n=200, m=20)
    simulator = ClusterSimulator(ClusterSpec(n_nodes=8))
    print("Scaling of one distributed bounding step (200x20):")
    for pool_size, label in ((262144, "pool 262144"), (4096, "pool 4096")):
        efficiency = simulator.scaling_efficiency(complexity, pool_size, NODE_COUNTS)
        series = ", ".join(f"{n} nodes: {eff:.2f}" for n, eff in efficiency.items())
        print(f"  {label:<12} parallel efficiency -> {series}")
    print()


def show_distributed_solve() -> None:
    instance = random_instance(9, 5, seed=21)
    single = GpuBranchAndBound(instance, GpuBBConfig(pool_size=256)).solve()
    cluster = ClusterBranchAndBound(
        instance, ClusterSpec(n_nodes=4), GpuBBConfig(pool_size=256)
    ).solve()
    print(f"Distributed solve of {instance.name}:")
    print(
        f"  single GPU : C_max={single.best_makespan}  "
        f"simulated device {single.simulated_device_time_s * 1e3:.2f} ms"
    )
    print(
        f"  4-node     : C_max={cluster.best_makespan}  "
        f"simulated step time {cluster.simulated_device_time_s * 1e3:.2f} ms "
        f"(incl. scatter/gather)"
    )
    assert single.best_makespan == cluster.best_makespan
    print("  both engines agree on the optimum")


def main() -> None:
    show_step_scaling()
    show_distributed_solve()


if __name__ == "__main__":
    main()
