#!/usr/bin/env python3
"""Solve-as-a-service: concurrent sessions sharing fused bounding launches.

Spins up the :class:`~repro.service.SolveService` in-process, submits
several Taillard-style instances concurrently (two clients, several
sessions each), and prints per-session results plus the dispatcher's
batch-coalescing statistics — the cross-session analogue of the paper's
node pooling: N sessions' pending bounding batches fused into one kernel
launch amortize the per-launch overhead N ways.

Every result is bit-identical to a stand-alone sequential solve of the
same instance (same makespan, same permutation, same counters); only the
number of kernel launches changes.  For the serial-vs-concurrent launch
accounting see ``benchmarks/bench_service.py``; for the over-the-wire
version of this workflow see ``repro serve`` and ``docs/SERVING.md``.

Run with::

    python examples/serve_concurrent.py
"""

from __future__ import annotations

import asyncio

from repro.flowshop import random_instance, taillard_instance
from repro.service import FlushPolicy, SolveParams, SolveService

#: (label, instance, params) — a mixed workload: several sessions per
#: distinct instance (only same-instance batches can share a launch)
WORKLOAD = [
    ("tai-20x5 #1", taillard_instance(20, 5, index=1), SolveParams(max_nodes=400)),
    ("rand-8x5", random_instance(8, 5, seed=17), SolveParams()),
    ("rand-6x4", random_instance(6, 4, seed=3), SolveParams()),
    ("tai-20x5 #1", taillard_instance(20, 5, index=1), SolveParams(max_nodes=400)),
    ("rand-8x5", random_instance(8, 5, seed=17), SolveParams()),
    ("rand-6x4", random_instance(6, 4, seed=3), SolveParams()),
]


async def main() -> None:
    async with SolveService(
        max_active_sessions=len(WORKLOAD),
        flush_policy=FlushPolicy(max_wait_s=0.05),
    ) as service:
        for i, (label, instance, params) in enumerate(WORKLOAD):
            client = "alice" if i % 2 == 0 else "bob"
            await service.submit(f"req-{i}", instance, params, client_id=client)

        print(f"{len(WORKLOAD)} sessions submitted, all solving concurrently\n")
        print(f"{'session':>8} {'instance':<12} {'makespan':>9} {'optimal':>8} "
              f"{'bounded':>8} {'pools':>6}")
        for i, (label, _, _) in enumerate(WORKLOAD):
            result = await service.result(f"req-{i}")
            print(
                f"{result.session_id:>8} {label:<12} {result.makespan:>9} "
                f"{str(result.proved_optimal):>8} "
                f"{result.stats.nodes_bounded:>8} {result.stats.pools_evaluated:>6}"
            )

        stats = service.dispatch_stats
        print("\ndispatcher coalescing:")
        print(f"  bounding requests   : {stats.n_requests} "
              f"({stats.n_rows} nodes)")
        print(f"  kernel launches     : {stats.n_launches} "
              f"-> {stats.requests_per_launch:.2f} requests amortized per launch")
        print(f"  largest fused batch : {stats.max_requests_coalesced} requests "
              f"/ {stats.max_rows_coalesced} nodes in one launch")
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(stats.flush_reasons.items()))
        print(f"  flushes             : {stats.n_flushes} ({reasons})")


if __name__ == "__main__":
    asyncio.run(main())
