"""Pruning-statistic conservation across every engine.

Every node whose lower bound was evaluated meets exactly one fate in a run
that completes: it is branched, pruned (eagerly at elimination, lazily at
selection, or by a shared-incumbent re-prune), or evaluated as a leaf.
Engines that drop stale nodes silently would break the identity

    nodes_bounded == nodes_branched + nodes_pruned + leaves_evaluated

which is what the Table IV explored-node comparisons rely on.
"""

from __future__ import annotations

import pytest

from repro.bb import MulticoreBranchAndBound, SequentialBranchAndBound
from repro.core import ClusterBranchAndBound, ClusterSpec, GpuBBConfig, GpuBranchAndBound
from repro.core.pipeline import HybridBranchAndBound, HybridConfig


def assert_conserved(stats):
    assert stats.nodes_bounded == (
        stats.nodes_branched + stats.nodes_pruned + stats.leaves_evaluated
    )


class TestConservation:
    def test_sequential(self, medium_instance):
        result = SequentialBranchAndBound(medium_instance).solve()
        assert result.proved_optimal
        assert_conserved(result.stats)

    @pytest.mark.parametrize("pool_size", [4, 64])
    def test_gpu_engine_counts_lazy_pruning(self, medium_instance, pool_size):
        # small pools force many iterations, so stale nodes pile up in the
        # pool and are dropped lazily at selection time
        result = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=pool_size)).solve()
        assert result.proved_optimal
        assert_conserved(result.stats)

    def test_cluster_engine(self, medium_instance):
        result = ClusterBranchAndBound(
            medium_instance, ClusterSpec(n_nodes=3), GpuBBConfig(pool_size=16)
        ).solve()
        assert result.proved_optimal
        assert_conserved(result.stats)

    def test_hybrid_engine(self, small_instance):
        result = HybridBranchAndBound(
            small_instance,
            HybridConfig(n_explorers=2, gpu=GpuBBConfig(pool_size=16)),
        ).solve()
        assert result.proved_optimal
        assert_conserved(result.stats)

    @pytest.mark.parametrize("mode", ["static", "worksteal"])
    def test_multicore_engines(self, medium_instance, mode):
        result = MulticoreBranchAndBound(
            medium_instance,
            n_workers=4,
            backend="thread",
            mode=mode,
            decomposition_depth=2,
        ).solve()
        assert result.proved_optimal
        assert_conserved(result.stats)

    def test_worksteal_with_aggressive_polling(self, medium_instance):
        # poll_interval=1 exercises the pool re-prune path on every pop
        result = MulticoreBranchAndBound(
            medium_instance,
            n_workers=4,
            backend="thread",
            mode="worksteal",
            poll_interval=1,
        ).solve()
        assert result.proved_optimal
        assert_conserved(result.stats)
