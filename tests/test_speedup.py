"""Tests for the speed-up arithmetic helpers."""

from __future__ import annotations

import pytest

from repro.perf.speedup import SpeedupSeries, efficiency, speedup


class TestScalars:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_efficiency(self):
        assert efficiency(10.0, 2.0, 5) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)
        with pytest.raises(ValueError):
            speedup(-1.0, 1.0)
        with pytest.raises(ValueError):
            efficiency(10.0, 2.0, 0)


class TestSpeedupSeries:
    def test_add_and_query(self):
        series = SpeedupSeries("gpu")
        series.add(4096, 40.0)
        series.add(8192, 60.0)
        assert series.xs() == [4096.0, 8192.0]
        assert series.values() == [40.0, 60.0]
        assert series.best == (8192.0, 60.0)
        assert series.mean == pytest.approx(50.0)

    def test_relative_to(self):
        shared = SpeedupSeries.from_mapping("shared", {1: 100.0, 2: 90.0})
        global_ = SpeedupSeries.from_mapping("global", {1: 80.0, 2: 90.0, 3: 50.0})
        ratio = shared.relative_to(global_)
        assert ratio.points == {1.0: pytest.approx(1.25), 2.0: pytest.approx(1.0)}

    def test_from_pairs(self):
        series = SpeedupSeries.from_pairs("x", [(1, 2.0), (2, 3.0)])
        assert series.values() == [2.0, 3.0]

    def test_rejects_non_positive(self):
        series = SpeedupSeries("x")
        with pytest.raises(ValueError):
            series.add(1, 0.0)

    def test_empty_series_errors(self):
        series = SpeedupSeries("x")
        with pytest.raises(ValueError):
            _ = series.best
        with pytest.raises(ValueError):
            _ = series.mean
