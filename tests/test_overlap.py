"""Sync == async: the two-slot offload pipeline changes wall clock, not the tree.

The asynchronous driver overlaps host selection/branching with backend
bounding on a dedicated worker thread.  Its acceptance bar is absolute:
every figure a solve reports — makespan, permutation, every
``SearchStats`` counter, iteration count, simulated device time — must be
bit-identical to the synchronous path, across both layouts, all budget
shapes, checkpoint/resume round-trips and the full driver golden grid.
Only the wall-clock metrics (``measured_s``, ``overlap_saved_wall_s``)
may differ.
"""

from __future__ import annotations

import asyncio
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.driver import LocalBounding, SearchDriver, SearchHooks, SearchLimits
from repro.bb.frontier import BlockFrontier, Trail, bound_block, root_block
from repro.bb.node import root_node
from repro.bb.offload import AsyncOffload, SlotWorker
from repro.bb.operators import bound_node
from repro.bb.pool import make_pool
from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.snapshot import CheckpointPolicy, dumps_snapshot, load_header, loads_snapshot
from repro.bb.stats import SearchStats
from repro.core.cluster import ClusterBranchAndBound, ClusterSpec
from repro.core.config import GpuBBConfig
from repro.core.gpu_bb import GpuBranchAndBound
from repro.core.pipeline import HybridBranchAndBound, HybridConfig
from repro.flowshop import random_instance
from repro.flowshop.bounds import LowerBoundData
from repro.service import BatchDispatcher, SolveService, SolveSession
from repro.service.session import SessionConfig

from test_driver import COUNTERS, GOLDENS, MEDIUM, SMALL

# ------------------------------------------------------------------ #
#  direct-driver harness (LocalBounding supports micro-chunk launches,
#  so these runs exercise the chunked pipeline, not just the wrapper)
# ------------------------------------------------------------------ #


def _drive_block(
    instance,
    *,
    overlap,
    batch_size=6,
    limits=None,
    max_pending=None,
    checkpoint=None,
    on_checkpoint=None,
    double_buffer=False,
    seed_state=None,
):
    data = LowerBoundData(instance)
    hooks = SearchHooks(on_checkpoint=on_checkpoint)
    driver = SearchDriver(
        instance,
        offload=LocalBounding(data),
        batch_size=batch_size,
        overlap=overlap,
        limits=limits,
        hooks=hooks,
        checkpoint=checkpoint,
        double_buffer=double_buffer,
    )
    if seed_state is None:
        trail = Trail()
        frontier = BlockFrontier(
            instance.n_jobs, instance.n_machines, trail, max_pending=max_pending
        )
        root = root_block(instance, trail)
        bound_block(data, root)
        stats = SearchStats(nodes_bounded=1)
        frontier.push_block(root)
        upper_bound, best_order, next_order = float("inf"), (), 1
    else:
        frontier, trail, upper_bound, best_order, stats, next_order = seed_state
    outcome = driver.run(
        frontier,
        upper_bound=upper_bound,
        best_order=best_order,
        stats=stats,
        trail=trail,
        next_order=next_order,
    )
    return outcome, stats


def _drive_object(instance, *, overlap, batch_size=6, limits=None):
    data = LowerBoundData(instance)
    driver = SearchDriver(
        instance,
        offload=LocalBounding(data),
        layout="object",
        batch_size=batch_size,
        overlap=overlap,
        limits=limits,
    )
    pool = make_pool("best-first")
    root = root_node(instance)
    bound_node(root, data)
    stats = SearchStats(nodes_bounded=1)
    pool.push(root)
    outcome = driver.run(pool, upper_bound=float("inf"), best_order=(), stats=stats)
    return outcome, stats


def _assert_outcomes_identical(sync, async_, sync_stats, async_stats):
    assert async_.upper_bound == sync.upper_bound
    assert async_.best_order == sync.best_order
    assert async_.best_value == sync.best_value
    assert async_.completed == sync.completed
    assert async_.iterations == sync.iterations
    assert async_.simulated_s == pytest.approx(sync.simulated_s, abs=1e-12)
    assert async_.next_order == sync.next_order
    for counter in COUNTERS:
        assert getattr(async_stats, counter) == getattr(sync_stats, counter), counter


# ------------------------------------------------------------------ #
#  the driver golden grid, solved asynchronously
# ------------------------------------------------------------------ #

#: multicore runs the single-step worker shape per process; the engine
#: does not take the overlap knob (the CLI rejects it explicitly)
ASYNC_KEYS = sorted(k for k in GOLDENS if not k.startswith("multicore"))


def _run_async(key: str):
    """The async twin of ``test_driver._run``: same engines, overlap='async'."""
    layout = "object" if "_object" in key else "block"
    if key.startswith("sequential"):
        kwargs: dict = {"layout": layout, "overlap": "async"}
        if key.endswith("_noneh"):
            kwargs["initial_upper_bound"] = float("inf")
        if key.endswith("_budget40"):
            kwargs["max_nodes"] = 40
        if key.endswith("_trace"):
            kwargs["trace"] = True
            return SequentialBranchAndBound(SMALL, **kwargs).solve()
        if key.endswith("_depth-first"):
            kwargs["selection"] = "depth-first"
        if key.endswith("_fifo"):
            kwargs["selection"] = "fifo"
        return SequentialBranchAndBound(MEDIUM, **kwargs).solve()
    if key.startswith("gpu"):
        if key.endswith("_pool4_iter7"):
            config = GpuBBConfig(
                pool_size=4, max_iterations=7, layout=layout, overlap="async"
            )
        else:
            config = GpuBBConfig(pool_size=16, layout=layout, overlap="async")
        return GpuBranchAndBound(MEDIUM, config).solve()
    if key.startswith("cluster"):
        return ClusterBranchAndBound(
            MEDIUM,
            ClusterSpec(n_nodes=3),
            GpuBBConfig(pool_size=16, layout=layout, overlap="async"),
        ).solve()
    assert key.startswith("hybrid")
    return HybridBranchAndBound(
        SMALL,
        HybridConfig(
            n_explorers=2, gpu=GpuBBConfig(pool_size=16, layout=layout, overlap="async")
        ),
    ).solve()


class TestAsyncGoldenEquivalence:
    """Async engines reproduce the pre-driver goldens bit for bit."""

    @pytest.mark.parametrize("key", ASYNC_KEYS)
    def test_matches_golden(self, key):
        golden = GOLDENS[key]
        result = _run_async(key)
        assert result.best_makespan == golden["best_makespan"]
        assert list(result.best_order) == golden["best_order"]
        assert result.proved_optimal == golden["proved_optimal"]
        for counter in COUNTERS:
            assert getattr(result.stats, counter) == golden["stats"][counter], counter
        if "trace" in golden:
            got = [
                [list(e.prefix), int(e.lower_bound), float(e.upper_bound_at_visit), e.action]
                for e in result.trace
            ]
            assert got == golden["trace"]
        if "simulated_device_time_s" in golden:
            assert result.simulated_device_time_s == pytest.approx(
                golden["simulated_device_time_s"], abs=1e-12
            )
            assert len(result.iterations) == golden["n_iterations"]


# ------------------------------------------------------------------ #
#  property: random instances x layouts x budgets
# ------------------------------------------------------------------ #

_BUDGETS = {
    "none": None,
    "nodes": SearchLimits(max_nodes=25),
    "iterations": SearchLimits(max_iterations=4),
}


class TestSyncAsyncProperty:
    @given(
        seed=st.integers(0, 500),
        n=st.integers(4, 7),
        m=st.integers(2, 4),
        batch=st.integers(2, 9),
        budget=st.sampled_from(sorted(_BUDGETS)),
    )
    @settings(max_examples=15, deadline=None)
    def test_block_layout_agrees(self, seed, n, m, batch, budget):
        instance = random_instance(n, m, seed=seed)
        limits = _BUDGETS[budget]
        sync, sync_stats = _drive_block(
            instance, overlap="sync", batch_size=batch, limits=limits
        )
        async_, async_stats = _drive_block(
            instance, overlap="async", batch_size=batch, limits=limits
        )
        _assert_outcomes_identical(sync, async_, sync_stats, async_stats)

    @given(
        seed=st.integers(0, 500),
        n=st.integers(4, 7),
        m=st.integers(2, 4),
        batch=st.integers(2, 9),
        budget=st.sampled_from(sorted(_BUDGETS)),
    )
    @settings(max_examples=15, deadline=None)
    def test_object_layout_agrees(self, seed, n, m, batch, budget):
        instance = random_instance(n, m, seed=seed)
        limits = _BUDGETS[budget]
        sync, sync_stats = _drive_object(
            instance, overlap="sync", batch_size=batch, limits=limits
        )
        async_, async_stats = _drive_object(
            instance, overlap="async", batch_size=batch, limits=limits
        )
        _assert_outcomes_identical(sync, async_, sync_stats, async_stats)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_capped_frontier_agrees(self, seed):
        # a memory cap puts selection in its hysteretic restricted regime;
        # the async path must fall back to single full-batch launches and
        # still match the sync pop sequence exactly
        instance = random_instance(7, 4, seed=seed)
        sync, sync_stats = _drive_block(
            instance, overlap="sync", batch_size=6, max_pending=5
        )
        async_, async_stats = _drive_block(
            instance, overlap="async", batch_size=6, max_pending=5
        )
        _assert_outcomes_identical(sync, async_, sync_stats, async_stats)

    def test_double_buffer_credit_still_accrues_async(self, medium_instance):
        async_, async_stats = _drive_block(
            medium_instance, overlap="async", double_buffer=True
        )
        sync, sync_stats = _drive_block(
            medium_instance, overlap="sync", double_buffer=True
        )
        _assert_outcomes_identical(sync, async_, sync_stats, async_stats)
        # the simulated credit remains and the measured metric is additive
        assert async_.overlap_saved_sim_s >= 0.0
        assert async_.overlap_saved_wall_s >= 0.0
        # deprecated alias still answers with the simulated figure
        assert async_.overlap_saved_s == async_.overlap_saved_sim_s

    def test_sync_path_reports_zero_wall_overlap(self, medium_instance):
        sync, _ = _drive_block(medium_instance, overlap="sync")
        assert sync.overlap_saved_wall_s == 0.0


# ------------------------------------------------------------------ #
#  checkpoint/resume round-trips under the async pipeline
# ------------------------------------------------------------------ #


class TestAsyncCheckpointResume:
    def test_periodic_checkpoint_resumes_bit_identical(self, medium_instance):
        """A mid-run async snapshot, resumed sync OR async, replays the tail."""
        golden, golden_stats = _drive_block(medium_instance, overlap="sync")
        data = LowerBoundData(medium_instance)

        blobs = []

        def capture(state):
            blobs.append(
                dumps_snapshot(
                    medium_instance,
                    layout="block",
                    frontier=state.frontier,
                    trail=state.trail,
                    upper_bound=state.upper_bound,
                    best_order=state.best_order_supplier(),
                    next_order=state.next_order,
                    stats=state.stats,
                    engine={"engine": "test", "layout": "block"},
                )
            )

        full, full_stats = _drive_block(
            medium_instance,
            overlap="async",
            checkpoint=CheckpointPolicy(every_steps=2),
            on_checkpoint=capture,
        )
        _assert_outcomes_identical(golden, full, golden_stats, full_stats)
        assert blobs, "the async run must reach at least one batch boundary"

        for resume_overlap in ("sync", "async"):
            snap = loads_snapshot(blobs[-1])
            outcome, stats = _drive_block(
                medium_instance,
                overlap=resume_overlap,
                seed_state=(
                    snap.frontier,
                    snap.trail,
                    snap.upper_bound,
                    snap.best_order,
                    snap.stats,
                    snap.next_order,
                ),
            )
            assert outcome.upper_bound == golden.upper_bound
            assert outcome.best_order == golden.best_order
            assert outcome.completed
            for counter in COUNTERS:
                assert getattr(stats, counter) == getattr(golden_stats, counter), counter

    def test_sequential_async_resume_ladder(self, small_instance, tmp_path):
        """Kill-and-resume with overlap='async' recorded in the snapshot header."""
        golden = SequentialBranchAndBound(small_instance).solve()
        path = tmp_path / "snap.rpbb"
        result = SequentialBranchAndBound(
            small_instance, overlap="async", max_nodes=15, checkpoint_path=path
        ).solve()
        assert not result.proved_optimal
        assert load_header(path)["engine"]["overlap"] == "async"
        budgets = [40, 90, 180]  # cumulative: nodes_explored carries across segments
        segments = 1
        while not result.proved_optimal:
            budget = budgets[segments - 1] if segments <= len(budgets) else None
            result = SequentialBranchAndBound.resume(path, max_nodes=budget)
            segments += 1
            assert segments < 100, "resume ladder failed to make progress"
        assert result.best_makespan == golden.best_makespan
        assert result.best_order == golden.best_order
        for counter in COUNTERS:
            assert getattr(result.stats, counter) == getattr(golden.stats, counter), counter


# ------------------------------------------------------------------ #
#  the pipeline primitives
# ------------------------------------------------------------------ #


class TestSlotWorker:
    def test_result_round_trip_and_idle(self):
        with SlotWorker() as worker:
            ticket = worker.submit(lambda: 6 * 7)
            assert ticket.result() == 42
            assert ticket.done
            assert ticket.worker_wall_s >= 0.0
            assert worker.idle

    def test_exception_propagates_and_worker_survives(self):
        with SlotWorker() as worker:
            ticket = worker.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                ticket.result()
            assert worker.submit(lambda: "still alive").result() == "still alive"
            assert worker.idle

    def test_two_slots_then_backpressure(self):
        gate = threading.Event()
        first_running = threading.Event()
        third_submitted = threading.Event()

        def blocked():
            first_running.set()
            gate.wait()
            return "first"

        with SlotWorker() as worker:
            t1 = worker.submit(blocked)
            assert first_running.wait(5.0)
            # slot two: parked in the depth-1 queue, submit returns at once
            t2 = worker.submit(lambda: "second")
            assert not worker.idle

            tickets = {}

            def third():
                tickets["t3"] = worker.submit(lambda: "third")
                third_submitted.set()

            submitter = threading.Thread(target=third)
            submitter.start()
            # both slots busy: the third submit must block the caller
            assert not third_submitted.wait(0.1)
            gate.set()
            assert third_submitted.wait(5.0)
            submitter.join(5.0)
            assert [t1.result(), t2.result(), tickets["t3"].result()] == [
                "first",
                "second",
                "third",
            ]
            assert worker.idle

    def test_submit_after_close_raises(self):
        worker = SlotWorker()
        worker.close()
        worker.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            worker.submit(lambda: None)


class TestAsyncOffloadWrapper:
    def test_block_launch_matches_sync_backend(self, small_instance):
        data = LowerBoundData(small_instance)
        backend = LocalBounding(data)

        sync_root = root_block(small_instance, Trail())
        sync_bounds = backend.bound_block(sync_root)[0]

        async_root = root_block(small_instance, Trail())
        with AsyncOffload(backend) as aoff:
            bounds, sim_s, wall_s = aoff.submit_block(async_root).result()
            assert aoff.idle
        assert (bounds == sync_bounds).all()
        assert (async_root.lower_bound == sync_root.lower_bound).all()
        assert sim_s == 0.0 and wall_s == 0.0

    def test_nodes_launch_matches_sync_backend(self, small_instance):
        data = LowerBoundData(small_instance)
        backend = LocalBounding(data)
        sync_node, async_node = root_node(small_instance), root_node(small_instance)
        bound_node(sync_node, data)
        with AsyncOffload(backend) as aoff:
            aoff.submit_nodes([async_node]).result()
        assert async_node.lower_bound == sync_node.lower_bound


# ------------------------------------------------------------------ #
#  service layer: the dispatcher's off-pump-thread launches
# ------------------------------------------------------------------ #


class TestServiceAsync:
    @pytest.mark.parametrize("instance", [MEDIUM, SMALL], ids=["medium", "small"])
    def test_lone_async_session_matches_sequential(self, instance):
        reference = SequentialBranchAndBound(instance).solve()
        with BatchDispatcher(overlap="async") as dispatcher:
            session = SolveSession(
                1,
                instance,
                LowerBoundData(instance),
                dispatcher,
                SessionConfig(overlap="async"),
            )
            result = session.run()
        assert result.makespan == reference.best_makespan
        assert result.order == reference.best_order
        assert result.proved_optimal == reference.proved_optimal
        for counter in COUNTERS:
            assert getattr(result.stats, counter) == getattr(reference.stats, counter), (
                counter
            )

    def test_async_service_multiplexes_bit_identically(self):
        instances = [MEDIUM, SMALL]

        async def run():
            async with SolveService(max_active_sessions=2, overlap="async") as service:
                for i, instance in enumerate(instances):
                    await service.submit(f"r{i}", instance)
                return [await service.result(f"r{i}") for i in range(len(instances))]

        results = asyncio.run(run())
        for instance, result in zip(instances, results):
            reference = SequentialBranchAndBound(instance).solve()
            assert result.makespan == reference.best_makespan
            assert result.order == reference.best_order
            for counter in COUNTERS:
                assert getattr(result.stats, counter) == getattr(
                    reference.stats, counter
                ), counter
