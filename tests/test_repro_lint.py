"""Tests of ``tools/repro_lint`` — the architecture & concurrency checker.

Each rule is exercised against a fixture tree with known violations
(``tests/lint_fixtures/violations``) and a known-clean twin
(``tests/lint_fixtures/clean``), both shaped like miniature ``src/repro``
checkouts so the rules' path-sensitive configuration applies unmodified.
The live tree itself must be finding-free modulo the committed baseline —
that test is what makes the suite *blocking*.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint import Baseline, all_rules, run_lint  # noqa: E402
from tools.repro_lint.framework import main as lint_main  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
VIOLATIONS = FIXTURES / "violations"
CLEAN = FIXTURES / "clean"


def lint(root: Path):
    return run_lint(root, all_rules())


def rules_found(report) -> set[str]:
    return {finding.rule for finding in report.findings}


def findings_for(report, rule: str):
    return [finding for finding in report.findings if finding.rule == rule]


# --------------------------------------------------------------------- #
#  per-rule: the violation fixture fires, the clean twin does not
# --------------------------------------------------------------------- #
class TestSingleLoop:
    def test_violations_fire(self):
        found = findings_for(lint(VIOLATIONS), "single-loop")
        lines = {finding.line for finding in found if "operators" in finding.path}
        # drain()'s `while pool`, spin()'s `while frontier and ...`,
        # Engine.solve()'s `while self.open_pool`
        assert len(lines) == 3

    def test_clean_twin(self):
        assert not findings_for(lint(CLEAN), "single-loop")

    def test_driver_is_allowed(self):
        report = lint(CLEAN)
        # clean/bb/driver.py holds a bare `while frontier:` and stays clean
        assert not any(f.path.endswith("driver.py") for f in report.findings)

    def test_pool_size_is_not_a_pool(self):
        # `while width < pool_size:` must not match (clean twin contains it)
        found = findings_for(lint(CLEAN), "single-loop")
        assert not found


class TestLayerDag:
    def test_upward_imports_fire(self):
        found = findings_for(lint(VIOLATIONS), "layer-dag")
        upward = [f for f in found if f.path.endswith("bb/upward.py")]
        # both `from repro.service...` and `import repro.experiments...`
        assert len(upward) == 2
        assert all("higher layer" in f.message for f in upward)

    def test_protocol_module_level_solver_imports_fire(self):
        found = findings_for(lint(VIOLATIONS), "layer-dag")
        protocol = [f for f in found if f.path.endswith("service/protocol.py")]
        # numpy + repro.flowshop at module level
        assert len(protocol) == 2
        assert all("importable" in f.message for f in protocol)

    def test_clean_twin(self):
        # lazy function-level and TYPE_CHECKING imports are both fine
        assert not findings_for(lint(CLEAN), "layer-dag")


class TestGuardedBy:
    def test_unlocked_accesses_fire(self):
        found = findings_for(lint(VIOLATIONS), "guarded-by")
        dispatch = [f for f in found if "dispatch.py" in f.path]
        # submit()'s unlocked write + close()'s two post-with accesses
        assert len(dispatch) == 3

    def test_clean_twin(self):
        assert not findings_for(lint(CLEAN), "guarded-by")

    def test_wrapping_condition_counts_as_the_lock(self):
        # clean twin guards via `with self._wakeup:` for attributes declared
        # `guarded-by: _lock, _wakeup` — no finding
        assert not findings_for(lint(CLEAN), "guarded-by")

    def test_offload_pipeline_violations_fire(self):
        found = findings_for(lint(VIOLATIONS), "guarded-by")
        offload = [f for f in found if "bb/offload.py" in f.path]
        assert len(offload) == 2
        messages = " | ".join(f.message for f in offload)
        # submit()'s unlocked slot-counter write (guarded-by)
        assert "'SlotWorker._inflight' is guarded by _lock" in messages
        # peek()'s payload read outside the declared hand-off pair
        assert "'SlotWorker._value' is confined to _finish, result" in messages
        assert "thread-confinement hand-off" in messages

    def test_offload_clean_twin(self):
        # locked counter, payload touched only from _finish/result, a
        # justified ignore-comment read, and an unannotated attr: silent
        report = lint(CLEAN)
        assert not any("bb/offload.py" in f.path for f in report.findings)


class TestDtype:
    def test_violations_fire(self):
        found = findings_for(lint(VIOLATIONS), "dtype")
        messages = " | ".join(f.message for f in found)
        assert len(found) == 3
        assert "without an explicit dtype" in messages
        assert "int16" in messages
        # the segment row-id cache built as int64: a documented dtype, but
        # the wrong one for that named column
        assert "self._seg_krow is documented as int32" in messages

    def test_clean_twin(self):
        assert not findings_for(lint(CLEAN), "dtype")


class TestBareExcept:
    def test_violations_fire(self):
        found = findings_for(lint(VIOLATIONS), "bare-except")
        # recovery.py: bare except, silent `except Exception`, silent tuple
        assert len(found) == 3
        assert all("recovery.py" in f.path for f in found)
        messages = " | ".join(f.message for f in found)
        assert "SystemExit" in messages  # the bare-except variant
        assert "restart/retry/degrade" in messages  # the silent-broad variant

    def test_out_of_scope_layers_are_ignored(self):
        # experiments/loader.py swallows broadly but lives outside
        # service/ and bb/ — not this rule's problem
        found = findings_for(lint(VIOLATIONS), "bare-except")
        assert not any("experiments" in f.path for f in found)

    def test_clean_twin(self):
        # acting handlers, narrow handlers, and one justified suppression
        assert not findings_for(lint(CLEAN), "bare-except")


class TestOffloadContract:
    def test_violations_fire(self):
        found = findings_for(lint(VIOLATIONS), "offload-contract")
        messages = " | ".join(f.message for f in found)
        assert len(found) == 4
        assert "2-tuple" in messages
        assert "siblings" in messages
        assert "exactly one required argument" in messages
        assert "bare return" in messages

    def test_clean_twin(self):
        assert not findings_for(lint(CLEAN), "offload-contract")


# --------------------------------------------------------------------- #
#  framework mechanics
# --------------------------------------------------------------------- #
class TestFramework:
    def test_violation_fixture_exits_nonzero(self, capsys):
        assert lint_main(["--root", str(VIOLATIONS), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["findings"]

    def test_clean_fixture_exits_zero(self, capsys):
        assert lint_main(["--root", str(CLEAN), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["suppressed"] >= 2  # the twins' justified suppressions

    def test_json_artifact_output(self, tmp_path, capsys):
        artifact = tmp_path / "lint.json"
        lint_main(["--root", str(CLEAN), "--output", str(artifact)])
        capsys.readouterr()
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True and payload["files_checked"] > 0

    def test_baseline_grandfathers_findings(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = lint_main(["--root", str(VIOLATIONS), "--update-baseline", "--baseline", str(baseline)])
        capsys.readouterr()
        assert code == 0 and baseline.exists()
        # with every finding baselined, the same tree lints clean
        assert lint_main(["--root", str(VIOLATIONS), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_baseline_fingerprints_survive_line_drift(self):
        entries = Baseline(
            [{"rule": "dtype", "path": "src/repro/bb/frontier.py", "snippet": "x = np.zeros(3)"}]
        )
        report = run_lint(VIOLATIONS, all_rules(), baseline=entries)
        # the fingerprint matches on (rule, path, stripped line), not line number
        assert entries.matches(
            findings_for(lint(VIOLATIONS), "dtype")[0], "depth = np.zeros(n)  # missing dtype: finding"
        ) is False
        assert report.baselined == 0

    def test_suppression_requires_matching_rule(self, tmp_path):
        tree = tmp_path / "src" / "repro" / "experiments"
        tree.mkdir(parents=True)
        (tree / "loop.py").write_text(
            "def f(pool):\n"
            "    while pool:  # repro-lint: ignore[dtype] -- wrong rule name\n"
            "        pool.pop()\n"
        )
        report = run_lint(tmp_path, all_rules())
        assert rules_found(report) == {"single-loop"}


# --------------------------------------------------------------------- #
#  the live tree is finding-free (this is what makes the suite blocking)
# --------------------------------------------------------------------- #
class TestLiveTree:
    def test_live_tree_is_clean_modulo_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "tools" / "repro_lint" / "baseline.json")
        report = run_lint(REPO_ROOT, all_rules(), baseline=baseline)
        assert report.files_checked > 50
        assert report.findings == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in report.findings
        )

    def test_live_guarded_by_annotations_exist(self):
        # the race detector only has teeth while the annotations stay put
        dispatch = (REPO_ROOT / "src" / "repro" / "service" / "dispatch.py").read_text()
        assert dispatch.count("# guarded-by:") >= 4
        worksteal = (REPO_ROOT / "src" / "repro" / "bb" / "worksteal.py").read_text()
        assert worksteal.count("# guarded-by:") >= 1
        offload = (REPO_ROOT / "src" / "repro" / "bb" / "offload.py").read_text()
        assert offload.count("# guarded-by:") >= 2
        assert offload.count("# confined-to:") >= 3

    def test_cli_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--root", str(REPO_ROOT), "--format", "json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["ok"] is True


# --------------------------------------------------------------------- #
#  mypy satellite (runs only where mypy is installed, e.g. CI lint-arch)
# --------------------------------------------------------------------- #
class TestMypySurface:
    def test_strict_surfaces_pass(self):
        pytest.importorskip("mypy")
        from mypy import api as mypy_api

        stdout, stderr, code = mypy_api.run(
            ["--config-file", str(REPO_ROOT / "pyproject.toml"), str(REPO_ROOT / "src" / "repro")]
        )
        assert code == 0, stdout + stderr
