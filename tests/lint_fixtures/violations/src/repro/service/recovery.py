"""Fixture: silent exception swallowing in recovery code (bare-except)."""


def run_session(session):
    try:
        return session.run()
    except:  # finding: bare except catches SystemExit/KeyboardInterrupt
        return None


def flush_batch(batch):
    try:
        batch.flush()
    except Exception:  # finding: broad and silent
        pass


def write_checkpoint(path, blob):
    try:
        path.write_bytes(blob)
    except (OSError, BaseException):  # finding: broad-in-tuple and silent
        ...


def retry_launch(launcher):
    try:
        launcher.launch()
    except Exception as exc:  # not flagged: the handler acts on the failure
        launcher.record_failure(exc)
        raise
