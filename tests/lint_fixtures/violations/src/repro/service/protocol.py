"""Fixture: the wire-format module importing the solver stack (layer-dag)."""

import numpy as np

from repro.flowshop.instance import FlowShopInstance


def decode(line):
    return np.array([1]), FlowShopInstance
