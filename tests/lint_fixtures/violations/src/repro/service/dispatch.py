"""Fixture: guarded attributes touched outside their lock (guarded-by)."""

import threading


class BatchDispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def submit(self, request):
        self._pending.append(request)  # unlocked write: finding

    def close(self):
        with self._lock:
            self._closed = True
        if self._pending:  # unlocked read outside the with: finding
            self._pending.clear()

    def locked_ok(self):
        with self._lock:
            return len(self._pending)
