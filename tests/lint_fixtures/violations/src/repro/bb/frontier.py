"""Fixture: frontier columns built without (or with wrong) dtypes (dtype)."""

import numpy as np


def build_columns(n):
    depth = np.zeros(n)  # missing dtype: finding
    parent = np.empty(n, dtype=np.int16)  # undocumented dtype: finding
    order = np.arange(n, dtype=np.int64)  # fine
    return depth, parent, order
