"""Fixture: frontier columns built without (or with wrong) dtypes (dtype)."""

import numpy as np


def build_columns(n):
    depth = np.zeros(n)  # missing dtype: finding
    parent = np.empty(n, dtype=np.int16)  # undocumented dtype: finding
    order = np.arange(n, dtype=np.int64)  # fine
    return depth, parent, order


class Store:
    def __init__(self, n):
        # documented dtype, but the wrong one for this named column: the
        # segment row-id cache is int32 by contract — finding
        self._seg_krow = np.zeros(n, dtype=np.int64)
        self._seg_key = np.full(n, 0, dtype=np.int64)  # contract-exact: fine
