"""Fixture: async pipeline state touched outside its declared discipline."""

import threading


class SlotWorker:
    def __init__(self):
        self._lock = threading.Lock()
        self._inflight = 0  # guarded-by: _lock
        self._done = threading.Event()
        self._value = None  # confined-to: _finish, result

    def submit(self):
        self._inflight += 1  # unlocked slot-counter write: finding

    def _finish(self, value):
        self._value = value
        self._done.set()

    def result(self):
        self._done.wait()
        return self._value

    def peek(self):
        return self._value  # read outside the hand-off pair: finding

    def idle(self):
        with self._lock:
            return self._inflight == 0
