"""Fixture: a solver-layer module importing orchestration layers (layer-dag)."""

from repro.service.dispatch import BatchDispatcher
import repro.experiments.protocol


def run():
    return BatchDispatcher, repro.experiments.protocol
