"""Fixture: a frontier-driven while loop outside bb/driver.py (single-loop)."""


def drain(pool):
    explored = 0
    while pool:
        node = pool.pop()
        explored += 1
    return explored


def spin(frontier, budget):
    while frontier and budget > 0:
        frontier.pop_batch()
        budget -= 1


class Engine:
    def solve(self):
        while self.open_pool:
            self.open_pool.pop()
