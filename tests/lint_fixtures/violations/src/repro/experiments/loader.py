"""Fixture: broad-and-silent handler OUTSIDE service//bb/ (out of scope)."""


def load_optional_report(path):
    try:
        return path.read_text()
    except Exception:  # not flagged: experiments/ is outside the rule's scope
        pass
