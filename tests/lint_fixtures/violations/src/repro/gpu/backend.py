"""Fixture: offload backends that drift from the driver contract."""


class TwoTupleOffload:
    def bound_block(self, block, siblings=False):
        return block.lower_bound, 0.0  # 2-tuple: finding


class NoSiblingsOffload:
    def bound_block(self, block):  # missing siblings flag: finding
        return block.lower_bound, 0.0, 0.0


class ExtraArgOffload:
    def bound_nodes(self, nodes, data):  # extra required arg: finding
        return None, 0.0, 0.0


class BareReturnOffload:
    def bound_nodes(self, nodes):
        if not nodes:
            return  # bare return: finding
        return None, 0.0, 0.0
