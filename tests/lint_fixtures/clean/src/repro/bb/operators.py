"""Fixture twin: a justified pool loop and loops over non-frontier names."""


def select_batch(pool, max_nodes):
    selected = []
    while pool and len(selected) < max_nodes:  # repro-lint: ignore[single-loop] -- selection operator, not a solve loop
        selected.append(pool.pop())
    return selected


def widen(pool_size):
    width = 0
    while width < pool_size:  # 'pool_size' is not a frontier: no finding
        width += 1
    return width
