"""Fixture twin: the solve loop where it belongs, plus lower-layer imports."""

from repro.flowshop.instance import FlowShopInstance


class SearchDriver:
    def run(self, frontier):
        explored = 0
        while frontier:  # allowed: bb/driver.py owns the solve loop
            frontier.pop()
            explored += 1
        return explored, FlowShopInstance
