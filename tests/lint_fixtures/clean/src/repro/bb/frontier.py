"""Fixture twin: explicit documented dtypes everywhere (dtype clean)."""

import numpy as np


def build_columns(n, like):
    depth = np.zeros(n, dtype=np.int32)
    key = np.empty(n, dtype=np.int64)
    mask = np.ones(n, dtype=np.bool_)
    bounds = np.zeros(n, dtype="float64")
    inherited = np.asarray(like, dtype=like.dtype)  # propagation: fine
    return depth, key, mask, bounds, inherited


class Store:
    def __init__(self, n):
        # every named column/index array carries its contract dtype
        self._lb = np.zeros(n, dtype=np.int32)
        self._key = np.zeros(n, dtype=np.int64)
        self._mask = np.zeros((n, 4), dtype=bool)
        self._seg_key = np.full(n, 0, dtype=np.int64)
        self._seg_krow = np.zeros(n, dtype=np.int32)
        self._seg_omax = np.zeros(n, dtype=np.int32)
        self._seg_orow = np.zeros(n, dtype=np.int32)
        self._seg_dirty = np.ones(n, dtype=bool)
