"""Fixture twin: explicit documented dtypes everywhere (dtype clean)."""

import numpy as np


def build_columns(n, like):
    depth = np.zeros(n, dtype=np.int32)
    key = np.empty(n, dtype=np.int64)
    mask = np.ones(n, dtype=np.bool_)
    bounds = np.zeros(n, dtype="float64")
    inherited = np.asarray(like, dtype=like.dtype)  # propagation: fine
    return depth, key, mask, bounds, inherited
