"""Fixture twin: async pipeline state under its declared discipline (clean)."""

import threading


class SlotWorker:
    def __init__(self):
        self._lock = threading.Lock()
        self._inflight = 0  # guarded-by: _lock
        self._done = threading.Event()
        self._value = None  # confined-to: _finish, result
        self._scratch = None  # no annotation: never checked

    def submit(self):
        with self._lock:
            self._inflight += 1

    def _finish(self, value):
        self._value = value
        self._done.set()

    def result(self):
        self._done.wait()
        return self._value

    def debug_value(self):  # repro-lint: ignore[guarded-by] -- post-join diagnostic read
        return self._value

    def idle(self):
        with self._lock:
            return self._inflight == 0

    def touch(self):
        self._scratch = object()
