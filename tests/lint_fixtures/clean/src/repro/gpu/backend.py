"""Fixture twin: contract-compliant offload backends (offload-contract clean)."""


class CompliantOffload:
    def bound_nodes(self, nodes):
        return None, 0.0, 0.0

    def bound_block(self, block, siblings=False):
        return block.lower_bound, 0.0, 0.0


class ForwardingOffload:
    def bound_block(self, block, siblings=False):
        return self._future(block).result()  # non-literal return: unchecked

    def _future(self, block):
        raise NotImplementedError
