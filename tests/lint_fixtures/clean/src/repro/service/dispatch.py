"""Fixture twin: every guarded access under its lock (guarded-by clean)."""

import threading


class BatchDispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending = []  # guarded-by: _lock, _wakeup
        self._closed = False  # guarded-by: _lock, _wakeup
        self._unguarded = 0  # no annotation: never checked

    def submit(self, request):
        with self._lock:
            self._pending.append(request)

    def wait_and_drain(self):
        with self._wakeup:
            while not self._pending and not self._closed:
                self._wakeup.wait()
            batch = self._pending
            self._pending = []
        return batch

    def helper(self):  # repro-lint: ignore[guarded-by] -- caller holds the lock
        return len(self._pending)

    def touch(self):
        self._unguarded += 1
