"""Fixture twin: recovery handlers that name, act, or justify (bare-except clean)."""

import logging

logger = logging.getLogger(__name__)


def run_session(session):
    try:
        return session.run()
    except RuntimeError as exc:  # narrow: fine
        logger.warning("session died: %s", exc)
        raise


def flush_batch(batch):
    try:
        batch.flush()
    except Exception as exc:  # broad but acting: fine
        logger.warning("flush failed, retrying once: %s", exc)
        batch.flush()


def close_quietly(stream):
    try:
        stream.close()
    except Exception:  # repro-lint: ignore[bare-except] -- best-effort close on shutdown
        pass
