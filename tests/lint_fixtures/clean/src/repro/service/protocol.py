"""Fixture twin: solver imports kept lazy / annotation-only (layer-dag clean)."""

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.flowshop.instance import FlowShopInstance


def decode(line):
    return json.loads(line)


def to_instance(spec) -> "FlowShopInstance":
    from repro.flowshop.instance import FlowShopInstance

    return FlowShopInstance(spec)
