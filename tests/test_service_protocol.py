"""Wire-protocol contract: round-trips, schema errors, instance specs."""

from __future__ import annotations

import json

import pytest

from repro.bb.snapshot import SNAPSHOT_FORMAT_VERSION
from repro.service.protocol import (
    SUPPORTED_SNAPSHOT_VERSIONS,
    AcceptedReply,
    CancelledReply,
    CancelRequest,
    CheckpointReply,
    DegradedReply,
    ErrorReply,
    InstanceSpec,
    OverloadedReply,
    ProtocolError,
    ResultReply,
    ResumeRequest,
    SolveParams,
    SolveRequest,
    StatusReply,
    StatusRequest,
    decode,
    encode,
)

MESSAGES = [
    SolveRequest(
        request_id="r1",
        instance=InstanceSpec.taillard(20, 5, index=3),
        params=SolveParams(selection="depth-first", kernel="v1", max_nodes=100),
        client_id="alice",
    ),
    SolveRequest(
        request_id="r7",
        instance=InstanceSpec.taillard(20, 5, index=3),
        params=SolveParams(checkpoint_path="/tmp/r7.rpbb", checkpoint_every=500),
    ),
    SolveRequest(
        request_id="r2",
        instance=InstanceSpec.explicit([[4, 3], [2, 5], [6, 2]], name="tiny"),
    ),
    CancelRequest(request_id="r1"),
    StatusRequest(request_id="s1"),
    AcceptedReply(request_id="r1", session_id=7),
    OverloadedReply(request_id="r9", queued=64, limit=64),
    CancelledReply(request_id="r1", was_running=True),
    ErrorReply(request_id="r0", message="unknown instance kind"),
    ResultReply(
        request_id="r1",
        session_id=7,
        makespan=539,
        order=[6, 5, 0, 2, 1, 7, 4, 3],
        proved_optimal=True,
        stats={"nodes_bounded": 163},
    ),
    StatusReply(
        request_id="s1",
        active_sessions=2,
        queued_sessions=0,
        completed_sessions=5,
        dispatcher={"n_launches": 12},
    ),
    ResumeRequest(
        request_id="r3",
        snapshot_path="/tmp/session-7.rpbb",
        header={"format_version": SNAPSHOT_FORMAT_VERSION, "layout": "block"},
        client_id="bob",
    ),
    ResumeRequest(request_id="r4", snapshot_path="ckpt.rpbb"),
    CheckpointReply(
        request_id="r1",
        session_id=7,
        sequence=3,
        path="/tmp/session-7.rpbb",
        steps=192,
    ),
    DegradedReply(request_id="r1", session_id=7, reason="bounding launch timed out"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: m.type)
    def test_encode_decode_identity(self, message):
        assert decode(encode(message)) == message

    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: m.type)
    def test_wire_form_is_one_json_line(self, message):
        line = encode(message)
        assert "\n" not in line
        payload = json.loads(line)
        assert payload["type"] == message.type


class TestDecodeErrors:
    def test_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            decode("{not json")

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode("[1, 2, 3]")

    def test_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode('{"type": "frobnicate"}')

    def test_missing_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode('{"request_id": "r1"}')

    def test_solve_without_instance(self):
        with pytest.raises(ProtocolError, match="instance"):
            decode('{"type": "solve", "request_id": "r1"}')

    def test_unknown_field(self):
        with pytest.raises(ProtocolError, match="payload"):
            decode('{"type": "cancel", "request_id": "r1", "bogus": 1}')

    def test_resume_without_snapshot_path(self):
        with pytest.raises(ProtocolError):
            decode('{"type": "resume", "request_id": "r1"}')

    def test_resume_rejects_unknown_snapshot_version(self):
        bad_version = max(SUPPORTED_SNAPSHOT_VERSIONS) + 1
        line = json.dumps(
            {
                "type": "resume",
                "request_id": "r1",
                "snapshot_path": "ckpt.rpbb",
                "header": {"format_version": bad_version},
            }
        )
        with pytest.raises(ProtocolError, match="format_version"):
            decode(line)

    def test_resume_rejects_non_dict_header(self):
        line = json.dumps(
            {
                "type": "resume",
                "request_id": "r1",
                "snapshot_path": "ckpt.rpbb",
                "header": [1],
            }
        )
        with pytest.raises(ProtocolError, match="header"):
            decode(line)


class TestSnapshotVersionPin:
    def test_current_snapshot_version_is_supported(self):
        """The wire allowlist must track the snapshot module's version."""
        assert SNAPSHOT_FORMAT_VERSION in SUPPORTED_SNAPSHOT_VERSIONS


class TestInstanceSpec:
    def test_taillard_materializes(self):
        instance = InstanceSpec.taillard(20, 5, index=2).to_instance()
        assert (instance.n_jobs, instance.n_machines) == (20, 5)

    def test_explicit_materializes(self):
        instance = InstanceSpec.explicit([[4, 3], [2, 5]], name="t").to_instance()
        assert (instance.n_jobs, instance.n_machines) == (2, 2)
        assert instance.name == "t"

    def test_taillard_requires_dimensions(self):
        with pytest.raises(ProtocolError, match="jobs"):
            InstanceSpec(kind="taillard").to_instance()

    def test_explicit_requires_matrix(self):
        with pytest.raises(ProtocolError, match="processing_times"):
            InstanceSpec(kind="explicit").to_instance()

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown instance kind"):
            InstanceSpec(kind="quantum").to_instance()
