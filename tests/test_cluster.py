"""Tests for the simulated GPU-cluster extension."""

from __future__ import annotations

import pytest

from repro.bb import brute_force_optimum
from repro.core import ClusterBranchAndBound, ClusterSpec, GpuBBConfig
from repro.core.cluster import ClusterSimulator
from repro.flowshop.bounds import DataStructureComplexity


class TestClusterSpec:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.n_nodes == 4
        assert spec.device.name.startswith("Nvidia")

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(interconnect_bandwidth_bps=0)

    def test_scatter_gather_scale_with_pool(self):
        spec = ClusterSpec(n_nodes=4)
        assert spec.scatter_time_s(100_000) > spec.scatter_time_s(1_000)
        assert spec.gather_time_s(100_000) > spec.gather_time_s(1_000)
        with pytest.raises(ValueError):
            spec.scatter_time_s(-1)

    def test_scatter_bills_each_subproblem_once(self):
        # regression: a pool of 1 on a 16-node cluster used to be charged
        # 16 payloads (2048 B) instead of 1 (128 B)
        spec = ClusterSpec(n_nodes=16)
        expected = 16 * spec.interconnect_latency_s + (
            1 * spec.node_payload_bytes / spec.interconnect_bandwidth_bps
        )
        assert spec.scatter_time_s(1) == pytest.approx(expected)

    def test_scatter_bytes_independent_of_node_count(self):
        # same pool, more nodes: only the per-message latency may grow
        small = ClusterSpec(n_nodes=2)
        large = ClusterSpec(n_nodes=16)
        pool = 1000
        small_bytes_s = small.scatter_time_s(pool) - 2 * small.interconnect_latency_s
        large_bytes_s = large.scatter_time_s(pool) - 16 * large.interconnect_latency_s
        assert small_bytes_s == pytest.approx(large_bytes_s)

    def test_incumbent_broadcast_time(self):
        spec = ClusterSpec(n_nodes=8)
        expected = spec.interconnect_latency_s + (
            spec.incumbent_broadcast_bytes / spec.interconnect_bandwidth_bps
        )
        assert spec.incumbent_broadcast_time_s() == pytest.approx(expected)


class TestClusterSimulator:
    def test_more_nodes_reduce_step_time_for_large_pools(self):
        complexity = DataStructureComplexity(n=200, m=20)
        pool = 262144
        times = {}
        for n_nodes in (1, 2, 4, 8):
            sim = ClusterSimulator(ClusterSpec(n_nodes=n_nodes))
            times[n_nodes] = sim.evaluate_pool(complexity, pool).total_s
        assert times[8] < times[4] < times[2] < times[1]

    def test_scaling_efficiency_degrades_for_small_pools(self):
        complexity = DataStructureComplexity(n=200, m=20)
        sim = ClusterSimulator(ClusterSpec(n_nodes=8))
        large_pool = sim.scaling_efficiency(complexity, 262144, n_nodes_list=(8,))[8]
        small_pool = sim.scaling_efficiency(complexity, 4096, n_nodes_list=(8,))[8]
        assert large_pool > small_pool
        assert 0 < small_pool <= 1.05
        assert large_pool > 0.5

    def test_single_node_efficiency_is_one(self):
        complexity = DataStructureComplexity(n=100, m=20)
        sim = ClusterSimulator(ClusterSpec(n_nodes=1))
        eff = sim.scaling_efficiency(complexity, 65536, n_nodes_list=(1,))[1]
        assert eff == pytest.approx(1.0)

    def test_step_timing_breakdown(self):
        complexity = DataStructureComplexity(n=100, m=20)
        timing = ClusterSimulator(ClusterSpec(n_nodes=4)).evaluate_pool(complexity, 8192)
        assert timing.per_node_pool == 2048
        assert timing.total_s == pytest.approx(
            timing.scatter_s + timing.gather_s + timing.node_compute_s
        )

    def test_zero_pool(self):
        complexity = DataStructureComplexity(n=100, m=20)
        timing = ClusterSimulator(ClusterSpec(n_nodes=4)).evaluate_pool(complexity, 0)
        assert timing.node_compute_s == 0.0


class TestClusterEngine:
    @pytest.mark.parametrize("n_nodes", [1, 3])
    def test_matches_bruteforce(self, small_instance, n_nodes):
        _, optimum = brute_force_optimum(small_instance)
        result = ClusterBranchAndBound(
            small_instance, ClusterSpec(n_nodes=n_nodes), GpuBBConfig(pool_size=64)
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_matches_single_gpu_engine(self, medium_instance):
        from repro.core import GpuBranchAndBound

        single = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=128)).solve()
        cluster = ClusterBranchAndBound(
            medium_instance, ClusterSpec(n_nodes=4), GpuBBConfig(pool_size=128)
        ).solve()
        assert cluster.best_makespan == single.best_makespan

    def test_accounts_device_time(self, small_instance):
        result = ClusterBranchAndBound(
            small_instance, ClusterSpec(n_nodes=2), GpuBBConfig(pool_size=32)
        ).solve()
        assert result.simulated_device_time_s > 0
        assert result.stats.pools_evaluated >= 1

    def test_incumbent_broadcast_charged_per_improvement(self, medium_instance):
        spec = ClusterSpec(n_nodes=4)
        shared = ClusterBranchAndBound(
            medium_instance, spec, GpuBBConfig(pool_size=64, share_incumbent=True)
        ).solve()
        silent = ClusterBranchAndBound(
            medium_instance, spec, GpuBBConfig(pool_size=64, share_incumbent=False)
        ).solve()
        # same tree either way (the coordinator always prunes with the bound);
        # sharing only adds one broadcast message per improvement
        assert shared.best_makespan == silent.best_makespan
        assert shared.stats.nodes_bounded == silent.stats.nodes_bounded
        improvements = shared.stats.incumbent_updates - 1  # minus the NEH seed
        expected_extra = improvements * spec.incumbent_broadcast_time_s()
        assert shared.simulated_device_time_s - silent.simulated_device_time_s == (
            pytest.approx(expected_extra)
        )

    def test_budget(self, medium_instance):
        result = ClusterBranchAndBound(
            medium_instance, ClusterSpec(n_nodes=2), GpuBBConfig(pool_size=16, max_iterations=1)
        ).solve()
        assert not result.proved_optimal
