"""End-to-end integration tests across the whole stack."""

from __future__ import annotations


from repro import (
    CpuCostModel,
    GpuBBConfig,
    GpuBranchAndBound,
    MulticoreBranchAndBound,
    PoolSizeAutotuner,
    SequentialBranchAndBound,
    lower_bound_batch,
    random_instance,
    taillard_instance,
)
from repro.bb import brute_force_optimum
from repro.experiments import ExperimentTable, table2
from repro.experiments.protocol import collect_pending_pool
from repro.flowshop.bounds import LowerBoundData
from repro.gpu.executor import GpuExecutor


class TestEndToEndSolve:
    def test_all_engines_agree_on_one_instance(self):
        instance = random_instance(8, 5, seed=23)
        _, optimum = brute_force_optimum(instance)
        serial = SequentialBranchAndBound(instance).solve()
        multicore = MulticoreBranchAndBound(
            instance, n_workers=2, backend="thread", decomposition_depth=1
        ).solve()
        gpu = GpuBranchAndBound(instance, GpuBBConfig(pool_size=128)).solve()
        assert serial.best_makespan == multicore.best_makespan == gpu.best_makespan == optimum

    def test_autotuned_config_still_exact(self):
        instance = random_instance(7, 4, seed=5)
        _, optimum = brute_force_optimum(instance)
        config = PoolSizeAutotuner(
            instance, GpuBBConfig(), candidates=(64, 256), mode="model"
        ).tuned_config()
        result = GpuBranchAndBound(instance, config).solve()
        assert result.best_makespan == optimum


class TestSharedPoolProtocol:
    """The paper's protocol: the same list L is evaluated by CPU and GPU."""

    def test_same_pool_same_bounds(self):
        instance = taillard_instance(20, 10, index=2)
        data = LowerBoundData(instance)
        pool = collect_pending_pool(instance, 128, data=data, upper_bound=float("inf"))
        assert pool

        # CPU path: scalar bounds.
        from repro.flowshop.bounds import lower_bound

        cpu_bounds = [lower_bound(data, node.prefix, release=node.release) for node in pool]

        # GPU path: executor (batched kernel + simulated timing).
        from repro.bb.operators import encode_pool

        mask, release = encode_pool(pool, data.n_jobs, data.n_machines)
        executor = GpuExecutor(data)
        result = executor.evaluate(mask, release)
        assert result.bounds.tolist() == cpu_bounds
        assert result.simulated.total_s > 0

    def test_modelled_speedup_is_large_for_paper_scale_pools(self):
        """Tying the pieces together: CPU cost model vs simulated GPU time
        for a 200x20 pool predicts a double-digit speed-up."""
        instance = taillard_instance(200, 20, index=1)
        data = LowerBoundData(instance)
        executor = GpuExecutor(data)
        timing = executor.simulator.evaluate_pool(data.complexity, 262144)
        cpu_seconds = CpuCostModel().pool_seconds(data.complexity, 262144)
        assert cpu_seconds / timing.total_s > 40


class TestExperimentsOutput:
    def test_table2_is_a_well_formed_table(self):
        table = table2(pool_sizes=(4096, 262144))
        assert isinstance(table, ExperimentTable)
        text = table.to_text()
        assert "200x20" in text and "4096" in text

    def test_batched_kernel_scales_to_large_pools(self):
        instance = taillard_instance(20, 20, index=1)
        data = LowerBoundData(instance)
        from repro.experiments.protocol import synthetic_pool

        mask, release = synthetic_pool(instance, 2048, seed=0)
        bounds = lower_bound_batch(data, mask, release)
        assert bounds.shape == (2048,)
        assert int(bounds.min()) > 0
