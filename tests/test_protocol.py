"""Tests for the experimental protocol helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.protocol import (
    ExperimentProtocol,
    collect_pending_pool,
    estimate_frontier_depth,
    estimate_remaining_jobs,
    synthetic_pool,
)
from repro.flowshop import lower_bound_batch
from repro.flowshop.schedule import partial_completion_times


class TestDepthEstimates:
    def test_depth_grows_with_pool_size(self):
        depths = [estimate_frontier_depth(20, p) for p in (1, 100, 10_000, 262_144)]
        assert depths == sorted(depths)
        assert depths[0] == 0

    def test_depth_capped_at_jobs(self):
        assert estimate_frontier_depth(5, 10**9) == 5

    def test_known_values(self):
        # 20 jobs: 20*19*18*17 = 116280 < 262144 <= 20*19*18*17*16
        assert estimate_frontier_depth(20, 262_144) == 5
        # 200 jobs: 200*199 = 39800 >= 8192 at depth 2
        assert estimate_frontier_depth(200, 8_192) == 2

    def test_remaining_jobs_complement(self):
        assert estimate_remaining_jobs(20, 262_144) == 15
        assert estimate_remaining_jobs(200, 262_144) == 197
        assert estimate_remaining_jobs(3, 10**9) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_frontier_depth(0, 10)
        with pytest.raises(ValueError):
            estimate_frontier_depth(10, 0)


class TestSyntheticPool:
    def test_shapes_and_depth(self, small_instance):
        mask, release = synthetic_pool(small_instance, 50, depth=2, seed=3)
        assert mask.shape == (50, small_instance.n_jobs)
        assert release.shape == (50, small_instance.n_machines)
        assert (mask.sum(axis=1) == 2).all()

    def test_release_times_match_reference(self, small_instance):
        mask, release = synthetic_pool(small_instance, 20, depth=3, seed=1)
        # the release times must be *a* valid release vector of the selected
        # job set; compare against the slow reference for one row by trying
        # every ordering of its scheduled set is overkill — instead rebuild
        # using the same job order extraction is not available, so check a
        # necessary invariant: release is achievable only if >= per-machine
        # total of the scheduled jobs (prefix sums) and non-decreasing rows.
        pt = small_instance.processing_times
        for i in range(20):
            jobs = np.flatnonzero(mask[i])
            loads = pt[jobs].sum(axis=0)
            assert (release[i] >= loads).all()
            assert (np.diff(release[i]) >= 0).all()

    def test_depth_zero_gives_roots(self, small_instance):
        mask, release = synthetic_pool(small_instance, 5, depth=0)
        assert not mask.any()
        assert not release.any()

    def test_deterministic(self, small_instance):
        a = synthetic_pool(small_instance, 10, seed=7)
        b = synthetic_pool(small_instance, 10, seed=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_pool_is_consumable_by_batch_kernel(self, small_instance, small_instance_data):
        mask, release = synthetic_pool(small_instance, 16, seed=0)
        bounds = lower_bound_batch(small_instance_data, mask, release)
        assert bounds.shape == (16,)
        assert (bounds > 0).all()

    def test_validation(self, small_instance):
        with pytest.raises(ValueError):
            synthetic_pool(small_instance, 0)


class TestCollectPendingPool:
    def test_returns_requested_number_when_available(self, medium_instance):
        pool = collect_pending_pool(medium_instance, 32, upper_bound=float("inf"))
        assert len(pool) == 32
        assert all(node.lower_bound is not None for node in pool)

    def test_nodes_have_consistent_release_times(self, medium_instance):
        pool = collect_pending_pool(medium_instance, 16, upper_bound=float("inf"))
        for node in pool:
            expected = partial_completion_times(medium_instance, node.prefix)
            assert np.array_equal(node.release, expected)

    def test_pruning_with_neh_incumbent(self, medium_instance):
        """With the NEH incumbent the pool only contains improvable nodes."""
        from repro.flowshop import neh_heuristic

        ub = neh_heuristic(medium_instance).makespan
        pool = collect_pending_pool(medium_instance, 64)
        assert all(node.lower_bound < ub for node in pool)

    def test_small_tree_returns_fewer_nodes(self, tiny_instance):
        pool = collect_pending_pool(tiny_instance, 1000, upper_bound=float("inf"))
        assert len(pool) < 1000

    def test_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            collect_pending_pool(tiny_instance, 0)


class TestExperimentProtocol:
    def test_n_remaining_uses_depth_model(self):
        protocol = ExperimentProtocol()
        assert protocol.n_remaining(20, 262_144) == 15

    def test_depth_model_can_be_disabled(self):
        protocol = ExperimentProtocol(apply_depth_model=False)
        assert protocol.n_remaining(20, 262_144) is None
