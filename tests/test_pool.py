"""Tests for the pending-node pools (:mod:`repro.bb.pool`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.node import Node
from repro.bb.pool import BestFirstPool, DepthFirstPool, FifoPool, make_pool


def _node(lb: int, n_jobs: int = 5, depth: int = 0) -> Node:
    node = Node(prefix=tuple(range(depth)), release=np.zeros(3, dtype=np.int64), n_jobs=n_jobs)
    node.lower_bound = lb
    return node


class TestBestFirstPool:
    def test_pops_smallest_bound_first(self):
        pool = BestFirstPool()
        for lb in (30, 10, 20):
            pool.push(_node(lb))
        assert [pool.pop().lower_bound for _ in range(3)] == [10, 20, 30]

    def test_peek_does_not_remove(self):
        pool = BestFirstPool()
        pool.push(_node(5))
        assert pool.peek().lower_bound == 5
        assert len(pool) == 1

    def test_best_lower_bound(self):
        pool = BestFirstPool()
        assert pool.best_lower_bound() is None
        pool.push(_node(42))
        pool.push(_node(7))
        assert pool.best_lower_bound() == 7

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BestFirstPool().pop()
        with pytest.raises(IndexError):
            BestFirstPool().peek()

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_drains_in_sorted_order(self, bounds):
        pool = BestFirstPool()
        pool.push_many(_node(lb) for lb in bounds)
        drained = [node.lower_bound for node in pool.drain()]
        assert drained == sorted(bounds)
        assert len(pool) == 0


class TestDepthFirstPool:
    def test_lifo_order(self):
        pool = DepthFirstPool()
        for lb in (1, 2, 3):
            pool.push(_node(lb))
        assert [pool.pop().lower_bound for _ in range(3)] == [3, 2, 1]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            DepthFirstPool().pop()


class TestFifoPool:
    def test_fifo_order(self):
        pool = FifoPool()
        for lb in (1, 2, 3):
            pool.push(_node(lb))
        assert [pool.pop().lower_bound for _ in range(3)] == [1, 2, 3]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoPool().pop()


class TestSharedBehaviour:
    @pytest.mark.parametrize("strategy", ["best-first", "depth-first", "fifo"])
    def test_pop_batch(self, strategy):
        pool = make_pool(strategy)
        pool.push_many(_node(lb) for lb in range(10))
        batch = pool.pop_batch(4)
        assert len(batch) == 4
        assert len(pool) == 6
        rest = pool.pop_batch(100)
        assert len(rest) == 6
        assert len(pool) == 0

    def test_pop_batch_rejects_zero(self):
        with pytest.raises(ValueError):
            BestFirstPool().pop_batch(0)

    @pytest.mark.parametrize("strategy", ["best-first", "depth-first", "fifo"])
    def test_max_size_seen(self, strategy):
        pool = make_pool(strategy)
        pool.push_many(_node(lb) for lb in range(7))
        pool.pop_batch(7)
        pool.push(_node(1))
        assert pool.max_size_seen == 7

    @pytest.mark.parametrize("strategy", ["best-first", "depth-first", "fifo"])
    def test_prune_to_drops_hopeless_nodes(self, strategy):
        pool = make_pool(strategy)
        pool.push_many(_node(lb) for lb in range(10))
        removed = pool.prune_to(5)
        assert removed == 5
        assert len(pool) == 5
        assert all(node.lower_bound < 5 for node in pool.drain())

    @pytest.mark.parametrize("strategy", ["best-first", "depth-first", "fifo"])
    def test_prune_to_preserves_order(self, strategy):
        pool = make_pool(strategy)
        pool.push_many(_node(lb) for lb in (3, 9, 1, 8, 2))
        pool.prune_to(5)
        survivors = [node.lower_bound for node in pool.drain()]
        expected = {"best-first": [1, 2, 3], "depth-first": [2, 1, 3], "fifo": [3, 1, 2]}
        assert survivors == expected[strategy]

    def test_prune_to_keeps_unbounded_nodes(self):
        pool = DepthFirstPool()
        node = _node(0)
        node.lower_bound = None
        pool.push(node)
        assert pool.prune_to(0) == 0
        assert len(pool) == 1

    def test_prune_to_empty_pool(self):
        assert BestFirstPool().prune_to(10) == 0

    def test_bool_protocol(self):
        pool = BestFirstPool()
        assert not pool
        pool.push(_node(1))
        assert pool

    def test_make_pool_aliases(self):
        assert isinstance(make_pool("best"), BestFirstPool)
        assert isinstance(make_pool("depth"), DepthFirstPool)
        assert isinstance(make_pool("breadth-first"), FifoPool)

    def test_make_pool_unknown(self):
        with pytest.raises(ValueError):
            make_pool("worst-first")
