"""Dispatcher flush-policy edge cases and the parking offload's contract.

The deterministic tests drive a non-started dispatcher by hand
(``autostart=False`` + ``flush_now`` / ``_flush_reason``); the timing
tests run the real background thread with generous margins.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bb.frontier import Trail, bound_block, root_block
from repro.flowshop import random_instance
from repro.flowshop.bounds import LowerBoundData
from repro.service.dispatch import (
    BatchDispatcher,
    BatchingOffload,
    FlushPolicy,
    SessionCancelled,
)


@pytest.fixture(scope="module")
def instance():
    return random_instance(6, 4, seed=3)


@pytest.fixture(scope="module")
def data(instance):
    return LowerBoundData(instance)


def fresh_root(instance):
    """A one-row unbounded root block (a realistic submittable batch)."""
    return root_block(instance, Trail())


class TestFlushPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FlushPolicy(max_wait_s=0.0)
        with pytest.raises(ValueError):
            FlushPolicy(max_batch_nodes=0)

    def test_lone_session_flushes_immediately(self, instance, data):
        """pending(1) >= active(1): a single session never waits."""
        dispatcher = BatchDispatcher(autostart=False)
        dispatcher.session_started()
        dispatcher.submit("s1", data, fresh_root(instance))
        assert dispatcher._flush_reason(time.monotonic()) == "all-parked"

    def test_waits_while_a_peer_is_unparked(self, instance, data):
        """pending(1) < active(2) and young: no trigger yet."""
        dispatcher = BatchDispatcher(policy=FlushPolicy(max_wait_s=60.0), autostart=False)
        dispatcher.session_started()
        dispatcher.session_started()
        dispatcher.submit("s1", data, fresh_root(instance))
        assert dispatcher._flush_reason(time.monotonic()) is None

    def test_all_parked_when_every_session_parks(self, instance, data):
        dispatcher = BatchDispatcher(policy=FlushPolicy(max_wait_s=60.0), autostart=False)
        dispatcher.session_started()
        dispatcher.session_started()
        dispatcher.submit("s1", data, fresh_root(instance))
        dispatcher.submit("s2", data, fresh_root(instance))
        assert dispatcher._flush_reason(time.monotonic()) == "all-parked"

    def test_session_exit_reactivates_all_parked(self, instance, data):
        """A peer finishing its solve must unblock the waiters."""
        dispatcher = BatchDispatcher(policy=FlushPolicy(max_wait_s=60.0), autostart=False)
        dispatcher.session_started()
        dispatcher.session_started()
        dispatcher.submit("s1", data, fresh_root(instance))
        assert dispatcher._flush_reason(time.monotonic()) is None
        dispatcher.session_finished()
        assert dispatcher._flush_reason(time.monotonic()) == "all-parked"

    def test_timeout_fires_for_a_straggler(self, instance, data):
        dispatcher = BatchDispatcher(policy=FlushPolicy(max_wait_s=0.001), autostart=False)
        dispatcher.session_started()
        dispatcher.session_started()
        dispatcher.submit("s1", data, fresh_root(instance))
        time.sleep(0.005)
        assert dispatcher._flush_reason(time.monotonic()) == "timeout"

    def test_max_batch_fires_on_rows(self, instance, data):
        dispatcher = BatchDispatcher(
            policy=FlushPolicy(max_wait_s=60.0, max_batch_nodes=2), autostart=False
        )
        for _ in range(4):  # rows >= 2 while active stays 0-registered
            dispatcher.session_started()
        dispatcher.submit("s1", data, fresh_root(instance))
        dispatcher.submit("s2", data, fresh_root(instance))
        assert dispatcher._flush_reason(time.monotonic()) == "max-batch"


class TestFlushExecution:
    def test_fused_launch_is_bit_identical(self, instance, data):
        """One fused launch == per-block frontier bounding, bit for bit."""
        dispatcher = BatchDispatcher(autostart=False)
        blocks = [fresh_root(instance) for _ in range(3)]
        futures = [dispatcher.submit(f"s{i}", data, b) for i, b in enumerate(blocks)]
        flushed = dispatcher.flush_now()
        assert flushed == 3
        reference = fresh_root(instance)
        bound_block(data, reference)
        for block, future in zip(blocks, futures):
            bounds, simulated_s, measured_s = future.result(timeout=1)
            assert np.array_equal(block.lower_bound, reference.lower_bound)
            assert bounds is block.lower_bound
            assert simulated_s == 0.0 and measured_s >= 0.0
        stats = dispatcher.stats
        assert stats.n_launches == 1  # one instance group -> ONE launch
        assert stats.n_requests == 3
        assert stats.max_requests_coalesced == 3

    def test_distinct_instances_group_separately(self, instance, data):
        other = random_instance(5, 3, seed=9)
        other_data = LowerBoundData(other)
        dispatcher = BatchDispatcher(autostart=False)
        f1 = dispatcher.submit("s1", data, fresh_root(instance))
        f2 = dispatcher.submit("s2", other_data, fresh_root(other))
        dispatcher.flush_now()
        f1.result(timeout=1)
        f2.result(timeout=1)
        assert dispatcher.stats.n_flushes == 1
        assert dispatcher.stats.n_launches == 2  # one per instance

    def test_cancellation_mid_batch(self, instance, data):
        """A cancelled request unparks with SessionCancelled; peers flush on."""
        dispatcher = BatchDispatcher(autostart=False)
        block_keep = fresh_root(instance)
        future_gone = dispatcher.submit("victim", data, fresh_root(instance))
        future_keep = dispatcher.submit("survivor", data, block_keep)
        assert dispatcher.cancel_pending("victim") == 1
        with pytest.raises(SessionCancelled):
            future_gone.result(timeout=1)
        assert dispatcher.flush_now() == 1  # only the survivor remains
        bounds, _, _ = future_keep.result(timeout=1)
        reference = fresh_root(instance)
        bound_block(data, reference)
        assert np.array_equal(bounds, reference.lower_bound)
        assert dispatcher.stats.n_cancelled == 1

    def test_cancel_pending_unknown_token_is_noop(self, data):
        dispatcher = BatchDispatcher(autostart=False)
        assert dispatcher.cancel_pending("nobody") == 0

    def test_close_fails_leftover_futures(self, instance, data):
        dispatcher = BatchDispatcher(autostart=False)
        future = dispatcher.submit("s1", data, fresh_root(instance))
        other = dispatcher.submit("s2", data, fresh_root(instance))
        dispatcher.close()
        # parked futures are cancelled (not left pending) before the join
        with pytest.raises(SessionCancelled):
            future.result(timeout=1)
        with pytest.raises(SessionCancelled):
            other.result(timeout=1)
        assert dispatcher.stats.n_cancelled == 2
        assert dispatcher.close_join_timed_out is False
        with pytest.raises(RuntimeError, match="closed"):
            dispatcher.submit("s1", data, fresh_root(instance))


class TestBackgroundThread:
    def test_lone_parker_is_released_promptly(self, instance, data):
        with BatchDispatcher(policy=FlushPolicy(max_wait_s=30.0)) as dispatcher:
            dispatcher.session_started()
            offload = BatchingOffload(dispatcher, data, token="s1")
            block = fresh_root(instance)
            # all-parked (1 >= 1) must release us long before max_wait_s
            bounds, _, _ = offload.bound_block(block)
            reference = fresh_root(instance)
            bound_block(data, reference)
            assert np.array_equal(bounds, reference.lower_bound)

    def test_timeout_releases_a_straggler_pair(self, instance, data):
        with BatchDispatcher(policy=FlushPolicy(max_wait_s=0.01)) as dispatcher:
            dispatcher.session_started()
            dispatcher.session_started()  # a phantom peer that never parks
            offload = BatchingOffload(dispatcher, data, token="s1")
            started = time.perf_counter()
            offload.bound_block(fresh_root(instance))
            assert time.perf_counter() - started < 5.0
            assert dispatcher.stats.flush_reasons.get("timeout", 0) >= 1

    def test_two_threads_coalesce_into_one_launch(self, instance, data):
        with BatchDispatcher(policy=FlushPolicy(max_wait_s=30.0)) as dispatcher:
            dispatcher.session_started()
            dispatcher.session_started()
            results = {}

            def park(token):
                offload = BatchingOffload(dispatcher, data, token=token)
                bounds, _, _ = offload.bound_block(fresh_root(instance))
                results[token] = np.array(bounds)

            threads = [threading.Thread(target=park, args=(t,)) for t in ("a", "b")]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            dispatcher.session_finished()
            dispatcher.session_finished()
            assert set(results) == {"a", "b"}
            assert dispatcher.stats.n_launches == 1
            assert dispatcher.stats.max_requests_coalesced == 2


class TestBatchingOffload:
    def test_leaf_siblings_short_circuit(self, instance, data):
        """Complete-schedule siblings never reach the dispatcher."""
        dispatcher = BatchDispatcher(autostart=False)  # would park forever
        offload = BatchingOffload(dispatcher, data, token="s1")
        block = fresh_root(instance)
        block.depth[:] = instance.n_jobs  # pretend: complete schedules
        block.lower_bound[:] = 123
        bounds, simulated_s, measured_s = offload.bound_block(block, siblings=True)
        assert bounds is block.lower_bound
        assert (simulated_s, measured_s) == (0.0, 0.0)
        assert dispatcher.pending_requests == 0

    def test_empty_block_short_circuits(self, instance, data):
        from repro.bb.frontier import NodeBlock

        dispatcher = BatchDispatcher(autostart=False)
        offload = BatchingOffload(dispatcher, data, token="s1")
        empty = NodeBlock.empty(instance.n_jobs, instance.n_machines, Trail())
        bounds, _, _ = offload.bound_block(empty)
        assert len(bounds) == 0
        assert dispatcher.pending_requests == 0

    def test_object_layout_unsupported(self, data):
        offload = BatchingOffload(BatchDispatcher(autostart=False), data, token="s1")
        with pytest.raises(NotImplementedError):
            offload.bound_nodes([])
