"""Tests for instance file I/O."""

from __future__ import annotations

import pytest

from repro.flowshop import (
    dumps_taillard,
    loads_taillard,
    random_instance,
    read_json_file,
    read_taillard_file,
    write_json_file,
    write_taillard_file,
)


class TestTaillardFormat:
    def test_round_trip_job_major(self, small_instance):
        text = dumps_taillard(small_instance)
        again = loads_taillard(text, name="again")
        assert again == small_instance
        assert again.name == "again"

    def test_round_trip_machine_major(self, small_instance):
        text = dumps_taillard(small_instance, job_major=False)
        again = loads_taillard(text, job_major=False)
        assert again == small_instance

    def test_header_parsed(self):
        inst = loads_taillard("2 3\n1 2 3\n4 5 6\n")
        assert inst.shape == (2, 3)
        assert inst.processing_times.tolist() == [[1, 2, 3], [4, 5, 6]]

    def test_tolerates_commas_and_whitespace(self):
        inst = loads_taillard("2 2\n 1, 2\n3,4 ")
        assert inst.processing_times.tolist() == [[1, 2], [3, 4]]

    def test_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            loads_taillard("2 3\n1 2 3 4 5")

    def test_rejects_bad_tokens(self):
        with pytest.raises(ValueError):
            loads_taillard("2 2\n1 2 3 x")

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError):
            loads_taillard("0 2\n")
        with pytest.raises(ValueError):
            loads_taillard("3")

    def test_file_round_trip(self, tmp_path, small_instance):
        path = write_taillard_file(small_instance, tmp_path / "inst.txt")
        again = read_taillard_file(path)
        assert again == small_instance
        assert again.name == "inst"


class TestJsonFormat:
    def test_file_round_trip_preserves_metadata(self, tmp_path):
        inst = random_instance(5, 3, seed=9)
        path = write_json_file(inst, tmp_path / "inst.json")
        again = read_json_file(path)
        assert again == inst
        assert again.metadata["seed"] == 9
        assert again.name == inst.name

    def test_json_is_human_readable(self, tmp_path, small_instance):
        path = write_json_file(small_instance, tmp_path / "inst.json")
        text = path.read_text()
        assert "processing_times" in text
        assert "n_jobs" in text
