"""Tests for :mod:`repro.flowshop.instance`."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowshop import FlowShopInstance, makespan


class TestConstruction:
    def test_basic_shape(self):
        inst = FlowShopInstance([[1, 2, 3], [4, 5, 6]])
        assert inst.n_jobs == 2
        assert inst.n_machines == 3
        assert inst.shape == (2, 3)

    def test_matrix_is_read_only(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            inst.processing_times[0, 0] = 99

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            FlowShopInstance([1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FlowShopInstance(np.zeros((0, 3), dtype=np.int64))

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            FlowShopInstance([[1, -2], [3, 4]])

    def test_rejects_non_integer_times(self):
        with pytest.raises(ValueError):
            FlowShopInstance([[1.5, 2.0], [3.0, 4.0]])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            FlowShopInstance([[float("nan"), 2.0], [3.0, 4.0]])

    def test_accepts_integer_valued_floats(self):
        inst = FlowShopInstance([[1.0, 2.0], [3.0, 4.0]])
        assert inst.processing_times.dtype == np.int64

    def test_metadata_copied(self):
        meta = {"seed": 3}
        inst = FlowShopInstance([[1, 2]], metadata=meta)
        meta["seed"] = 99
        assert inst.metadata["seed"] == 3

    def test_from_rows(self):
        inst = FlowShopInstance.from_rows([[1, 2], [3, 4]], name="rows")
        assert inst.name == "rows"
        assert inst.n_jobs == 2


class TestAccessors:
    def test_job_and_machine_times(self):
        inst = FlowShopInstance([[1, 2, 3], [4, 5, 6]])
        assert inst.job_times(1).tolist() == [4, 5, 6]
        assert inst.machine_times(2).tolist() == [3, 6]
        assert inst.machine_load(0) == 5
        assert inst.job_total_time(0) == 6
        assert inst.total_processing_time == 21

    def test_out_of_range_indices(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        with pytest.raises(IndexError):
            inst.job_times(5)
        with pytest.raises(IndexError):
            inst.machine_times(-1 - inst.n_machines)

    def test_restricted_to_jobs(self):
        inst = FlowShopInstance([[1, 2], [3, 4], [5, 6]], name="base")
        sub = inst.restricted_to_jobs([2, 0])
        assert sub.n_jobs == 2
        assert sub.processing_times.tolist() == [[5, 6], [1, 2]]
        assert sub.metadata["job_subset"] == (2, 0)

    def test_restricted_to_jobs_rejects_duplicates(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            inst.restricted_to_jobs([0, 0])

    def test_restricted_to_machines(self):
        inst = FlowShopInstance([[1, 2, 3], [4, 5, 6]])
        sub = inst.restricted_to_machines([2])
        assert sub.n_machines == 1
        assert sub.processing_times.tolist() == [[3], [6]]


class TestBounds:
    def test_trivial_bounds_bracket_makespan(self):
        inst = FlowShopInstance([[4, 3], [2, 5], [6, 2]])
        best = min(
            makespan(inst, order)
            for order in ([0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0])
        )
        assert inst.trivial_lower_bound() <= best <= inst.trivial_upper_bound()

    @given(
        st.integers(2, 6),
        st.integers(1, 4),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_trivial_lower_bound_is_admissible(self, n_jobs, n_machines, seed):
        rng = np.random.default_rng(seed)
        pt = rng.integers(1, 30, size=(n_jobs, n_machines))
        inst = FlowShopInstance(pt)
        # identity order gives *a* makespan; the LB must not exceed any makespan
        assert inst.trivial_lower_bound() <= makespan(inst, list(range(n_jobs)))


class TestEqualityAndSerialisation:
    def test_round_trip(self):
        inst = FlowShopInstance([[1, 2], [3, 4]], name="x", metadata={"k": 1})
        again = FlowShopInstance.from_dict(inst.to_dict())
        assert again == inst
        assert again.name == "x"

    def test_equality_ignores_name(self):
        a = FlowShopInstance([[1, 2]], name="a")
        b = FlowShopInstance([[1, 2]], name="b")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = FlowShopInstance([[1, 2]])
        b = FlowShopInstance([[1, 3]])
        assert a != b
        assert a != "not an instance"
