"""Tests for incumbent / gap tracking."""

from __future__ import annotations

import pytest

from repro.bb import SequentialBranchAndBound
from repro.bb.progress import ProgressTracker
from repro.flowshop import random_instance


class TestProgressTracker:
    def test_gap_computation(self):
        tracker = ProgressTracker()
        tracker.record_incumbent(100)
        tracker.record_bound(90)
        assert tracker.current_gap == pytest.approx(0.10)
        assert not tracker.is_proved_optimal()
        tracker.record_bound(100)
        assert tracker.current_gap == pytest.approx(0.0)
        assert tracker.is_proved_optimal()

    def test_incumbent_must_improve(self):
        tracker = ProgressTracker()
        tracker.record_incumbent(100)
        with pytest.raises(ValueError):
            tracker.record_incumbent(120)

    def test_gap_unknown_without_both_sides(self):
        tracker = ProgressTracker()
        assert tracker.current_gap is None
        tracker.record_incumbent(50)
        assert tracker.current_gap is None

    def test_nodes_non_decreasing(self):
        tracker = ProgressTracker()
        tracker.record_nodes(10)
        with pytest.raises(ValueError):
            tracker.record_nodes(5)

    def test_incumbent_trajectory(self):
        tracker = ProgressTracker()
        tracker.record_incumbent(100, nodes_explored=1)
        tracker.record_bound(80, nodes_explored=5)
        tracker.record_incumbent(95, nodes_explored=9)
        trajectory = tracker.incumbent_trajectory()
        assert [value for _, value in trajectory] == [100, 95]
        assert tracker.events[-1].nodes_explored == 9

    def test_attach_to_engine(self):
        instance = random_instance(8, 4, seed=6)
        solver = SequentialBranchAndBound(instance, initial_upper_bound=float("inf"))
        tracker = ProgressTracker().attach_to_engine(solver)
        result = solver.solve()
        assert tracker.incumbent == result.best_makespan
        # at least one improvement was recorded and they are non-increasing
        values = [value for _, value in tracker.incumbent_trajectory()]
        assert values and values == sorted(values, reverse=True)

    def test_attach_preserves_existing_callback(self):
        seen = []
        instance = random_instance(7, 4, seed=6)
        solver = SequentialBranchAndBound(
            instance,
            initial_upper_bound=float("inf"),
            on_incumbent=lambda value, order: seen.append(value),
        )
        tracker = ProgressTracker().attach_to_engine(solver)
        solver.solve()
        assert seen  # the original callback still fires
        assert tracker.incumbent == min(seen)
