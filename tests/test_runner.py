"""Tests for the all-artefacts evaluation runner."""

from __future__ import annotations

import json

import pytest

from repro.experiments import EvaluationReport, run_all, write_report


@pytest.fixture(scope="module")
def report() -> EvaluationReport:
    return run_all(include_measured=False)


class TestRunAll:
    def test_all_paper_artefacts_present(self, report):
        names = [a.name for a in report.artefacts]
        assert names == ["table1", "table2", "table3", "table4", "figure4", "figure5"]

    def test_comparisons_attached(self, report):
        for name in ("table2", "table3", "table4", "figure4", "figure5"):
            artefact = report.get(name)
            assert artefact.comparison is not None
            assert artefact.comparison["mean_abs_rel_error"] < 0.20

    def test_table1_has_no_comparison(self, report):
        assert report.get("table1").comparison is None
        assert "PTM" in report.get("table1").payload["text"]

    def test_get_unknown_raises(self, report):
        with pytest.raises(KeyError):
            report.get("table99")

    def test_summary_lines(self, report):
        lines = report.summary_lines()
        assert len(lines) == len(report.artefacts)
        assert any("table2" in line for line in lines)

    def test_measured_artefact_optional(self):
        measured = run_all(include_measured=True, bounding_fraction_nodes=40)
        names = [a.name for a in measured.artefacts]
        assert "bounding_fraction" in names
        fraction = measured.get("bounding_fraction")
        assert fraction.payload["bounding_fraction"] > 0.8

    def test_json_round_trip(self, report, tmp_path):
        path = write_report(report, tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert len(payload["artefacts"]) == len(report.artefacts)
