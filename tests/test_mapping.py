"""Tests for the placement analysis (:mod:`repro.core.mapping`)."""

from __future__ import annotations

import math


from repro.core.mapping import analyze_placements, default_candidates, recommend_placement
from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import TESLA_C2050
from repro.gpu.placement import DataPlacement


class TestAnalysis:
    def test_every_candidate_is_reported(self):
        complexity = DataStructureComplexity(n=50, m=20)
        analyses = analyze_placements(complexity, TESLA_C2050)
        assert len(analyses) == len(default_candidates())

    def test_fitting_placements_sorted_first_by_cost(self):
        complexity = DataStructureComplexity(n=100, m=20)
        analyses = analyze_placements(complexity, TESLA_C2050)
        fits = [a.fits for a in analyses]
        # once a non-fitting entry appears, no fitting entry may follow
        assert fits == sorted(fits, reverse=True)
        fitting_costs = [a.per_thread_cycles for a in analyses if a.fits]
        assert fitting_costs == sorted(fitting_costs)

    def test_non_fitting_marked(self):
        complexity = DataStructureComplexity(n=200, m=20)
        analyses = analyze_placements(complexity, TESLA_C2050)
        by_name = {a.name: a for a in analyses}
        assert not by_name["shared-JM-LM"].fits
        assert math.isinf(by_name["shared-JM-LM"].per_thread_cycles)

    def test_recommendation_matches_paper(self):
        """PTM + JM in shared memory is the best fitting placement for every
        instance class of the paper (Section IV-B's conclusion)."""
        for n in (20, 50, 100, 200):
            complexity = DataStructureComplexity(n=n, m=20)
            placement = recommend_placement(complexity, TESLA_C2050)
            assert placement.name == "shared-PTM-JM"

    def test_recommendation_falls_back_when_nothing_fits(self):
        complexity = DataStructureComplexity(n=2000, m=20)
        placement = recommend_placement(complexity, TESLA_C2050)
        assert isinstance(placement, DataPlacement)
        # the fallback must always be realisable
        assert placement.shared_bytes_per_block(complexity) <= 48 * 1024
