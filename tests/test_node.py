"""Tests for :mod:`repro.bb.node`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bb.node import Node, root_node
from repro.flowshop.schedule import partial_completion_times


class TestRootNode:
    def test_root_properties(self, small_instance):
        root = root_node(small_instance)
        assert root.depth == 0
        assert root.n_remaining == small_instance.n_jobs
        assert not root.is_leaf
        assert root.lower_bound is None
        assert root.release.tolist() == [0] * small_instance.n_machines
        assert root.unscheduled() == list(range(small_instance.n_jobs))

    def test_scheduled_mask_empty(self, small_instance):
        root = root_node(small_instance)
        assert not root.scheduled_mask().any()


class TestChildren:
    def test_child_release_matches_schedule_module(self, small_instance):
        root = root_node(small_instance)
        child = root.child(2, small_instance.processing_times)
        expected = partial_completion_times(small_instance, [2])
        assert np.array_equal(child.release, expected)
        grandchild = child.child(0, small_instance.processing_times)
        expected2 = partial_completion_times(small_instance, [2, 0])
        assert np.array_equal(grandchild.release, expected2)

    def test_children_count(self, small_instance):
        root = root_node(small_instance)
        children = root.children(small_instance.processing_times)
        assert len(children) == small_instance.n_jobs
        assert {c.prefix[0] for c in children} == set(range(small_instance.n_jobs))

    def test_leaf_child_has_makespan(self, tiny_instance):
        node = root_node(tiny_instance)
        for job in (0, 1, 2):
            node = node.child(job, tiny_instance.processing_times)
        assert node.is_leaf
        assert node.makespan == node.release[-1]
        assert node.lower_bound == node.makespan

    def test_child_rejects_duplicate_job(self, small_instance):
        root = root_node(small_instance)
        child = root.child(1, small_instance.processing_times)
        with pytest.raises(ValueError):
            child.child(1, small_instance.processing_times)

    def test_child_rejects_out_of_range(self, small_instance):
        root = root_node(small_instance)
        with pytest.raises(ValueError):
            root.child(small_instance.n_jobs, small_instance.processing_times)

    def test_parent_release_untouched(self, small_instance):
        root = root_node(small_instance)
        before = root.release.copy()
        root.child(0, small_instance.processing_times)
        assert np.array_equal(root.release, before)


class TestOrdering:
    def test_sort_key_prefers_smaller_bound(self, small_instance):
        a = root_node(small_instance)
        b = root_node(small_instance)
        a.lower_bound = 10
        b.lower_bound = 20
        assert a < b

    def test_tie_break_by_creation_index(self, small_instance):
        root = root_node(small_instance)
        a = root.child(0, small_instance.processing_times)
        b = root.child(1, small_instance.processing_times)
        a.lower_bound = b.lower_bound = 10
        assert a < b  # a was created first

    def test_order_index_is_per_search(self, small_instance):
        # creation indices restart at every root: traces and tie-breaks do
        # not depend on what ran earlier in the process
        def indices():
            root = root_node(small_instance)
            children = root.children(small_instance.processing_times)
            return [root.order_index] + [c.order_index for c in children]

        first = indices()
        second = indices()
        assert first == second
        assert first == list(range(small_instance.n_jobs + 1))

    def test_prefix_too_long_rejected(self, small_instance):
        with pytest.raises(ValueError):
            Node(
                prefix=tuple(range(small_instance.n_jobs + 1)),
                release=np.zeros(small_instance.n_machines, dtype=np.int64),
                n_jobs=small_instance.n_jobs,
            )
