"""Tests for the wall-clock timing utilities."""

from __future__ import annotations

import time

import pytest

from repro.perf.timing import Timer, estimate_timer_resolution, measure_callable


class TestTimer:
    def test_context_manager(self):
        with Timer("t") as timer:
            time.sleep(0.001)
        assert timer.elapsed_s > 0

    def test_accumulates_over_multiple_runs(self):
        timer = Timer()
        timer.start()
        timer.stop()
        first = timer.elapsed_s
        timer.start()
        time.sleep(0.001)
        timer.stop()
        assert timer.elapsed_s > first

    def test_reset(self):
        timer = Timer()
        timer.start()
        timer.stop()
        timer.reset()
        assert timer.elapsed_s == 0.0

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestMeasureCallable:
    def test_returns_result_and_times(self):
        measurement = measure_callable(lambda: 41 + 1, repeats=3, warmup=1)
        assert measurement.result == 42
        assert measurement.best_s <= measurement.mean_s
        assert measurement.repeats == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure_callable(lambda: None, warmup=-1)


class TestTimerResolution:
    def test_resolution_is_positive(self):
        assert estimate_timer_resolution() >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_timer_resolution(samples=1)
