"""Segmented min-key frontier index: equivalence, hysteresis, pop_batch.

The segmented index must be *observationally identical* to the linear
scan: the packed key embeds the creation-index tie-break, so every
selection operator has exactly one correct answer and caching per-segment
minima may change only the cost of finding it.  The property test here
drives random interleaved operation sequences — including snapshot
save/restore round-trips mid-sequence — against a segmented store (tiny
segments, so even small frontiers span many of them) and a linear twin,
and asserts the full observable log matches pop-for-pop.

Also covered: the cap-hysteresis regime machine (enter at the cap, leave
strictly below the low-water mark, no flapping at the boundary) and the
``pop_batch`` micro-fix (one selection pass when nothing is pruned).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.frontier import (
    CAP_LOW_WATER_FRACTION,
    BlockFrontier,
    Trail,
)
from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.snapshot import dumps_snapshot, loads_snapshot
from repro.bb.stats import SearchStats
from repro.core.config import GpuBBConfig
from repro.flowshop import random_instance

N_JOBS, N_MACHINES = 6, 3
_INSTANCE = random_instance(N_JOBS, N_MACHINES, seed=5)


def _block(frontier: BlockFrontier, lbs, depths, order_start: int):
    from repro.bb.frontier import NodeBlock

    count = len(lbs)
    return NodeBlock(
        scheduled_mask=np.zeros((count, N_JOBS), dtype=bool),
        release=np.zeros((count, N_MACHINES), dtype=np.int32),
        lower_bound=np.asarray(lbs, dtype=np.int32),
        depth=np.asarray(depths, dtype=np.int32),
        order_index=np.arange(order_start, order_start + count, dtype=np.int32),
        trail_id=np.zeros(count, dtype=np.int32),
        trail=frontier._trail,
    )


def _frontier(kind: str, cap) -> BlockFrontier:
    trail = Trail()
    trail.append_root()
    # segment_shift=2 -> 4-row segments: even a 30-node store spans many
    # segments, so the segmented code paths (not the single-segment exact
    # fallback) are what the property test exercises
    return BlockFrontier(
        N_JOBS,
        N_MACHINES,
        trail,
        max_pending=cap,
        frontier_index=kind,
        segment_shift=2,
    )


def _roundtrip(frontier: BlockFrontier, kind: str) -> BlockFrontier:
    """Snapshot the store and restore it (same container, same index kind)."""
    blob = dumps_snapshot(
        _INSTANCE,
        layout="block",
        frontier=frontier,
        upper_bound=float("inf"),
        best_order=(),
        stats=SearchStats(),
        trail=frontier._trail,
        engine={"frontier_index": kind},
    )
    snapshot = loads_snapshot(blob)
    restored = snapshot.frontier
    assert isinstance(restored, BlockFrontier)
    assert restored.frontier_index == kind
    # the restored default segment size is the production 4096; shrink the
    # view back to the tiny test segments so the index stays exercised
    if restored._segmented:
        restored._seg_shift = frontier._seg_shift
        restored._seg_size = frontier._seg_size
        restored._seg_mask = frontier._seg_mask
        n_seg = (restored._lb.shape[0] + restored._seg_mask) >> restored._seg_shift
        restored._seg_key = np.full(max(n_seg, 1), np.iinfo(np.int64).max, np.int64)
        restored._seg_krow = np.zeros(max(n_seg, 1), dtype=np.int32)
        restored._seg_omax = np.zeros(max(n_seg, 1), dtype=np.int32)
        restored._seg_orow = np.zeros(max(n_seg, 1), dtype=np.int32)
        restored._seg_dirty = np.ones(max(n_seg, 1), dtype=bool)
        restored._seg_any_dirty = True
    return restored


@st.composite
def _op(draw):
    kind = draw(
        st.sampled_from(["push", "push", "pops", "batch", "tie", "prune", "snapshot"])
    )
    if kind == "push":
        lbs = draw(st.lists(st.integers(0, 30), min_size=1, max_size=10))
        depths = draw(
            st.lists(
                st.integers(0, N_JOBS - 1),
                min_size=len(lbs),
                max_size=len(lbs),
            )
        )
        return ("push", lbs, depths)
    if kind == "pops":
        return ("pops", draw(st.integers(1, 5)))
    if kind == "batch":
        return (
            "batch",
            draw(st.integers(1, 7)),
            draw(st.one_of(st.none(), st.integers(5, 28))),
        )
    if kind == "prune":
        return ("prune", draw(st.integers(1, 28)))
    return (kind,)


class TestSegmentedLinearEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(_op(), min_size=1, max_size=25),
        cap=st.sampled_from([None, 12, 25]),
    )
    def test_random_interleavings_agree_pop_for_pop(self, ops, cap):
        frontiers = {k: _frontier(k, cap) for k in ("linear", "segmented")}
        order = 0
        for step in ops:
            logs = {}
            for kind in ("linear", "segmented"):
                f = frontiers[kind]
                log = []
                if step[0] == "push":
                    _, lbs, depths = step
                    f.push_block(_block(f, lbs, depths, order))
                elif step[0] == "pops":
                    for _ in range(min(step[1], len(f))):
                        row = f.peek_best()
                        log.append(tuple(int(x) for x in f.row_view(row)[:3]))
                        f.discard(row)
                elif step[0] == "batch" and len(f):
                    _, max_nodes, ub = step
                    block, pruned = f.pop_batch(
                        max_nodes, upper_bound=None if ub is None else float(ub)
                    )
                    log.append(
                        (
                            "batch",
                            pruned,
                            block.lower_bound.tolist(),
                            block.depth.tolist(),
                            block.order_index.tolist(),
                        )
                    )
                elif step[0] == "tie" and len(f):
                    block = f.pop_min_tie_batch()
                    if block is None:
                        log.append(("tie", None))
                    else:
                        log.append(("tie", block.order_index.tolist()))
                elif step[0] == "prune" and len(f):
                    log.append(("prune", f.prune_to(float(step[1]))))
                elif step[0] == "snapshot":
                    frontiers[kind] = f = _roundtrip(f, kind)
                log.append(
                    (
                        "state",
                        len(f),
                        f.best_lower_bound(),
                        f.restricted,
                        f.regime_switches,
                    )
                )
                logs[kind] = log
            if step[0] == "push":
                order += len(step[1])
            assert logs["linear"] == logs["segmented"], (step, logs)


class TestCapHysteresis:
    def test_regime_enters_at_cap_and_exits_below_low_water(self):
        cap = 10
        low_water = int(CAP_LOW_WATER_FRACTION * cap)  # 8
        f = _frontier("segmented", cap)
        f.push_block(_block(f, [5] * cap, [1] * cap, 0))
        assert f.restricted
        assert f.regime_switches == 1
        # draining to [low_water, cap) must NOT leave the regime: the
        # pre-hysteresis rule (restricted iff size >= cap) would flap
        # back to best-first here on every single pop
        while len(f) > low_water:
            f.discard(f.peek_best())
            assert f.restricted
            assert f.regime_switches == 1
        # the exit is strict: AT the low-water mark the regime still holds
        assert len(f) == low_water
        assert f.restricted
        # one pop strictly below the low-water mark releases it, once
        f.discard(f.peek_best())
        assert not f.restricted
        assert f.regime_switches == 2

    def test_boundary_oscillation_counts_two_switches_not_many(self):
        cap = 10
        f = _frontier("segmented", cap)
        order = 0
        f.push_block(_block(f, [5] * cap, [1] * cap, order))
        order += cap
        # oscillate around the cap boundary: pop one, push one, 20 times;
        # the stateless rule would register a switch on every iteration
        for _ in range(20):
            assert f.restricted
            f.discard(f.peek_best())
            assert f.restricted  # still >= low water
            f.push_block(_block(f, [5], [1], order))
            order += 1
        assert f.regime_switches == 1

    def test_restricted_pops_deepest_across_segments(self):
        # while restricted, selection is depth-first (max creation index)
        # and must stay exact when the winner sits in a far segment
        f = _frontier("segmented", 9)
        f.push_block(_block(f, list(range(9)), [1] * 9, 0))
        assert f.restricted
        row = f.peek_best()
        assert int(f.row_view(row)[2]) == 8  # newest node, not best bound

    def test_engines_validate_frontier_index(self):
        with pytest.raises(ValueError, match="frontier_index"):
            GpuBBConfig(frontier_index="bogus")
        with pytest.raises(ValueError, match="frontier_index"):
            SequentialBranchAndBound(_INSTANCE, frontier_index="bogus")
        with pytest.raises(ValueError, match="frontier index"):
            BlockFrontier(N_JOBS, N_MACHINES, Trail(), frontier_index="bogus")

    def test_snapshot_preserves_regime_state(self):
        f = _frontier("segmented", 10)
        f.push_block(_block(f, [5] * 10, [1] * 10, 0))
        assert f.restricted and f.regime_switches == 1
        f.discard(f.peek_best())  # size 9: restricted only via hysteresis
        restored = _roundtrip(f, "segmented")
        assert restored.restricted
        assert restored.regime_switches == 1


class TestPopBatchSingleScan:
    def _counting(self, f):
        calls = {"n": 0}
        original = f._best_prefix

        def counted(count):
            calls["n"] += 1
            return original(count)

        f._best_prefix = counted
        return calls

    @pytest.mark.parametrize("kind", ["linear", "segmented"])
    def test_nothing_pruned_costs_one_selection_pass(self, kind):
        f = _frontier(kind, None)
        f.push_block(_block(f, list(range(20)), [1] * 20, 0))
        calls = self._counting(f)
        block, pruned = f.pop_batch(6, upper_bound=100.0)
        assert calls["n"] == 1
        assert pruned == 0
        assert block.lower_bound.tolist() == list(range(6))

    @pytest.mark.parametrize("kind", ["linear", "segmented"])
    def test_partial_fill_drains_and_drops_stale(self, kind):
        f = _frontier(kind, None)
        f.push_block(_block(f, list(range(20)), [1] * 20, 0))
        calls = self._counting(f)
        block, pruned = f.pop_batch(6, upper_bound=4.0)
        assert calls["n"] == 1
        assert pruned == 16
        assert block.lower_bound.tolist() == [0, 1, 2, 3]
        assert len(f) == 0

    @pytest.mark.parametrize("kind", ["linear", "segmented"])
    def test_all_stale_drains_everything(self, kind):
        f = _frontier(kind, None)
        f.push_block(_block(f, list(range(5, 25)), [1] * 20, 0))
        block, pruned = f.pop_batch(6, upper_bound=5.0)
        assert pruned == 20
        assert len(block) == 0
        assert len(f) == 0
