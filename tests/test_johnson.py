"""Tests for :mod:`repro.flowshop.johnson`."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowshop import (
    FlowShopInstance,
    johnson_makespan,
    johnson_order,
    johnson_order_with_lags,
    makespan,
    two_machine_makespan,
    two_machine_makespan_with_lags,
)

times = st.lists(st.integers(0, 50), min_size=1, max_size=7)


class TestJohnsonOrder:
    def test_textbook_example(self):
        # Classic example: optimal order is job 2, 0, 1 with makespan 12
        a = [3, 5, 1]
        b = [6, 2, 2]
        order = johnson_order(a, b)
        assert order.tolist() == [2, 0, 1]
        assert johnson_makespan(a, b) == 12

    def test_order_is_permutation(self):
        order = johnson_order([5, 1, 4, 2], [2, 3, 4, 1])
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            johnson_order([1, 2], [1])

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            johnson_order([1, -2], [1, 1])

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_johnson_is_optimal_for_two_machines(self, data):
        n = data.draw(st.integers(2, 6))
        a = data.draw(st.lists(st.integers(1, 30), min_size=n, max_size=n))
        b = data.draw(st.lists(st.integers(1, 30), min_size=n, max_size=n))
        best = min(two_machine_makespan(a, b, perm) for perm in itertools.permutations(range(n)))
        assert johnson_makespan(a, b) == best

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_johnson_matches_flowshop_makespan(self, data):
        """The 2-machine recurrence agrees with the general flow-shop recurrence."""
        n = data.draw(st.integers(1, 6))
        a = data.draw(st.lists(st.integers(1, 30), min_size=n, max_size=n))
        b = data.draw(st.lists(st.integers(1, 30), min_size=n, max_size=n))
        inst = FlowShopInstance(np.column_stack([a, b]))
        order = johnson_order(a, b)
        assert two_machine_makespan(a, b, order) == makespan(inst, order)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_subset_consistency(self, data):
        """Removing jobs from a Johnson order leaves a Johnson-optimal order.

        This is the property that lets the paper precompute ``JM`` once and
        reuse it for every sub-problem by skipping scheduled jobs.
        """
        n = data.draw(st.integers(3, 6))
        a = np.array(data.draw(st.lists(st.integers(1, 30), min_size=n, max_size=n)))
        b = np.array(data.draw(st.lists(st.integers(1, 30), min_size=n, max_size=n)))
        subset = data.draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
        subset = sorted(subset)

        full_order = johnson_order(a, b)
        filtered = [j for j in full_order if j in subset]
        # makespan of the filtered order on the restricted jobs
        sub_a, sub_b = a[subset], b[subset]
        remap = {job: i for i, job in enumerate(subset)}
        filtered_local = [remap[j] for j in filtered]
        best = min(
            two_machine_makespan(sub_a, sub_b, perm)
            for perm in itertools.permutations(range(len(subset)))
        )
        assert two_machine_makespan(sub_a, sub_b, filtered_local) == best


class TestJohnsonWithLags:
    def test_zero_lags_reduce_to_plain_johnson(self):
        a = [3, 5, 1, 7]
        b = [6, 2, 2, 4]
        lags = [0, 0, 0, 0]
        assert johnson_order_with_lags(a, b, lags).tolist() == johnson_order(a, b).tolist()

    def test_lagged_makespan_respects_start_offsets(self):
        a, b, lags = [2, 3], [4, 1], [1, 2]
        base = two_machine_makespan_with_lags(a, b, lags, [0, 1])
        shifted = two_machine_makespan_with_lags(a, b, lags, [0, 1], start_a=5, start_b=0)
        assert shifted >= base
        assert two_machine_makespan_with_lags(a, b, lags, [0, 1], start_b=100) >= 100

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_lagged_johnson_is_optimal(self, data):
        """Johnson's rule on (a+d, d+b) solves the two-machine problem with lags."""
        n = data.draw(st.integers(2, 5))
        a = data.draw(st.lists(st.integers(1, 20), min_size=n, max_size=n))
        b = data.draw(st.lists(st.integers(1, 20), min_size=n, max_size=n))
        lags = data.draw(st.lists(st.integers(0, 20), min_size=n, max_size=n))
        best = min(
            two_machine_makespan_with_lags(a, b, lags, perm)
            for perm in itertools.permutations(range(n))
        )
        order = johnson_order_with_lags(a, b, lags)
        assert two_machine_makespan_with_lags(a, b, lags, order) == best

    def test_rejects_order_that_is_not_permutation(self):
        with pytest.raises(ValueError):
            two_machine_makespan_with_lags([1, 2], [3, 4], [0, 0], [0, 0])
