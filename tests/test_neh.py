"""Tests for the NEH heuristic."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb import brute_force_optimum
from repro.flowshop import FlowShopInstance, makespan, neh_heuristic, neh_order
from repro.flowshop.neh import best_insertion


class TestNeh:
    def test_order_is_permutation(self, small_instance):
        order = neh_order(small_instance)
        assert sorted(order) == list(range(small_instance.n_jobs))

    def test_schedule_is_feasible(self, small_instance):
        sched = neh_heuristic(small_instance)
        assert sched.is_feasible()
        assert sched.makespan == makespan(small_instance, sched.order)

    def test_never_below_optimum(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        assert neh_heuristic(small_instance).makespan >= optimum

    def test_close_to_optimum_on_small_instances(self):
        """NEH is usually within a few percent; on 6-job instances it should
        be within 15% of the optimum (a loose but meaningful sanity band)."""
        gaps = []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            inst = FlowShopInstance(rng.integers(1, 60, size=(6, 4)))
            _, optimum = brute_force_optimum(inst)
            gaps.append(neh_heuristic(inst).makespan / optimum)
        assert max(gaps) <= 1.15

    def test_single_job(self):
        inst = FlowShopInstance([[5, 6, 7]])
        assert neh_order(inst) == [0]
        assert neh_heuristic(inst).makespan == 18

    def test_identical_jobs_any_order_is_fine(self):
        inst = FlowShopInstance([[3, 3], [3, 3], [3, 3]])
        sched = neh_heuristic(inst)
        assert sched.makespan == makespan(inst, [0, 1, 2])

    @given(st.integers(0, 1000), st.integers(2, 7), st.integers(2, 4))
    @settings(max_examples=25, deadline=None)
    def test_neh_is_a_valid_upper_bound(self, seed, n, m):
        rng = np.random.default_rng(seed)
        inst = FlowShopInstance(rng.integers(1, 99, size=(n, m)))
        sched = neh_heuristic(inst)
        # upper bound property: some permutation achieves it, and it is at
        # least the trivial lower bound
        assert sched.makespan >= inst.trivial_lower_bound()
        assert sched.makespan <= inst.trivial_upper_bound()


class TestBestInsertion:
    def test_insertion_positions_explored(self):
        inst = FlowShopInstance([[2, 1], [1, 2], [3, 3]])
        pt = inst.processing_times
        order, value = best_insertion(pt, [0, 1], 2)
        assert len(order) == 3
        assert set(order) == {0, 1, 2}
        # the returned value matches the actual makespan of the returned order
        assert value == makespan(inst, order)

    def test_insertion_is_minimal(self):
        inst = FlowShopInstance([[2, 9], [9, 2], [5, 5]])
        pt = inst.processing_times
        order, value = best_insertion(pt, [0, 1], 2)
        candidates = [
            makespan(inst, [2, 0, 1]),
            makespan(inst, [0, 2, 1]),
            makespan(inst, [0, 1, 2]),
        ]
        assert value == min(candidates)
