"""Tests for the GPU-accelerated Branch-and-Bound engine."""

from __future__ import annotations

import pytest

from repro.bb import SequentialBranchAndBound, brute_force_optimum
from repro.core import GpuBBConfig, GpuBranchAndBound
from repro.flowshop import makespan, random_instance
from repro.gpu.placement import DataPlacement


class TestOptimality:
    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_matches_bruteforce(self, seed):
        inst = random_instance(7, 4, seed=seed)
        _, optimum = brute_force_optimum(inst)
        result = GpuBranchAndBound(inst, GpuBBConfig(pool_size=128)).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal
        assert makespan(inst, result.best_order) == optimum

    def test_matches_sequential(self, medium_instance):
        serial = SequentialBranchAndBound(medium_instance).solve()
        gpu = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=256)).solve()
        assert gpu.best_makespan == serial.best_makespan

    @pytest.mark.parametrize("pool_size", [1, 16, 4096])
    def test_pool_size_does_not_change_the_optimum(self, small_instance, pool_size):
        _, optimum = brute_force_optimum(small_instance)
        result = GpuBranchAndBound(small_instance, GpuBBConfig(pool_size=pool_size)).solve()
        assert result.best_makespan == optimum

    @pytest.mark.parametrize(
        "placement", [DataPlacement.all_global(), DataPlacement.shared_ptm_jm()]
    )
    def test_placement_does_not_change_the_optimum(self, small_instance, placement):
        _, optimum = brute_force_optimum(small_instance)
        result = GpuBranchAndBound(
            small_instance, GpuBBConfig(pool_size=64, placement=placement)
        ).solve()
        assert result.best_makespan == optimum

    def test_without_neh_seed(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        result = GpuBranchAndBound(
            small_instance, GpuBBConfig(pool_size=64, use_neh_upper_bound=False)
        ).solve()
        assert result.best_makespan == optimum

    def test_two_machine_instance(self):
        from repro.flowshop import johnson_makespan

        inst = random_instance(7, 2, seed=1)
        result = GpuBranchAndBound(inst, GpuBBConfig(pool_size=64)).solve()
        assert result.best_makespan == johnson_makespan(
            inst.processing_times[:, 0], inst.processing_times[:, 1]
        )


class TestAccounting:
    def test_iteration_records(self, medium_instance):
        result = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=64)).solve()
        assert result.iterations
        total_offloaded = sum(r.nodes_offloaded for r in result.iterations)
        # +1 for the root pool
        assert result.stats.nodes_bounded == total_offloaded + 1
        assert result.stats.pools_evaluated == len(result.iterations) + 1
        for record in result.iterations:
            assert record.nodes_kept + record.nodes_pruned <= record.nodes_offloaded
            assert record.launch.threads_per_block == 64 or record.launch.threads_per_block == 256

    def test_simulated_time_accumulates(self, medium_instance):
        result = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=64)).solve()
        assert result.simulated_device_time_s > 0
        assert result.simulated_device_time_s == pytest.approx(
            sum(r.simulated_device_s for r in result.iterations), rel=1e-6, abs=1e-9
        ) or result.simulated_device_time_s > sum(r.simulated_device_s for r in result.iterations)
        assert result.stats.simulated_device_time_s == result.simulated_device_time_s

    def test_simulated_speedup_helper(self, medium_instance):
        result = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=64)).solve()
        assert result.simulated_speedup(result.simulated_device_time_s * 10) == pytest.approx(10)

    def test_config_carries_resolved_placement(self, medium_instance):
        result = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=64)).solve()
        assert result.config is not None
        assert result.config.placement is not None

    def test_incumbent_never_increases(self, medium_instance):
        result = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=32)).solve()
        incumbents = [record.incumbent for record in result.iterations]
        assert incumbents == sorted(incumbents, reverse=True)


class TestBudgets:
    def test_max_iterations(self, medium_instance):
        result = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=16, max_iterations=2)
        ).solve()
        assert not result.proved_optimal
        assert len(result.iterations) <= 2

    def test_max_nodes(self, medium_instance):
        result = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=16, max_nodes=30)).solve()
        assert not result.proved_optimal
        # the incumbent is still a valid schedule no worse than NEH
        assert makespan(medium_instance, result.best_order) == result.best_makespan

    def test_budget_result_not_below_optimum(self, medium_instance):
        _, optimum = brute_force_optimum(medium_instance)
        result = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=16, max_iterations=1)
        ).solve()
        assert result.best_makespan >= optimum
