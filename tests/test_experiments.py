"""Tests for the table / figure reproduction harnesses.

These tests assert the *shape* requirements of the reproduction: who wins,
by roughly what factor, and where the crossovers fall — without requiring
exact numerical agreement with the paper's testbed.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    PAPER_BOUNDING_FRACTION,
    PAPER_INSTANCES,
    PAPER_POOL_SIZES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    figure4,
    figure5,
    measure_bounding_fraction,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.paper_values import PAPER_BEST_POOL_SIZE
from repro.experiments.table1 import format_table1
from repro.experiments.table4 import table4_gflops_header
from repro.flowshop import random_instance


@pytest.fixture(scope="module")
def t2():
    return table2()


@pytest.fixture(scope="module")
def t3():
    return table3()


@pytest.fixture(scope="module")
def t4():
    return table4()


class TestTable1:
    def test_matches_paper_formulas(self):
        rows = {r.structure: r for r in table1(200, 20)}
        assert rows["PTM"].size_elements == 4000
        assert rows["LM"].size_elements == 38000
        assert rows["JM"].accesses == 38000
        assert rows["RM"].size_elements == 20
        assert rows["MM"].accesses == 380
        # packed footprints quoted in Section IV-B
        assert rows["JM"].size_bytes_packed == 38000
        assert rows["PTM"].size_bytes_packed == 4000

    def test_formatting(self):
        text = format_table1(table1(200, 20))
        assert "PTM" in text and "JM" in text and "Table I" in text


class TestTable2:
    def test_speedups_in_paper_ballpark(self, t2):
        """Every cell within 35% of the published value; mean within 15%."""
        comparison = t2.compare(PAPER_TABLE2)
        assert comparison.max_absolute_relative_error < 0.35
        assert comparison.mean_absolute_relative_error < 0.15

    def test_speedup_grows_with_instance_size_at_large_pools(self, t2):
        column = [t2.get(klass, 262144) for klass in ((20, 20), (50, 20), (100, 20), (200, 20))]
        assert column == sorted(column)

    def test_small_pools_are_worse(self, t2):
        for klass in PAPER_INSTANCES:
            assert t2.get(klass, 4096) < t2.get(klass, PAPER_BEST_POOL_SIZE[klass])

    def test_average_row_present(self, t2):
        assert "average" in t2.rows
        assert len(t2.rows["average"]) == len(PAPER_POOL_SIZES)

    def test_small_instance_peaks_at_moderate_pool(self, t2):
        """The paper: 20x20 peaks at a moderate pool size, not at the largest."""
        best = t2.best_column((20, 20))
        assert best <= 32768

    def test_large_instance_prefers_large_pool(self, t2):
        best = t2.best_column((200, 20))
        assert best >= 65536


class TestTable3:
    def test_speedups_in_paper_ballpark(self, t3):
        comparison = t3.compare(PAPER_TABLE3)
        assert comparison.max_absolute_relative_error < 0.35
        assert comparison.mean_absolute_relative_error < 0.15

    def test_shared_memory_always_helps(self, t2, t3):
        """Table III dominates Table II cell by cell (the paper's 23% claim)."""
        for klass in PAPER_INSTANCES:
            for pool in PAPER_POOL_SIZES:
                assert t3.get(klass, pool) > t2.get(klass, pool)

    def test_peak_speedup_around_100x(self, t3):
        assert 85 <= t3.get((200, 20), 262144) <= 115

    def test_improvement_larger_for_large_instances(self, t2, t3):
        gain_small = t3.get((20, 20), 262144) / t2.get((20, 20), 262144)
        gain_large = t3.get((200, 20), 262144) / t2.get((200, 20), 262144)
        assert gain_large > gain_small


class TestTable4:
    def test_speedups_in_paper_ballpark(self, t4):
        comparison = t4.compare(PAPER_TABLE4)
        assert comparison.max_absolute_relative_error < 0.35
        assert comparison.mean_absolute_relative_error < 0.20

    def test_growth_with_threads_is_sublinear(self, t4):
        for klass in PAPER_INSTANCES:
            row = [t4.get(klass, t) for t in (3, 5, 7, 9, 11)]
            assert row == sorted(row)
            assert row[-1] < 14  # far from linear scaling at 11 threads

    def test_gflops_header(self):
        header = table4_gflops_header()
        assert header[7] == pytest.approx(537.6)
        assert header[3] == pytest.approx(230.4)


class TestFigures:
    def test_figure4_shared_dominates(self):
        series = figure4()
        for x, shared_value in series["shared_ptm_jm"].points.items():
            assert shared_value > series["all_global"].points[x]

    def test_figure4_monotone_in_instance_size(self):
        series = figure4()
        assert series["shared_ptm_jm"].values() == sorted(series["shared_ptm_jm"].values())

    def test_figure5_gpu_wins_by_an_order_of_magnitude(self):
        """The crossover claim of Section V: at equal GFLOPS the GPU B&B is
        roughly 7-14x faster than the multi-threaded B&B on every class."""
        series = figure5()
        for x in series["gpu"].points:
            ratio = series["gpu"].points[x] / series["multithreaded"].points[x]
            assert 5.0 <= ratio <= 18.0

    def test_figure5_gap_grows_with_instance_size(self):
        series = figure5()
        xs = sorted(series["gpu"].points)
        ratios = [series["gpu"].points[x] / series["multithreaded"].points[x] for x in xs]
        assert ratios == sorted(ratios)


class TestBoundingFraction:
    def test_bounding_dominates(self):
        result = measure_bounding_fraction(instance=random_instance(12, 20, seed=0), max_nodes=120)
        assert result.fraction > 0.85
        assert result.nodes_bounded > 0
        assert result.paper_fraction == PAPER_BOUNDING_FRACTION
        summary = result.summary()
        assert summary["bounding_fraction"] == pytest.approx(result.fraction)
