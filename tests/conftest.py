"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowshop import FlowShopInstance, random_instance, taillard_instance
from repro.flowshop.bounds import LowerBoundData


@pytest.fixture(scope="session")
def tiny_instance() -> FlowShopInstance:
    """3 jobs x 2 machines — small enough to reason about by hand."""
    return FlowShopInstance([[4, 3], [2, 5], [6, 2]], name="tiny-3x2")


@pytest.fixture(scope="session")
def small_instance() -> FlowShopInstance:
    """6 jobs x 4 machines — brute-forceable ground truth."""
    return random_instance(6, 4, seed=3)


@pytest.fixture(scope="session")
def small_instance_data(small_instance: FlowShopInstance) -> LowerBoundData:
    return LowerBoundData(small_instance)


@pytest.fixture(scope="session")
def medium_instance() -> FlowShopInstance:
    """8 jobs x 5 machines — still brute-forceable, more interesting tree."""
    return random_instance(8, 5, seed=17)


@pytest.fixture(scope="session")
def paper_instance() -> FlowShopInstance:
    """A Taillard-style 20x20 instance (the smallest class of the paper)."""
    return taillard_instance(20, 20, index=1)


@pytest.fixture(scope="session")
def paper_instance_data(paper_instance: FlowShopInstance) -> LowerBoundData:
    return LowerBoundData(paper_instance)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
