"""The solve service: bit-exactness, coalescing, scheduling, wire round-trips.

The headline guarantee: a session solved THROUGH the service (its bounding
batches fused with other sessions' by the dispatcher) reports bit-identical
makespan, permutation, optimality flag and node counters to a stand-alone
:class:`~repro.bb.sequential.SequentialBranchAndBound` solve — across the
same configuration grid the driver goldens pin.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bb.sequential import SequentialBranchAndBound
from repro.flowshop import random_instance
from repro.service import (
    BatchDispatcher,
    FlushPolicy,
    InstanceSpec,
    ServiceClient,
    ServiceOverloaded,
    SolveParams,
    SolveServer,
    SolveService,
    SolveSession,
)
from repro.service.scheduler import FairShareScheduler, SchedulerFull
from repro.service.session import SessionConfig

COUNTERS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "pools_evaluated",
    "max_pool_size",
)

MEDIUM = random_instance(8, 5, seed=17)
SMALL = random_instance(6, 4, seed=3)

#: the golden fixture grid of tests/test_driver.py, as service parameters
CONFIGS = {
    "default": {},
    "noneh": {"initial_upper_bound": float("inf")},
    "budget40": {"max_nodes": 40},
    "depth-first": {"selection": "depth-first"},
    "fifo": {"selection": "fifo"},
}


def run_lone_session(instance, **config):
    """One session on its own dispatcher (the minimal service-side solve)."""
    from repro.flowshop.bounds import LowerBoundData

    with BatchDispatcher() as dispatcher:
        session = SolveSession(
            1, instance, LowerBoundData(instance), dispatcher, SessionConfig(**config)
        )
        return session.run()


def assert_matches_sequential(result, instance, **config):
    reference = SequentialBranchAndBound(instance, **config).solve()
    assert result.makespan == reference.best_makespan
    assert result.order == reference.best_order
    assert result.proved_optimal == reference.proved_optimal
    for counter in COUNTERS:
        assert getattr(result.stats, counter) == getattr(reference.stats, counter), counter


class TestSessionBitExactness:
    """Service sessions == sequential engine, over the golden config grid."""

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    @pytest.mark.parametrize("instance", [MEDIUM, SMALL], ids=["medium", "small"])
    def test_lone_session_matches_sequential(self, instance, name):
        config = CONFIGS[name]
        result = run_lone_session(instance, **config)
        assert_matches_sequential(result, instance, **config)

    def test_medium_default_matches_golden(self):
        """Pin the absolute values (the driver goldens' sequential_block)."""
        result = run_lone_session(MEDIUM)
        assert result.makespan == 539
        assert result.order == (6, 5, 0, 2, 1, 7, 4, 3)
        assert result.proved_optimal

    def test_rejects_scalar_kernel(self):
        with pytest.raises(ValueError, match="batched kernel"):
            SessionConfig(kernel="scalar")


class TestConcurrentService:
    def test_concurrent_sessions_bit_identical_and_coalesced(self):
        """8 concurrent sessions: same answers, >=2x fewer launches."""
        instances = [MEDIUM, SMALL] * 4

        async def run(max_active):
            async with SolveService(
                max_active_sessions=max_active,
                flush_policy=FlushPolicy(max_wait_s=0.05),
            ) as service:
                for i, instance in enumerate(instances):
                    await service.submit(f"r{i}", instance)
                results = [await service.result(f"r{i}") for i in range(len(instances))]
                return results, service.dispatch_stats.as_dict()

        serial_results, serial_stats = asyncio.run(run(1))
        results, stats = asyncio.run(run(8))
        for instance, result, serial in zip(instances, results, serial_results):
            assert (result.makespan, result.order) == (serial.makespan, serial.order)
            assert_matches_sequential(result, instance)
        # serial degraded service: one launch per request (nothing to fuse)
        assert serial_stats["n_launches"] == serial_stats["n_requests"]
        assert stats["n_requests"] == serial_stats["n_requests"]
        assert serial_stats["n_launches"] >= 2 * stats["n_launches"]

    def test_duplicate_request_id_rejected(self):
        async def run():
            async with SolveService(max_active_sessions=1) as service:
                await service.submit("r1", SMALL)
                with pytest.raises(KeyError, match="duplicate"):
                    await service.submit("r1", SMALL)
                await service.result("r1")

        asyncio.run(run())

    def test_unknown_request_id(self):
        async def run():
            async with SolveService(max_active_sessions=1) as service:
                with pytest.raises(KeyError):
                    await service.result("ghost")
                with pytest.raises(KeyError):
                    await service.cancel("ghost")

        asyncio.run(run())

    def test_backpressure_overloaded(self):
        async def run():
            async with SolveService(max_active_sessions=1, max_queued=1) as service:
                await service.submit("r0", SMALL)  # takes the active slot
                await service.submit("r1", SMALL)  # fills the queue
                with pytest.raises(ServiceOverloaded) as excinfo:
                    await service.submit("r2", SMALL)
                assert (excinfo.value.queued, excinfo.value.limit) == (1, 1)
                await service.result("r0")
                await service.result("r1")

        asyncio.run(run())

    def test_cancel_queued_session(self):
        """A cancelled queued session still resolves, flagged cancelled."""

        async def run():
            async with SolveService(max_active_sessions=1) as service:
                await service.submit("running", MEDIUM)
                await service.submit("waiting", MEDIUM)
                was_running = await service.cancel("waiting")
                assert was_running is False
                result = await service.result("waiting")
                assert result.cancelled
                assert not result.proved_optimal
                assert result.makespan >= 539  # the NEH incumbent it died with
                running = await service.result("running")
                assert not running.cancelled and running.makespan == 539

        asyncio.run(run())

    def test_status_snapshot(self):
        async def run():
            async with SolveService(max_active_sessions=2) as service:
                await service.submit("r0", SMALL)
                await service.result("r0")
                snapshot = service.stats()
                assert snapshot["completed_sessions"] == 1
                assert snapshot["active_sessions"] == 0
                assert snapshot["dispatcher"]["n_launches"] >= 1

        asyncio.run(run())


class TestPerRequestCheckpoint:
    def test_params_checkpoint_writes_snapshot(self, tmp_path):
        """The wire-level params carry the per-request checkpoint knobs."""
        from repro.bb.snapshot import SNAPSHOT_FORMAT_VERSION, load_header

        path = tmp_path / "r1.rpbb"

        async def run():
            async with SolveService() as service:
                params = SolveParams(checkpoint_path=str(path), checkpoint_every=2)
                return await service.solve("r1", MEDIUM, params=params)

        result = asyncio.run(run())
        assert_matches_sequential(result, MEDIUM)
        header = load_header(path)
        assert header["format_version"] == SNAPSHOT_FORMAT_VERSION


class TestSessionCancellation:
    def test_cancel_before_first_selection(self):
        """A pre-cancelled session dies at its first pop, NEH incumbent intact."""
        from repro.flowshop.bounds import LowerBoundData

        with BatchDispatcher() as dispatcher:
            session = SolveSession(1, MEDIUM, LowerBoundData(MEDIUM), dispatcher)
            session.cancel()
            result = session.run()
        assert result.cancelled
        assert not result.proved_optimal
        neh_reference = SequentialBranchAndBound(MEDIUM, max_nodes=1).solve()
        assert result.makespan == neh_reference.best_makespan

    def test_cancel_without_incumbent_raises(self):
        from repro.flowshop.bounds import LowerBoundData

        with BatchDispatcher() as dispatcher:
            session = SolveSession(
                1,
                MEDIUM,
                LowerBoundData(MEDIUM),
                dispatcher,
                SessionConfig(initial_upper_bound=float("inf")),
            )
            session.cancel()
            with pytest.raises(RuntimeError, match="without|before"):
                session.run()


class TestFairShareScheduler:
    def test_round_robin_across_clients_fifo_within(self):
        scheduler = FairShareScheduler(max_queued=16)
        for item in ("a1", "a2", "a3"):
            scheduler.push("alice", item)
        scheduler.push("bob", "b1")
        scheduler.push("carol", "c1")
        drained = [scheduler.pop() for _ in range(len(scheduler))]
        assert drained == ["a1", "b1", "c1", "a2", "a3"]
        assert scheduler.pop() is None

    def test_flooding_client_cannot_starve_late_arrival(self):
        scheduler = FairShareScheduler(max_queued=16)
        for i in range(5):
            scheduler.push("flood", f"f{i}")
        assert scheduler.pop() == "f0"
        scheduler.push("late", "l0")  # arrives mid-drain
        assert scheduler.pop() == "f1"
        assert scheduler.pop() == "l0"  # served after ONE flood item, not five

    def test_bounded(self):
        scheduler = FairShareScheduler(max_queued=2)
        scheduler.push("a", 1)
        scheduler.push("a", 2)
        with pytest.raises(SchedulerFull) as excinfo:
            scheduler.push("b", 3)
        assert (excinfo.value.queued, excinfo.value.limit) == (2, 2)

    def test_iter_is_non_destructive(self):
        scheduler = FairShareScheduler()
        scheduler.push("a", 1)
        scheduler.push("b", 2)
        assert sorted(scheduler) == [1, 2]
        assert len(scheduler) == 2


class TestWireService:
    """End-to-end over a real TCP socket."""

    def test_solve_round_trip(self):
        async def run():
            async with SolveService(max_active_sessions=2) as service:
                async with SolveServer(service) as server:
                    client = await ServiceClient.connect("127.0.0.1", server.port)
                    async with client:
                        reply = await client.solve(
                            InstanceSpec.explicit(SMALL.processing_times.tolist())
                        )
                        assert reply.type == "result"
                        assert reply.makespan == 373
                        assert reply.proved_optimal and not reply.cancelled
                        assert reply.stats["nodes_bounded"] >= 1
                        status = await client.status()
                        assert status.completed_sessions == 1

        asyncio.run(run())

    def test_concurrent_clients_multiplex(self):
        async def run():
            async with SolveService(max_active_sessions=4) as service:
                async with SolveServer(service) as server:
                    client = await ServiceClient.connect("127.0.0.1", server.port)
                    async with client:
                        spec_m = InstanceSpec.explicit(MEDIUM.processing_times.tolist())
                        spec_s = InstanceSpec.explicit(SMALL.processing_times.tolist())
                        replies = await asyncio.gather(
                            client.solve(spec_m),
                            client.solve(spec_s),
                            client.solve(spec_m),
                        )
                        assert [r.makespan for r in replies] == [539, 373, 539]

        asyncio.run(run())

    def test_malformed_line_answers_error_and_survives(self):
        async def run():
            async with SolveService(max_active_sessions=1) as service:
                async with SolveServer(service) as server:
                    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                    writer.write(b"this is not json\n")
                    await writer.drain()
                    from repro.service import protocol

                    reply = protocol.decode((await reader.readline()).decode())
                    assert reply.type == "error"
                    # the connection is still usable afterwards
                    writer.write(protocol.encode(protocol.StatusRequest()).encode() + b"\n")
                    await writer.drain()
                    status = protocol.decode((await reader.readline()).decode())
                    assert status.type == "status_reply"
                    writer.close()
                    await writer.wait_closed()

        asyncio.run(run())

    def test_bad_instance_answers_error(self):
        async def run():
            async with SolveService(max_active_sessions=1) as service:
                async with SolveServer(service) as server:
                    client = await ServiceClient.connect("127.0.0.1", server.port)
                    async with client:
                        reply = await client.solve(InstanceSpec(kind="taillard"))
                        assert reply.type == "error"
                        assert "jobs" in reply.message

        asyncio.run(run())

    def test_cancel_unknown_id_answers_error(self):
        async def run():
            async with SolveService(max_active_sessions=1) as service:
                async with SolveServer(service) as server:
                    client = await ServiceClient.connect("127.0.0.1", server.port)
                    async with client:
                        client._inbox("ghost")
                        reply = await client.cancel("ghost")
                        assert reply.type == "error"

        asyncio.run(run())

    def test_next_reply_timeout_discards_the_inbox(self):
        """An abandoned request must not keep queueing late replies."""

        async def run():
            async with SolveService(max_active_sessions=1) as service:
                async with SolveServer(service) as server:
                    client = await ServiceClient.connect("127.0.0.1", server.port)
                    async with client:
                        client._inbox("nobody-answers")
                        with pytest.raises(asyncio.TimeoutError):
                            await client.next_reply("nobody-answers", timeout=0.05)
                        assert "nobody-answers" not in client._inboxes
                        # a live request is unaffected by the cleanup
                        reply = await client.solve(
                            InstanceSpec.explicit(SMALL.processing_times.tolist())
                        )
                        assert reply.type == "result"

        asyncio.run(run())
