"""Kill-and-resume bit-identity: interrupted solves match the golden run.

The acceptance bar of the fault-tolerance work: a solve interrupted and
resumed at arbitrary points — k times — must produce bit-identical
makespan, permutation, every ``SearchStats`` counter and the concatenated
selection trace, across both node layouts and all selection strategies.
"""

import pytest

from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.snapshot import SnapshotCorrupt

_COUNTERS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "pools_evaluated",
    "max_pool_size",
)


def _golden(instance, layout, selection):
    return SequentialBranchAndBound(
        instance, selection=selection, layout=layout, trace=True
    ).solve()


def _run_interrupted(instance, layout, selection, path, budgets):
    """Solve under a ladder of cumulative node budgets, resuming after each cut."""
    engine = SequentialBranchAndBound(
        instance,
        selection=selection,
        layout=layout,
        trace=True,
        max_nodes=budgets[0],
        checkpoint_path=path,
    )
    result = engine.solve()
    trace = list(result.trace)
    segments = 1
    while not result.proved_optimal:
        budget = budgets[segments] if segments < len(budgets) else None
        result = SequentialBranchAndBound.resume(path, max_nodes=budget)
        trace.extend(result.trace)
        segments += 1
        assert segments < 100, "resume ladder failed to make progress"
    return result, trace, segments


def _assert_bit_identical(golden, result, trace):
    assert result.best_makespan == golden.best_makespan
    assert result.best_order == golden.best_order
    assert result.proved_optimal
    for name in _COUNTERS:
        assert getattr(result.stats, name) == getattr(golden.stats, name), name
    assert trace == golden.trace


@pytest.mark.parametrize("layout", ["block", "object"])
@pytest.mark.parametrize("selection", ["best-first", "depth-first", "fifo"])
def test_killed_and_resumed_k_times_is_bit_identical(
    layout, selection, small_instance, tmp_path
):
    golden = _golden(small_instance, layout, selection)
    budgets = [7, 19, 40, 75, 130, 220]  # several kills at awkward points
    result, trace, segments = _run_interrupted(
        small_instance, layout, selection, tmp_path / "snap.rpbb", budgets
    )
    assert segments >= 3, "fixture too small to actually interrupt the solve"
    _assert_bit_identical(golden, result, trace)


@pytest.mark.parametrize("layout", ["block", "object"])
def test_single_interruption_medium_instance(layout, medium_instance, tmp_path):
    golden = _golden(medium_instance, layout, "best-first")
    cut = max(2, golden.stats.nodes_explored // 2)
    result, trace, segments = _run_interrupted(
        medium_instance, layout, "best-first", tmp_path / "snap.rpbb", [cut]
    )
    assert segments == 2
    _assert_bit_identical(golden, result, trace)


def test_resume_under_frontier_cap(small_instance, tmp_path):
    golden = SequentialBranchAndBound(
        small_instance, layout="block", max_frontier_nodes=6, trace=True
    ).solve()
    path = tmp_path / "snap.rpbb"
    engine = SequentialBranchAndBound(
        small_instance,
        layout="block",
        max_frontier_nodes=6,
        max_nodes=max(2, golden.stats.nodes_explored // 2),
        trace=True,
        checkpoint_path=path,
    )
    first = engine.solve()
    assert not first.proved_optimal
    result = SequentialBranchAndBound.resume(path)
    _assert_bit_identical(golden, result, list(first.trace) + list(result.trace))


@pytest.mark.parametrize("layout", ["block", "object"])
def test_resume_from_periodic_checkpoint_is_bit_identical(
    layout, small_instance, tmp_path
):
    """Resuming a *mid-run* periodic snapshot replays the tail exactly."""
    golden = _golden(small_instance, layout, "best-first")
    path = tmp_path / "periodic.rpbb"
    engine = SequentialBranchAndBound(
        small_instance,
        layout=layout,
        trace=True,
        checkpoint_path=path,
        checkpoint_every=3,
    )
    full = engine.solve()
    assert full.proved_optimal
    assert engine.checkpoints_written >= 1
    resumed = SequentialBranchAndBound.resume(path)
    assert resumed.best_makespan == golden.best_makespan
    assert resumed.best_order == golden.best_order
    for name in _COUNTERS:
        assert getattr(resumed.stats, name) == getattr(golden.stats, name), name


def test_periodic_and_budget_checkpoints_compose(small_instance, tmp_path):
    """Periodic snapshots during each segment don't disturb the final state."""
    golden = _golden(small_instance, "block", "best-first")
    path = tmp_path / "snap.rpbb"
    engine = SequentialBranchAndBound(
        small_instance,
        layout="block",
        trace=True,
        max_nodes=12,
        checkpoint_path=path,
        checkpoint_every=2,
    )
    result = engine.solve()
    trace = list(result.trace)
    assert engine.checkpoints_written > 1  # periodic + final
    while not result.proved_optimal:
        result = SequentialBranchAndBound.resume(path, checkpoint_every=2)
        trace.extend(result.trace)
    _assert_bit_identical(golden, result, trace)


def test_time_policy_fires_on_slow_runs(tmp_path):
    from repro.flowshop.generators import random_instance

    # fifo on a 9x5 instance runs thousands of steps, so the coarse-cadence
    # (every 64 steps) wall-clock check actually triggers
    path = tmp_path / "timed.rpbb"
    engine = SequentialBranchAndBound(
        random_instance(9, 5, seed=1),
        layout="block",
        selection="fifo",
        checkpoint_path=path,
        checkpoint_seconds=0.01,
    )
    result = engine.solve()
    assert result.proved_optimal
    assert engine.checkpoints_written >= 1
    assert path.exists()


def test_resume_rejects_truncated_snapshot(small_instance, tmp_path):
    path = tmp_path / "snap.rpbb"
    engine = SequentialBranchAndBound(
        small_instance, max_nodes=10, checkpoint_path=path
    )
    engine.solve()
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(SnapshotCorrupt):
        SequentialBranchAndBound.resume(path)


def test_completed_solve_writes_no_final_snapshot(small_instance, tmp_path):
    path = tmp_path / "snap.rpbb"
    engine = SequentialBranchAndBound(small_instance, checkpoint_path=path)
    result = engine.solve()
    assert result.proved_optimal
    assert engine.checkpoints_written == 0
    assert not path.exists()
