"""Chaos suite: deterministic fault injection against the fault-tolerant stack.

Every test drives real faults through the seams exposed for the purpose
(:mod:`repro.testing.faults`) and asserts the headline guarantee of the
robustness work: **an injected crash, timeout, or lost launch never
changes the answer** — the service still returns the exact optimum, and
the retry/degrade/restart accounting records what it survived.

The injector is seeded; a failure here reproduces with the same seed
(`CHAOS_SEED`, also pinned by the CI chaos step).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.snapshot import SnapshotCorrupt, SnapshotError, load_snapshot
from repro.flowshop import random_instance
from repro.service import SolveParams, SolveService
from repro.service.client import ServiceClient
from repro.service.server import SolveServer
from repro.testing import FaultInjector, SimulatedFault

CHAOS_SEED = 1307

MEDIUM = random_instance(8, 5, seed=17)

COUNTERS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "pools_evaluated",
    "max_pool_size",
)


@pytest.fixture(scope="module")
def golden():
    """The uninterrupted reference solve every chaos run must match."""
    return SequentialBranchAndBound(MEDIUM).solve()


def assert_exact(result, golden):
    assert result.makespan == golden.best_makespan
    assert result.order == golden.best_order
    assert result.proved_optimal
    for counter in COUNTERS:
        assert getattr(result.stats, counter) == getattr(golden.stats, counter), counter


def run_service(coro):
    return asyncio.run(coro)


class TestOffloadFaults:
    def test_failed_launches_are_retried_to_the_exact_optimum(self, golden):
        """Every 2nd bounding launch raises; the retry budget absorbs all."""
        injector = FaultInjector(seed=CHAOS_SEED)

        async def run():
            async with SolveService(
                launch_hook=injector.launch_failure(every_n=2),
                max_launch_retries=1,
            ) as service:
                await service.submit("r1", MEDIUM)
                return await service.result("r1"), service.dispatch_stats

        result, stats = run_service(run())
        assert_exact(result, golden)
        assert injector.count("launch-failure") >= 1
        assert stats.n_retries == injector.count("launch-failure")
        assert stats.n_degraded == 0

    def test_exhausted_retries_degrade_to_local_bounding(self, golden):
        """No retry budget: the session falls back to session-local bounds."""
        injector = FaultInjector(seed=CHAOS_SEED)
        events = []

        async def run():
            async with SolveService(
                launch_hook=injector.launch_failure(every_n=1),
                max_launch_retries=0,
                on_event=lambda rid, kind, payload: events.append((rid, kind, payload)),
            ) as service:
                await service.submit("r1", MEDIUM)
                return await service.result("r1"), service.dispatch_stats

        result, stats = run_service(run())
        assert_exact(result, golden)
        assert stats.n_degraded == 1
        assert stats.n_retries == 0
        degraded = [e for e in events if e[1] == "degraded"]
        assert degraded and degraded[0][0] == "r1"
        assert "injected" in degraded[0][2]["reason"]

    def test_launch_timeout_degrades_and_still_solves(self, golden):
        """A wedged launch trips the watchdog; the session degrades and wins."""
        injector = FaultInjector(seed=CHAOS_SEED)

        async def run():
            async with SolveService(
                launch_hook=injector.slow_launch(sleep_s=0.5, times=1),
                launch_timeout_s=0.05,
                max_launch_retries=0,
            ) as service:
                await service.submit("r1", MEDIUM)
                return await service.result("r1"), service.dispatch_stats

        result, stats = run_service(run())
        assert_exact(result, golden)
        assert stats.n_degraded == 1
        assert injector.count("slow-launch") == 1

    def test_random_fault_schedule_is_reproducible(self):
        hooks = [FaultInjector(seed=7).random_launch_failure(0.5) for _ in range(2)]
        schedules = []
        for hook in hooks:
            fired = []
            for launch in range(1, 21):
                try:
                    hook(launch)
                except SimulatedFault:
                    fired.append(launch)
            schedules.append(fired)
        assert schedules[0] == schedules[1]
        assert schedules[0]  # p=0.5 over 20 launches: the seed does fire


class TestSessionCrashes:
    def test_killed_session_restarts_from_checkpoint(self, golden, tmp_path):
        """Crash mid-search with checkpoints on disk: resume, finish, exact."""
        injector = FaultInjector(seed=CHAOS_SEED)
        events = []
        # one hook for all incarnations: its fire-once budget must survive
        # the restart (the factory is re-invoked per incarnation)
        kill = injector.session_kill(at_step=5)

        async def run():
            async with SolveService(
                checkpoint_dir=tmp_path,
                checkpoint_every=2,
                session_fault_hook=lambda sid: kill,
                restart_backoff_s=0.01,
                on_event=lambda rid, kind, payload: events.append((rid, kind, payload)),
            ) as service:
                await service.submit("r1", MEDIUM)
                result = await service.result("r1")
                return result, service.stats()

        result, stats = run_service(run())
        assert_exact(result, golden)
        assert injector.count("session-kill") == 1
        assert stats["session_restarts"] == 1
        restarts = [e for e in events if e[1] == "restart"]
        assert len(restarts) == 1
        # the restart resumed from a real snapshot, not from scratch
        assert restarts[0][2]["resume_from"] is not None
        checkpoints = [e for e in events if e[1] == "checkpoint"]
        assert checkpoints, "periodic checkpoints should have fired before the kill"

    def test_killed_session_without_checkpoints_restarts_from_scratch(self, golden):
        injector = FaultInjector(seed=CHAOS_SEED)
        events = []
        kill = injector.session_kill(at_step=3)

        async def run():
            async with SolveService(
                session_fault_hook=lambda sid: kill,
                restart_backoff_s=0.01,
                on_event=lambda rid, kind, payload: events.append((rid, kind, payload)),
            ) as service:
                await service.submit("r1", MEDIUM)
                result = await service.result("r1")
                return result, service.stats()

        result, stats = run_service(run())
        assert_exact(result, golden)
        assert stats["session_restarts"] == 1
        restarts = [e for e in events if e[1] == "restart"]
        assert restarts and restarts[0][2]["resume_from"] is None

    def test_restart_budget_exhaustion_surfaces_the_fault(self):
        """A session that dies on every incarnation fails the request."""
        injector = FaultInjector(seed=CHAOS_SEED)
        kill = injector.session_kill(at_step=0, times=100)

        async def run():
            async with SolveService(
                session_fault_hook=lambda sid: kill,
                max_session_restarts=1,
                restart_backoff_s=0.01,
            ) as service:
                await service.submit("r1", MEDIUM)
                with pytest.raises(SimulatedFault):
                    await service.result("r1")
                return service.stats()

        stats = run_service(run())
        assert stats["session_restarts"] == 1
        assert injector.count("session-kill") == 2  # initial run + one restart


class TestResumeThroughService:
    def test_submit_resume_finishes_an_interrupted_request(self, golden, tmp_path):
        """Checkpoint under budget, then resume the snapshot to optimality."""
        events = []

        async def run():
            async with SolveService(
                checkpoint_dir=tmp_path,
                checkpoint_every=2,
                on_event=lambda rid, kind, payload: events.append((rid, kind, payload)),
            ) as service:
                await service.submit("r1", MEDIUM, SolveParams(max_nodes=40))
                first = await service.result("r1")
                assert not first.proved_optimal  # the budget really cut it short
                checkpoints = [e for e in events if e[1] == "checkpoint"]
                assert checkpoints
                path = checkpoints[-1][2]["path"]
                await service.submit_resume("r2", path)
                return await service.result("r2")

        result = run_service(run())
        assert_exact(result, golden)

    def test_submit_resume_rejects_truncated_snapshot(self, tmp_path):
        events = []

        async def run_and_checkpoint():
            async with SolveService(
                checkpoint_dir=tmp_path,
                checkpoint_every=2,
                on_event=lambda rid, kind, payload: events.append((rid, kind, payload)),
            ) as service:
                await service.submit("r1", MEDIUM, SolveParams(max_nodes=40))
                await service.result("r1")
                return [e[2]["path"] for e in events if e[1] == "checkpoint"][-1]

        path = run_service(run_and_checkpoint())
        FaultInjector.truncate_file(path, at_byte=100)

        async def resume():
            async with SolveService() as service:
                with pytest.raises(SnapshotError):
                    await service.submit_resume("r2", path)

        run_service(resume())

    def test_submit_resume_rejects_corrupted_snapshot(self, tmp_path):
        events = []

        async def run_and_checkpoint():
            async with SolveService(
                checkpoint_dir=tmp_path,
                checkpoint_every=2,
                on_event=lambda rid, kind, payload: events.append((rid, kind, payload)),
            ) as service:
                await service.submit("r1", MEDIUM, SolveParams(max_nodes=40))
                await service.result("r1")
                return [e[2]["path"] for e in events if e[1] == "checkpoint"][-1]

        path = run_service(run_and_checkpoint())
        injector = FaultInjector(seed=CHAOS_SEED)
        injector.corrupt_file(path)

        async def resume():
            async with SolveService() as service:
                with pytest.raises((SnapshotError, SnapshotCorrupt)):
                    await service.submit_resume("r2", path)
                    # a corrupt payload may only surface at session start
                    await service.result("r2")

        run_service(resume())


class TestWireLevelFaultTolerance:
    def test_checkpoint_frames_and_resume_over_tcp(self, golden, tmp_path):
        """End to end: checkpoint replies stream to the client; a resume
        request continues the snapshot to the exact optimum."""

        async def run():
            async with SolveService(
                checkpoint_dir=tmp_path, checkpoint_every=2
            ) as service:
                async with SolveServer(service) as server:
                    client = await ServiceClient.connect("127.0.0.1", server.port)
                    try:
                        request_id = await client.submit(
                            _spec_for(MEDIUM), SolveParams(max_nodes=40)
                        )
                        checkpoint_frames = []
                        while True:
                            reply = await client.next_reply(request_id, timeout=30.0)
                            if reply.type == "checkpoint":
                                checkpoint_frames.append(reply)
                            elif reply.type == "result":
                                break
                            else:
                                assert reply.type == "accepted"
                        assert checkpoint_frames, "no checkpoint frames reached the client"
                        assert checkpoint_frames[-1].sequence >= 1
                        resumed = await client.resume(checkpoint_frames[-1].path)
                        return resumed
                    finally:
                        await client.close()

        resumed = run_service(run())
        assert resumed.type == "result"
        assert resumed.makespan == golden.best_makespan
        assert list(resumed.order) == list(golden.best_order)
        assert resumed.proved_optimal

    def test_resume_of_missing_snapshot_is_an_error_reply(self, tmp_path):
        async def run():
            async with SolveService() as service:
                async with SolveServer(service) as server:
                    async with await ServiceClient.connect(
                        "127.0.0.1", server.port
                    ) as client:
                        return await client.resume(str(tmp_path / "missing.rpbb"))

        reply = run_service(run())
        assert reply.type == "error"

    def test_snapshot_survives_resume_roundtrip_header(self, golden, tmp_path):
        """The snapshot a chaos run leaves behind is loadable and honest."""
        path = tmp_path / "ck.rpbb"
        engine = SequentialBranchAndBound(
            MEDIUM, max_nodes=40, checkpoint_path=path, checkpoint_every=2
        )
        outcome = engine.solve()
        assert not outcome.proved_optimal
        snapshot = load_snapshot(path)
        assert snapshot.header["format_version"] == 1
        resumed = SequentialBranchAndBound.resume(path)
        assert resumed.best_makespan == golden.best_makespan
        assert resumed.proved_optimal


def _spec_for(instance):
    from repro.service.protocol import InstanceSpec

    return InstanceSpec.explicit(
        instance.processing_times.tolist(), name=instance.name
    )
