"""Tests for :mod:`repro.core.kernels`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bb.node import root_node
from repro.bb.operators import branch
from repro.core.kernels import (
    KernelLaunch,
    bounding_kernel,
    bounding_kernel_batch,
    encode_nodes,
)
from repro.flowshop.bounds import lower_bound, lower_bound_batch


class TestKernelWrappers:
    def test_scalar_kernel_matches_lower_bound(self, small_instance_data):
        assert bounding_kernel(small_instance_data, [0, 2]) == lower_bound(
            small_instance_data, [0, 2]
        )

    def test_batch_kernel_matches_lower_bound_batch(self, small_instance, small_instance_data):
        root = root_node(small_instance)
        children = branch(root, small_instance)
        mask, release = encode_nodes(children, small_instance_data)
        assert np.array_equal(
            bounding_kernel_batch(small_instance_data, mask, release),
            lower_bound_batch(small_instance_data, mask, release),
        )

    def test_encode_nodes_shapes(self, small_instance, small_instance_data):
        root = root_node(small_instance)
        children = branch(root, small_instance)
        mask, release = encode_nodes(children, small_instance_data)
        assert mask.shape == (len(children), small_instance.n_jobs)
        assert release.shape == (len(children), small_instance.n_machines)


class TestKernelLaunch:
    def test_paper_notation(self):
        launch = KernelLaunch(262144, 256)
        assert launch.n_blocks == 1024
        assert launch.label() == "1024x256"
        assert launch.idle_threads == 0

    def test_partial_last_block(self):
        launch = KernelLaunch(1000, 256)
        assert launch.n_blocks == 4
        assert launch.n_threads == 1024
        assert launch.idle_threads == 24

    def test_empty_pool(self):
        launch = KernelLaunch(0, 256)
        assert launch.n_blocks == 0
        assert launch.n_threads == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelLaunch(-1, 256)
        with pytest.raises(ValueError):
            KernelLaunch(10, 0)
