"""Tests for the auxiliary instance generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowshop import correlated_instance, random_instance, structured_instance


class TestRandomInstance:
    def test_shape_and_range(self):
        inst = random_instance(10, 5, seed=0, low=5, high=20)
        assert inst.shape == (10, 5)
        assert inst.processing_times.min() >= 5
        assert inst.processing_times.max() <= 20

    def test_reproducible(self):
        a = random_instance(8, 3, seed=7)
        b = random_instance(8, 3, seed=7)
        assert np.array_equal(a.processing_times, b.processing_times)

    def test_different_seeds_differ(self):
        a = random_instance(8, 3, seed=7)
        b = random_instance(8, 3, seed=8)
        assert not np.array_equal(a.processing_times, b.processing_times)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            random_instance(5, 5, low=10, high=5)

    def test_metadata(self):
        inst = random_instance(5, 5, seed=3)
        assert inst.metadata["generator"] == "uniform"
        assert inst.metadata["seed"] == 3


class TestCorrelatedInstance:
    def test_positive_times(self):
        inst = correlated_instance(20, 5, seed=1, spread=30)
        assert inst.processing_times.min() >= 1

    def test_jobs_are_correlated(self):
        """Per-job variance should be smaller than cross-job variance."""
        inst = correlated_instance(30, 10, seed=2, spread=5)
        pt = inst.processing_times.astype(float)
        within = pt.var(axis=1).mean()
        job_means = pt.mean(axis=1)
        across = job_means.var()
        assert across > within


class TestStructuredInstance:
    def test_bottleneck_machine_dominates(self):
        inst = structured_instance(20, 6, bottleneck=2, seed=0)
        loads = inst.processing_times.sum(axis=0)
        assert loads[2] == loads.max()
        assert inst.metadata["bottleneck"] == 2

    def test_default_bottleneck_is_middle(self):
        inst = structured_instance(10, 7, seed=0)
        assert inst.metadata["bottleneck"] == 3

    def test_rejects_bad_bottleneck(self):
        with pytest.raises(ValueError):
            structured_instance(10, 4, bottleneck=9)
