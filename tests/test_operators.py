"""Tests for the B&B operators (:mod:`repro.bb.operators`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bb.node import root_node
from repro.bb.operators import (
    bound_node,
    bound_nodes_batch,
    branch,
    eliminate,
    encode_pool,
    select_batch,
)
from repro.bb.pool import BestFirstPool
from repro.flowshop.bounds import lower_bound


class TestBranch:
    def test_branch_root(self, small_instance):
        children = branch(root_node(small_instance), small_instance)
        assert len(children) == small_instance.n_jobs

    def test_branch_leaf_returns_nothing(self, tiny_instance):
        node = root_node(tiny_instance)
        for job in (0, 1, 2):
            node = node.child(job, tiny_instance.processing_times)
        assert branch(node, tiny_instance) == []


class TestBoundNode:
    def test_bound_matches_lower_bound(self, small_instance, small_instance_data):
        node = root_node(small_instance).child(1, small_instance.processing_times)
        value = bound_node(node, small_instance_data)
        assert value == lower_bound(small_instance_data, [1])
        assert node.lower_bound == value

    def test_bound_is_cached(self, small_instance, small_instance_data):
        node = root_node(small_instance)
        node.lower_bound = 12345
        assert bound_node(node, small_instance_data) == 12345


class TestEncodePool:
    def test_encoding_shapes_and_content(self, small_instance, small_instance_data):
        root = root_node(small_instance)
        child = root.child(2, small_instance.processing_times)
        mask, release = encode_pool([root, child], small_instance.n_jobs, small_instance.n_machines)
        assert mask.shape == (2, small_instance.n_jobs)
        assert release.shape == (2, small_instance.n_machines)
        assert not mask[0].any()
        assert mask[1].sum() == 1 and mask[1][2]
        assert np.array_equal(release[1], child.release)

    def test_empty_pool(self, small_instance):
        mask, release = encode_pool([], small_instance.n_jobs, small_instance.n_machines)
        assert mask.shape == (0, small_instance.n_jobs)


class TestBatchBounding:
    def test_batch_writes_back_and_matches_scalar(self, small_instance, small_instance_data):
        root = root_node(small_instance)
        children = branch(root, small_instance)
        values = bound_nodes_batch(children, small_instance_data)
        for child, value in zip(children, values):
            assert child.lower_bound == value
            assert value == lower_bound(small_instance_data, child.prefix)

    def test_batch_empty(self, small_instance_data):
        assert bound_nodes_batch([], small_instance_data).shape == (0,)


class TestEliminate:
    def test_keeps_only_improving_nodes(self, small_instance, small_instance_data):
        root = root_node(small_instance)
        children = branch(root, small_instance)
        bound_nodes_batch(children, small_instance_data)
        bounds = sorted(c.lower_bound for c in children)
        cutoff = bounds[len(bounds) // 2]
        survivors, pruned = eliminate(children, cutoff)
        assert len(survivors) + pruned == len(children)
        assert all(c.lower_bound < cutoff for c in survivors)

    def test_requires_bounded_nodes(self, small_instance):
        root = root_node(small_instance)
        with pytest.raises(ValueError):
            eliminate([root], 100)

    def test_prunes_equal_bounds(self, small_instance, small_instance_data):
        root = root_node(small_instance)
        bound_node(root, small_instance_data)
        survivors, pruned = eliminate([root], root.lower_bound)
        assert survivors == [] and pruned == 1


class TestSelectBatch:
    def test_respects_limit(self, small_instance, small_instance_data):
        pool = BestFirstPool()
        children = branch(root_node(small_instance), small_instance)
        bound_nodes_batch(children, small_instance_data)
        pool.push_many(children)
        batch, n_pruned = select_batch(pool, 3)
        assert len(batch) == 3
        assert n_pruned == 0
        assert len(pool) == len(children) - 3

    def test_lazy_pruning_with_upper_bound(self, small_instance, small_instance_data):
        pool = BestFirstPool()
        children = branch(root_node(small_instance), small_instance)
        bound_nodes_batch(children, small_instance_data)
        pool.push_many(children)
        cutoff = min(c.lower_bound for c in children)  # prune everything
        batch, n_pruned = select_batch(pool, 100, upper_bound=cutoff)
        assert batch == []
        assert n_pruned == len(children)
        assert len(pool) == 0
