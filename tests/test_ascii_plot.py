"""Tests for the text rendering of figures."""

from __future__ import annotations

import pytest

from repro.experiments.ascii_plot import bar_chart, figure_to_text, sparkline
from repro.perf.speedup import SpeedupSeries


@pytest.fixture()
def series():
    return {
        "gpu": SpeedupSeries.from_mapping("gpu", {20: 60.0, 200: 105.0}),
        "cpu": SpeedupSeries.from_mapping("cpu", {20: 8.0, 200: 7.7}),
    }


class TestBarChart:
    def test_contains_all_labels_and_values(self, series):
        text = bar_chart(series)
        assert "gpu" in text and "cpu" in text
        assert "105.0" in text and "8.0" in text
        assert "jobs = 20" in text and "jobs = 200" in text

    def test_bars_scale_with_values(self, series):
        text = bar_chart(series, width=40)
        lines = [line for line in text.splitlines() if "|" in line]
        gpu_200 = next(l for l in lines if l.strip().startswith("gpu") and "105.0" in l)
        cpu_200 = next(l for l in lines if l.strip().startswith("cpu") and "7.7" in l)
        assert gpu_200.count("#") > cpu_200.count("#")

    def test_validation(self, series):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart(series, width=2)
        with pytest.raises(ValueError):
            bar_chart({"empty": SpeedupSeries("empty")})


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_uses_increasing_levels(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert line == "".join(sorted(line))

    def test_constant_series(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestFigureToText:
    def test_contains_title_and_trends(self, series):
        text = figure_to_text("Figure 5", series)
        assert text.startswith("Figure 5")
        assert "trend per series" in text
        assert "gpu:" in text

    def test_renders_real_figure5(self):
        from repro.experiments import figure5

        text = figure_to_text("Figure 5 - GPU vs multithreaded", figure5())
        assert "gpu" in text
        assert "multithreaded" in text
