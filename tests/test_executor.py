"""Tests for the functional GPU executor."""

from __future__ import annotations

import pytest

from repro.bb.node import root_node
from repro.bb.operators import branch, encode_pool
from repro.flowshop.bounds import LowerBoundData, lower_bound
from repro.gpu.executor import GpuExecutor
from repro.gpu.placement import DataPlacement
from repro.gpu.simulator import KernelCostModel


@pytest.fixture()
def executor(small_instance, small_instance_data) -> GpuExecutor:
    return GpuExecutor(small_instance_data)


class TestUpload:
    def test_upload_reports_footprints(self, executor, small_instance_data):
        arrays = executor.upload()
        complexity = small_instance_data.complexity
        expected = executor.placement.structure_bytes(complexity)
        assert arrays.bytes_by_structure == expected
        assert arrays.total_bytes == sum(expected.values())
        assert arrays.upload_time_s > 0

    def test_upload_is_idempotent(self, executor):
        assert executor.upload() is executor.upload()
        assert executor.device_arrays is executor.upload()

    def test_unfittable_placement_rejected(self, paper_instance_data):
        placement = DataPlacement.shared_structures(["PTM", "JM", "LM"])
        # 20x20 fits everything; build a 200x20 to exceed the shared capacity
        from repro.flowshop import taillard_instance

        data = LowerBoundData(taillard_instance(200, 20, index=1))
        executor = GpuExecutor(data, placement=placement)
        with pytest.raises(Exception):
            executor.upload()


class TestEvaluate:
    def test_bounds_match_scalar_kernel(self, executor, small_instance, small_instance_data):
        root = root_node(small_instance)
        children = branch(root, small_instance)
        mask, release = encode_pool(children, small_instance.n_jobs, small_instance.n_machines)
        result = executor.evaluate(mask, release)
        expected = [lower_bound(small_instance_data, c.prefix) for c in children]
        assert result.bounds.tolist() == expected
        assert result.pool_size == len(children)
        assert result.measured_wall_s >= 0
        assert result.simulated.total_s > 0

    def test_counters_accumulate(self, executor, small_instance):
        root = root_node(small_instance)
        children = branch(root, small_instance)
        mask, release = encode_pool(children, small_instance.n_jobs, small_instance.n_machines)
        executor.evaluate(mask, release)
        executor.evaluate(mask, release)
        stats = executor.stats()
        assert stats["pools_evaluated"] == 2
        assert stats["nodes_evaluated"] == 2 * len(children)
        assert stats["simulated_time_s"] > 0

    def test_default_placement_is_recommended(self, small_instance_data):
        executor = GpuExecutor(small_instance_data)
        assert executor.placement.name in ("shared-PTM-JM", "all-global", "shared-JM")

    def test_custom_cost_model_used(self, small_instance, small_instance_data):
        slow = GpuExecutor(
            small_instance_data,
            cost_model=KernelCostModel().with_overrides(cycles_per_iteration=100.0),
        )
        fast = GpuExecutor(small_instance_data)
        root = root_node(small_instance)
        children = branch(root, small_instance)
        mask, release = encode_pool(children, small_instance.n_jobs, small_instance.n_machines)
        slow_result = slow.evaluate(mask, release)
        fast_result = fast.evaluate(mask, release)
        assert slow_result.simulated.kernel_s > fast_result.simulated.kernel_s

    def test_occupancy_exposed(self, executor):
        occupancy = executor.occupancy()
        assert occupancy.active_warps_per_sm > 0

    def test_rejects_bad_block_size(self, small_instance_data):
        with pytest.raises(ValueError):
            GpuExecutor(small_instance_data, threads_per_block=0)
