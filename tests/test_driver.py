"""The :class:`~repro.bb.driver.SearchDriver` contract.

Three layers of guarantees:

1. **Golden equivalence** — every engine x layout combination routed
   through the driver reproduces, bit for bit, the results captured from
   the pre-driver per-engine loops (commit ``5c32ae4``, "main"):
   makespan, permutation, ``proved_optimal``, every node counter, the
   trace, and the simulated device time.  The goldens below are the
   verbatim output of those historical loops.
2. **Hypothesis equivalence** — on random instances, every engine x layout
   pair agrees with the object-layout serial reference.
3. **Unit behaviour** — hook call order, the stop/budget predicates, the
   int32 frontier narrowing, the ``max_frontier_nodes`` cap and the
   double-buffered off-load credit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.driver import (
    LocalBounding,
    SearchDriver,
    SearchHooks,
    SearchLimits,
)
from repro.bb.frontier import BlockFrontier, Trail, bound_block, root_block
from repro.bb.multicore import MulticoreBranchAndBound
from repro.bb.pool import make_pool
from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.stats import SearchStats
from repro.core.cluster import ClusterBranchAndBound, ClusterSpec
from repro.core.config import GpuBBConfig
from repro.core.gpu_bb import GpuBranchAndBound
from repro.core.pipeline import HybridBranchAndBound, HybridConfig
from repro.flowshop import FlowShopInstance, random_instance
from repro.flowshop.bounds import LowerBoundData

#: Results of the pre-driver per-engine solve loops, captured verbatim at
#: the commit that still carried them.  The driver must reproduce these
#: exactly — this is the "bit-identical to main" acceptance criterion.
GOLDENS = json.loads(
    r"""
{
 "cluster_block_pool16": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "n_iterations": 8,
  "proved_optimal": true,
  "simulated_device_time_s": 0.0023469747525560664,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 15,
   "max_pool_size": 15,
   "nodes_bounded": 163,
   "nodes_branched": 59,
   "nodes_pruned": 89,
   "pools_evaluated": 9
  }
 },
 "cluster_object_pool16": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "n_iterations": 8,
  "proved_optimal": true,
  "simulated_device_time_s": 0.0023469747525560664,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 15,
   "max_pool_size": 15,
   "nodes_bounded": 163,
   "nodes_branched": 59,
   "nodes_pruned": 89,
   "pools_evaluated": 9
  }
 },
 "gpu_block_pool16": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "n_iterations": 8,
  "proved_optimal": true,
  "simulated_device_time_s": 0.0004237540577743296,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 15,
   "max_pool_size": 15,
   "nodes_bounded": 163,
   "nodes_branched": 59,
   "nodes_pruned": 89,
   "pools_evaluated": 9
  }
 },
 "gpu_block_pool4_iter7": {
  "best_makespan": 542,
  "best_order": [
   6,
   5,
   0,
   7,
   2,
   4,
   1,
   3
  ],
  "n_iterations": 7,
  "proved_optimal": false,
  "simulated_device_time_s": 0.00037882489606784475,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 0,
   "max_pool_size": 13,
   "nodes_bounded": 88,
   "nodes_branched": 19,
   "nodes_pruned": 56,
   "pools_evaluated": 8
  }
 },
 "gpu_object_pool16": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "n_iterations": 8,
  "proved_optimal": true,
  "simulated_device_time_s": 0.0004237540577743296,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 15,
   "max_pool_size": 15,
   "nodes_bounded": 163,
   "nodes_branched": 59,
   "nodes_pruned": 89,
   "pools_evaluated": 9
  }
 },
 "gpu_object_pool4_iter7": {
  "best_makespan": 542,
  "best_order": [
   6,
   5,
   0,
   7,
   2,
   4,
   1,
   3
  ],
  "n_iterations": 7,
  "proved_optimal": false,
  "simulated_device_time_s": 0.00037882489606784475,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 0,
   "max_pool_size": 13,
   "nodes_bounded": 88,
   "nodes_branched": 19,
   "nodes_pruned": 56,
   "pools_evaluated": 8
  }
 },
 "hybrid_block": {
  "best_makespan": 373,
  "best_order": [
   2,
   5,
   1,
   0,
   3,
   4
  ],
  "n_iterations": 3,
  "proved_optimal": true,
  "simulated_device_time_s": 0.0003795230334144718,
  "stats": {
   "incumbent_updates": 0,
   "leaves_evaluated": 0,
   "max_pool_size": 2,
   "nodes_bounded": 22,
   "nodes_branched": 4,
   "nodes_pruned": 18,
   "pools_evaluated": 3
  }
 },
 "hybrid_object": {
  "best_makespan": 373,
  "best_order": [
   2,
   5,
   1,
   0,
   3,
   4
  ],
  "n_iterations": 3,
  "proved_optimal": true,
  "simulated_device_time_s": 0.0003795230334144718,
  "stats": {
   "incumbent_updates": 0,
   "leaves_evaluated": 0,
   "max_pool_size": 2,
   "nodes_bounded": 22,
   "nodes_branched": 4,
   "nodes_pruned": 18,
   "pools_evaluated": 3
  }
 },
 "multicore_static_block": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   2,
   7,
   1,
   0,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 1,
   "max_pool_size": 7,
   "nodes_bounded": 87,
   "nodes_branched": 8,
   "nodes_pruned": 78,
   "pools_evaluated": 0
  }
 },
 "multicore_static_object": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   2,
   7,
   1,
   0,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 1,
   "max_pool_size": 7,
   "nodes_bounded": 87,
   "nodes_branched": 8,
   "nodes_pruned": 78,
   "pools_evaluated": 0
  }
 },
 "multicore_worksteal_block": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   2,
   7,
   1,
   0,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 1,
   "max_pool_size": 7,
   "nodes_bounded": 87,
   "nodes_branched": 8,
   "nodes_pruned": 78,
   "pools_evaluated": 0
  }
 },
 "multicore_worksteal_object": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   2,
   7,
   1,
   0,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 1,
   "max_pool_size": 7,
   "nodes_bounded": 87,
   "nodes_branched": 8,
   "nodes_pruned": 78,
   "pools_evaluated": 0
  }
 },
 "sequential_block": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 1,
   "max_pool_size": 15,
   "nodes_bounded": 145,
   "nodes_branched": 43,
   "nodes_pruned": 101,
   "pools_evaluated": 0
  }
 },
 "sequential_block_budget40": {
  "best_makespan": 542,
  "best_order": [
   6,
   5,
   0,
   7,
   2,
   4,
   1,
   3
  ],
  "proved_optimal": false,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 0,
   "max_pool_size": 10,
   "nodes_bounded": 51,
   "nodes_branched": 9,
   "nodes_pruned": 32,
   "pools_evaluated": 0
  }
 },
 "sequential_block_depth-first": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   2,
   7,
   1,
   0,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 1,
   "max_pool_size": 7,
   "nodes_bounded": 47,
   "nodes_branched": 10,
   "nodes_pruned": 36,
   "pools_evaluated": 0
  }
 },
 "sequential_block_fifo": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 1,
   "max_pool_size": 15,
   "nodes_bounded": 149,
   "nodes_branched": 45,
   "nodes_pruned": 103,
   "pools_evaluated": 0
  }
 },
 "sequential_block_noneh": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 1,
   "max_pool_size": 102,
   "nodes_bounded": 145,
   "nodes_branched": 43,
   "nodes_pruned": 101,
   "pools_evaluated": 0
  }
 },
 "sequential_block_trace": {
  "best_makespan": 373,
  "best_order": [
   2,
   5,
   1,
   0,
   3,
   4
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 0,
   "max_pool_size": 2,
   "nodes_bounded": 23,
   "nodes_branched": 5,
   "nodes_pruned": 18,
   "pools_evaluated": 0
  },
  "trace": [
   [
    [],
    344,
    373.0,
    "branched"
   ],
   [
    [
     0
    ],
    401,
    373.0,
    "pruned"
   ],
   [
    [
     1
    ],
    396,
    373.0,
    "pruned"
   ],
   [
    [
     3
    ],
    419,
    373.0,
    "pruned"
   ],
   [
    [
     4
    ],
    441,
    373.0,
    "pruned"
   ],
   [
    [
     5
    ],
    388,
    373.0,
    "pruned"
   ],
   [
    [
     2
    ],
    344,
    373.0,
    "branched"
   ],
   [
    [
     2,
     0
    ],
    401,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     3
    ],
    399,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     4
    ],
    435,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5
    ],
    359,
    373.0,
    "branched"
   ],
   [
    [
     2,
     5,
     0
    ],
    401,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5,
     1
    ],
    373,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5,
     3
    ],
    405,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5,
     4
    ],
    441,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1
    ],
    367,
    373.0,
    "branched"
   ],
   [
    [
     2,
     1,
     3
    ],
    378,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     4
    ],
    379,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     5
    ],
    381,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     0
    ],
    368,
    373.0,
    "branched"
   ],
   [
    [
     2,
     1,
     0,
     3
    ],
    404,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     0,
     4
    ],
    440,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     0,
     5
    ],
    375,
    373.0,
    "pruned"
   ]
  ]
 },
 "sequential_object": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 1,
   "max_pool_size": 15,
   "nodes_bounded": 145,
   "nodes_branched": 43,
   "nodes_pruned": 101,
   "pools_evaluated": 0
  }
 },
 "sequential_object_budget40": {
  "best_makespan": 542,
  "best_order": [
   6,
   5,
   0,
   7,
   2,
   4,
   1,
   3
  ],
  "proved_optimal": false,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 0,
   "max_pool_size": 10,
   "nodes_bounded": 51,
   "nodes_branched": 9,
   "nodes_pruned": 32,
   "pools_evaluated": 0
  }
 },
 "sequential_object_depth-first": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   2,
   7,
   1,
   0,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 1,
   "max_pool_size": 7,
   "nodes_bounded": 47,
   "nodes_branched": 10,
   "nodes_pruned": 36,
   "pools_evaluated": 0
  }
 },
 "sequential_object_fifo": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 2,
   "leaves_evaluated": 1,
   "max_pool_size": 15,
   "nodes_bounded": 149,
   "nodes_branched": 45,
   "nodes_pruned": 103,
   "pools_evaluated": 0
  }
 },
 "sequential_object_noneh": {
  "best_makespan": 539,
  "best_order": [
   6,
   5,
   0,
   2,
   1,
   7,
   4,
   3
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 1,
   "max_pool_size": 102,
   "nodes_bounded": 145,
   "nodes_branched": 43,
   "nodes_pruned": 101,
   "pools_evaluated": 0
  }
 },
 "sequential_object_trace": {
  "best_makespan": 373,
  "best_order": [
   2,
   5,
   1,
   0,
   3,
   4
  ],
  "proved_optimal": true,
  "stats": {
   "incumbent_updates": 1,
   "leaves_evaluated": 0,
   "max_pool_size": 2,
   "nodes_bounded": 23,
   "nodes_branched": 5,
   "nodes_pruned": 18,
   "pools_evaluated": 0
  },
  "trace": [
   [
    [],
    344,
    373.0,
    "branched"
   ],
   [
    [
     0
    ],
    401,
    373.0,
    "pruned"
   ],
   [
    [
     1
    ],
    396,
    373.0,
    "pruned"
   ],
   [
    [
     3
    ],
    419,
    373.0,
    "pruned"
   ],
   [
    [
     4
    ],
    441,
    373.0,
    "pruned"
   ],
   [
    [
     5
    ],
    388,
    373.0,
    "pruned"
   ],
   [
    [
     2
    ],
    344,
    373.0,
    "branched"
   ],
   [
    [
     2,
     0
    ],
    401,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     3
    ],
    399,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     4
    ],
    435,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5
    ],
    359,
    373.0,
    "branched"
   ],
   [
    [
     2,
     5,
     0
    ],
    401,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5,
     1
    ],
    373,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5,
     3
    ],
    405,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     5,
     4
    ],
    441,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1
    ],
    367,
    373.0,
    "branched"
   ],
   [
    [
     2,
     1,
     3
    ],
    378,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     4
    ],
    379,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     5
    ],
    381,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     0
    ],
    368,
    373.0,
    "branched"
   ],
   [
    [
     2,
     1,
     0,
     3
    ],
    404,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     0,
     4
    ],
    440,
    373.0,
    "pruned"
   ],
   [
    [
     2,
     1,
     0,
     5
    ],
    375,
    373.0,
    "pruned"
   ]
  ]
 }
}
"""
)

COUNTERS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "pools_evaluated",
    "max_pool_size",
)

MEDIUM = random_instance(8, 5, seed=17)
SMALL = random_instance(6, 4, seed=3)


def _run(key: str):
    layout = "object" if "_object" in key else "block"
    if key.startswith("sequential"):
        kwargs: dict = {"layout": layout}
        if key.endswith("_noneh"):
            kwargs["initial_upper_bound"] = float("inf")
        if key.endswith("_budget40"):
            kwargs["max_nodes"] = 40
        if key.endswith("_trace"):
            kwargs["trace"] = True
            return SequentialBranchAndBound(SMALL, **kwargs).solve()
        if key.endswith("_depth-first"):
            kwargs["selection"] = "depth-first"
        if key.endswith("_fifo"):
            kwargs["selection"] = "fifo"
        return SequentialBranchAndBound(MEDIUM, **kwargs).solve()
    if key.startswith("gpu"):
        if key.endswith("_pool4_iter7"):
            config = GpuBBConfig(pool_size=4, max_iterations=7, layout=layout)
        else:
            config = GpuBBConfig(pool_size=16, layout=layout)
        return GpuBranchAndBound(MEDIUM, config).solve()
    if key.startswith("cluster"):
        return ClusterBranchAndBound(
            MEDIUM, ClusterSpec(n_nodes=3), GpuBBConfig(pool_size=16, layout=layout)
        ).solve()
    if key.startswith("hybrid"):
        return HybridBranchAndBound(
            SMALL, HybridConfig(n_explorers=2, gpu=GpuBBConfig(pool_size=16, layout=layout))
        ).solve()
    mode = "worksteal" if "_worksteal_" in key else "static"
    return MulticoreBranchAndBound(
        MEDIUM,
        n_workers=1,
        backend="serial",
        mode=mode,
        decomposition_depth=2,
        layout=layout,
    ).solve()


class TestGoldenEquivalence:
    """Driver-routed engines reproduce the historical loops bit for bit."""

    @pytest.mark.parametrize("key", sorted(GOLDENS))
    def test_matches_main(self, key):
        golden = GOLDENS[key]
        result = _run(key)
        assert result.best_makespan == golden["best_makespan"]
        assert list(result.best_order) == golden["best_order"]
        assert result.proved_optimal == golden["proved_optimal"]
        for counter in COUNTERS:
            assert getattr(result.stats, counter) == golden["stats"][counter], counter
        if "trace" in golden:
            got = [
                [list(e.prefix), int(e.lower_bound), float(e.upper_bound_at_visit), e.action]
                for e in result.trace
            ]
            assert got == golden["trace"]
        if "simulated_device_time_s" in golden:
            assert result.simulated_device_time_s == pytest.approx(
                golden["simulated_device_time_s"], abs=1e-12
            )
            assert len(result.iterations) == golden["n_iterations"]


class TestHypothesisEquivalence:
    """Every engine x layout pair explores the serial reference's tree."""

    @given(st.integers(0, 2000), st.integers(3, 7), st.integers(1, 4))
    @settings(max_examples=12, deadline=None)
    def test_all_engines_agree(self, seed, n, m):
        rng = np.random.default_rng(seed)
        instance = FlowShopInstance(rng.integers(1, 30, size=(n, m)))
        reference = SequentialBranchAndBound(instance, layout="object").solve()
        runs = {
            "sequential/block": SequentialBranchAndBound(instance, layout="block").solve(),
        }
        for layout in ("object", "block"):
            runs[f"gpu/{layout}"] = GpuBranchAndBound(
                instance, GpuBBConfig(pool_size=8, layout=layout)
            ).solve()
            runs[f"cluster/{layout}"] = ClusterBranchAndBound(
                instance, ClusterSpec(n_nodes=2), GpuBBConfig(pool_size=8, layout=layout)
            ).solve()
            runs[f"worksteal/{layout}"] = MulticoreBranchAndBound(
                instance, n_workers=1, backend="serial", layout=layout
            ).solve()
        for name, result in runs.items():
            assert result.proved_optimal, name
            assert result.best_makespan == reference.best_makespan, name
        # same-engine layout twins agree on the full counter set
        blk = runs["sequential/block"]
        for counter in ("nodes_bounded", "nodes_branched", "nodes_pruned"):
            assert getattr(blk.stats, counter) == getattr(reference.stats, counter), counter

    @given(st.integers(0, 2000))
    @settings(max_examples=10, deadline=None)
    def test_budgeted_runs_identical_across_layouts(self, seed):
        rng = np.random.default_rng(seed)
        instance = FlowShopInstance(rng.integers(1, 30, size=(7, 4)))
        budget = int(rng.integers(1, 60))
        obj = SequentialBranchAndBound(instance, max_nodes=budget, layout="object").solve()
        blk = SequentialBranchAndBound(instance, max_nodes=budget, layout="block").solve()
        assert obj.best_makespan == blk.best_makespan
        assert obj.best_order == blk.best_order
        assert obj.proved_optimal == blk.proved_optimal
        for counter in COUNTERS:
            assert getattr(obj.stats, counter) == getattr(blk.stats, counter), counter


class _RecordingOffload:
    """LocalBounding wrapper that logs calls and charges fake device time."""

    def __init__(self, data, charge=0.0):
        self.inner = LocalBounding(data)
        self.calls: list[tuple[str, int]] = []
        self.charge = charge

    def bound_nodes(self, nodes):
        bounds, _, _ = self.inner.bound_nodes(nodes)
        self.calls.append(("nodes", len(nodes)))
        return bounds, self.charge * len(nodes), 0.0

    def bound_block(self, block, siblings=False):
        bounds, _, _ = self.inner.bound_block(block, siblings=siblings)
        self.calls.append(("block", len(block)))
        return bounds, self.charge * len(block), 0.0


def _seeded_block_run(instance, driver, upper_bound, best_order):
    data = LowerBoundData(instance)
    trail = Trail()
    frontier = BlockFrontier(instance.n_jobs, instance.n_machines, trail)
    root = root_block(instance, trail)
    bound_block(data, root)
    stats = SearchStats(nodes_bounded=1)
    frontier.push_block(root)
    outcome = driver.run(
        frontier,
        upper_bound=upper_bound,
        best_order=best_order,
        stats=stats,
        trail=trail,
        next_order=1,
    )
    return outcome, stats


class TestHookOrder:
    """select -> improve* -> eliminate -> iteration, per driver step."""

    def _hooked_driver(self, instance, events, batch_size=None, offload=None, limits=None):
        hooks = SearchHooks(
            on_select=lambda k: events.append(("select", k)),
            on_improve_incumbent=lambda mk, order: events.append(("improve", mk, order())),
            on_eliminate=lambda k: events.append(("eliminate", k)),
            on_iteration=lambda step: events.append(("iteration", step.iteration)),
        )
        return SearchDriver(
            instance,
            LowerBoundData(instance),
            offload=offload,
            batch_size=batch_size,
            hooks=hooks,
            limits=limits,
        )

    def test_batch_mode_order(self, small_instance):
        events: list = []
        driver = self._hooked_driver(small_instance, events, batch_size=8)
        outcome, _ = _seeded_block_run(small_instance, driver, float("inf"), ())
        assert outcome.completed and outcome.improved
        kinds = [e[0] for e in events]
        assert set(kinds) == {"select", "improve", "eliminate", "iteration"}
        # each iteration is one select ... eliminate, iteration block, with
        # improvements (if any) strictly between its select and its iteration
        position = {"select": 0, "improve": 1, "eliminate": 2, "iteration": 3}
        phase = 3  # virtual "iteration" before the first select
        for kind in kinds:
            if kind == "select":
                assert phase == 3, "select must start a fresh iteration"
                phase = 0
            else:
                assert position[kind] > phase
                phase = position[kind] if kind != "improve" else phase
                if kind == "iteration":
                    phase = 3
        assert kinds[-1] == "iteration"

    def test_improvement_orders_materialize_lazily(self, small_instance):
        events: list = []
        driver = self._hooked_driver(small_instance, events, batch_size=8)
        outcome, _ = _seeded_block_run(small_instance, driver, float("inf"), ())
        improvements = [e for e in events if e[0] == "improve"]
        assert improvements, "search from +inf must improve at least once"
        assert improvements[-1][1] == int(outcome.upper_bound)
        assert improvements[-1][2] == outcome.best_order
        makespans = [e[1] for e in improvements]
        assert makespans == sorted(makespans, reverse=True)

    def test_single_mode_hooks_and_counts(self, small_instance):
        events: list = []
        driver = self._hooked_driver(small_instance, events)
        outcome, stats = _seeded_block_run(small_instance, driver, float("inf"), ())
        assert outcome.completed
        selected = sum(e[1] for e in events if e[0] == "select")
        assert selected == stats.nodes_explored
        eliminated = sum(e[1] for e in events if e[0] == "eliminate")
        assert eliminated <= stats.nodes_pruned
        assert not any(e[0] == "iteration" for e in events), "single mode has no pools"

    def test_offload_charge_accumulates(self, small_instance):
        data = LowerBoundData(small_instance)
        offload = _RecordingOffload(data, charge=0.5)
        driver = SearchDriver(small_instance, offload=offload, batch_size=8)
        outcome, stats = _seeded_block_run(small_instance, driver, float("inf"), ())
        assert outcome.simulated_s == pytest.approx(0.5 * (stats.nodes_bounded - 1))
        assert offload.calls and all(kind == "block" for kind, _ in offload.calls)


class TestStopPredicates:
    def test_max_nodes(self, medium_instance):
        result = SequentialBranchAndBound(medium_instance, max_nodes=5).solve()
        assert not result.proved_optimal
        assert result.stats.nodes_explored >= 5

    def test_max_time(self, medium_instance):
        result = SequentialBranchAndBound(medium_instance, max_time_s=1e-9).solve()
        assert not result.proved_optimal

    def test_max_iterations(self, medium_instance):
        result = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=4, max_iterations=3)
        ).solve()
        assert not result.proved_optimal
        assert len(result.iterations) == 3

    def test_deadline_already_passed(self, small_instance):
        driver = SearchDriver(
            small_instance,
            LowerBoundData(small_instance),
            limits=SearchLimits(deadline=0.0),  # epoch 0: long gone
        )
        outcome, stats = _seeded_block_run(small_instance, driver, float("inf"), ())
        assert not outcome.completed
        assert stats.nodes_explored == 0

    def test_validation(self, small_instance):
        with pytest.raises(ValueError):
            SearchDriver(small_instance, LowerBoundData(small_instance), batch_size=0)
        with pytest.raises(ValueError):
            SearchDriver(small_instance, LowerBoundData(small_instance), layout="rows")
        with pytest.raises(ValueError):
            SearchDriver(small_instance)  # no offload and no data
        with pytest.raises(ValueError):
            driver = SearchDriver(small_instance, LowerBoundData(small_instance))
            driver.run(None, upper_bound=1.0, stats=SearchStats())  # block needs a trail


class TestInt32Frontier:
    def test_block_columns_are_int32(self, medium_instance):
        trail = Trail()
        root = root_block(medium_instance, trail)
        for column in ("release", "lower_bound", "depth", "order_index", "trail_id"):
            assert getattr(root, column).dtype == np.int32, column
        from repro.bb.frontier import branch_block

        children = branch_block(root, medium_instance.processing_times, 1)
        for column in ("release", "lower_bound", "depth", "order_index", "trail_id"):
            assert getattr(children, column).dtype == np.int32, column

    def test_frontier_storage_is_int32_with_int64_keys(self, medium_instance):
        trail = Trail()
        frontier = BlockFrontier(medium_instance.n_jobs, medium_instance.n_machines, trail)
        root = root_block(medium_instance, trail)
        bound_block(LowerBoundData(medium_instance), root)
        frontier.push_block(root)
        assert frontier._release.dtype == np.int32
        assert frontier._lb.dtype == np.int32
        assert frontier._key.dtype == np.int64  # packed key keeps full width

    def test_bounds_written_back_through_int64_boundary(self, medium_instance):
        from repro.bb.frontier import branch_block
        from repro.flowshop.bounds import lower_bound_batch

        data = LowerBoundData(medium_instance)
        trail = Trail()
        children = branch_block(
            root_block(medium_instance, trail), medium_instance.processing_times, 1
        )
        got = bound_block(data, children)
        want = lower_bound_batch(data, children.scheduled_mask, children.release)
        assert want.dtype == np.int64  # kernels stay int64 internally
        assert got.dtype == np.int32  # written back into the block column
        assert np.array_equal(got, want)


class TestFrontierMemoryCap:
    def test_restricted_regime_pops_deepest(self, medium_instance):
        data = LowerBoundData(medium_instance)
        trail = Trail()
        frontier = BlockFrontier(
            medium_instance.n_jobs, medium_instance.n_machines, trail, max_pending=2
        )
        root = root_block(medium_instance, trail)
        bound_block(data, root)
        frontier.push_block(root)
        assert not frontier.restricted
        from repro.bb.frontier import branch_block

        children = branch_block(root, medium_instance.processing_times, 1)
        bound_block(data, children)
        frontier.push_block(children)
        assert frontier.restricted
        assert frontier.pop_min_tie_batch() is None  # batching pauses
        row = frontier.peek_best()
        # depth-first-restricted: the most recent (deepest) node is chosen
        assert int(frontier._order[row]) == int(frontier._order[: len(frontier)].max())

    def test_capped_sequential_stays_exact(self, medium_instance):
        free = SequentialBranchAndBound(medium_instance, layout="block").solve()
        capped = SequentialBranchAndBound(
            medium_instance, layout="block", max_frontier_nodes=8
        ).solve()
        assert capped.proved_optimal
        assert capped.best_makespan == free.best_makespan
        # the cap may be exceeded transiently by one push of <= n_jobs rows
        assert capped.stats.max_pool_size <= 8 + medium_instance.n_jobs
        assert capped.stats.max_pool_size <= free.stats.max_pool_size

    def test_capped_gpu_engine_stays_exact(self, medium_instance):
        free = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=16)).solve()
        capped = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=16, max_frontier_nodes=8)
        ).solve()
        assert capped.proved_optimal
        assert capped.best_makespan == free.best_makespan

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            GpuBBConfig(max_frontier_nodes=0)
        with pytest.raises(ValueError):
            SequentialBranchAndBound(MEDIUM, max_frontier_nodes=0)
        with pytest.raises(ValueError):
            BlockFrontier(4, 2, Trail(), max_pending=0)

    def test_cli_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "solve",
                    "--jobs",
                    "6",
                    "--machines",
                    "4",
                    "--engine",
                    "serial",
                    "--max-frontier-nodes",
                    "16",
                ]
            )
            == 0
        )
        assert "makespan" in capsys.readouterr().out


class TestDoubleBuffer:
    def test_overlap_credit_reduces_simulated_time_only(self, medium_instance):
        plain = GpuBranchAndBound(medium_instance, GpuBBConfig(pool_size=16)).solve()
        buffered = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=16, double_buffer=True)
        ).solve()
        # the explored tree is untouched
        assert buffered.best_makespan == plain.best_makespan
        assert buffered.best_order == plain.best_order
        for counter in COUNTERS:
            assert getattr(buffered.stats, counter) == getattr(plain.stats, counter), counter
        assert len(buffered.iterations) == len(plain.iterations)
        # only the simulated accounting changes, by exactly the credit
        assert buffered.overlap_saved_s > 0
        assert plain.overlap_saved_s == 0
        assert buffered.simulated_device_time_s == pytest.approx(
            plain.simulated_device_time_s - buffered.overlap_saved_s
        )

    def test_on_overlap_hook_fires(self, small_instance):
        credits: list[float] = []
        data = LowerBoundData(small_instance)
        offload = _RecordingOffload(data, charge=1e-6)
        driver = SearchDriver(
            small_instance,
            offload=offload,
            batch_size=4,
            double_buffer=True,
            hooks=SearchHooks(on_overlap=credits.append),
        )
        outcome, _ = _seeded_block_run(small_instance, driver, float("inf"), ())
        assert outcome.completed
        assert credits, "multi-iteration run must record overlap credits"
        assert outcome.overlap_saved_s == pytest.approx(sum(credits))


class TestWorkstealTieBatching:
    """Best-first workers ride the sequential engine's tie-batch path."""

    @pytest.mark.parametrize("layout", ["object", "block"])
    def test_best_first_workers_exact(self, medium_instance, layout):
        optimum = SequentialBranchAndBound(medium_instance).solve().best_makespan
        result = MulticoreBranchAndBound(
            medium_instance,
            n_workers=1,
            backend="serial",
            mode="worksteal",
            selection="best-first",
            decomposition_depth=2,
            layout=layout,
        ).solve()
        assert result.proved_optimal
        assert result.best_makespan == optimum
        stats = result.stats
        assert stats.nodes_bounded == (
            stats.nodes_branched + stats.nodes_pruned + stats.leaves_evaluated
        )

    def test_block_workers_bound_ties_in_fewer_launches(self, medium_instance):
        # the block worker batches (lb, depth) ties: its offload sees the
        # same node set as the object worker in at-most-as-many launches
        data = LowerBoundData(medium_instance)
        launches = {}
        for layout in ("object", "block"):
            offload = _RecordingOffload(data)
            driver = SearchDriver(
                medium_instance, layout=layout, selection="best-first", offload=offload
            )
            if layout == "block":
                outcome, stats = _seeded_block_run(
                    medium_instance, driver, float("inf"), ()
                )
            else:
                from repro.bb.node import root_node
                from repro.bb.operators import bound_node

                pool = make_pool("best-first")
                root = root_node(medium_instance)
                bound_node(root, data)
                stats = SearchStats(nodes_bounded=1)
                pool.push(root)
                outcome = driver.run(
                    pool, upper_bound=float("inf"), best_order=(), stats=stats
                )
            assert outcome.completed
            launches[layout] = (len(offload.calls), stats.nodes_bounded)
        assert launches["block"][1] == launches["object"][1]  # same nodes bounded
        assert launches["block"][0] <= launches["object"][0]  # in fewer launches


class TestReviewRegressions:
    """Fixes from the driver-PR review: overflow guard, cap plumbing, overlap."""

    def test_trail_overflows_loudly_not_silently(self):
        from repro.bb.frontier import _INT32_ID_LIMIT

        trail = Trail(capacity=4)
        trail._size = _INT32_ID_LIMIT  # simulate a 2**31-node search
        with pytest.raises(OverflowError, match="layout='object'"):
            trail.append(0, 1)

    def test_multicore_engine_honours_frontier_cap(self, medium_instance):
        free = MulticoreBranchAndBound(
            medium_instance, n_workers=1, backend="serial", layout="block"
        ).solve()
        capped = MulticoreBranchAndBound(
            medium_instance,
            n_workers=1,
            backend="serial",
            layout="block",
            selection="best-first",
            max_frontier_nodes=4,
        ).solve()
        assert capped.proved_optimal
        assert capped.best_makespan == free.best_makespan

    def test_hybrid_result_reports_overlap_credit(self, medium_instance):
        config = HybridConfig(
            n_explorers=2, gpu=GpuBBConfig(pool_size=4, double_buffer=True)
        )
        buffered = HybridBranchAndBound(medium_instance, config).solve()
        plain = HybridBranchAndBound(
            medium_instance,
            HybridConfig(n_explorers=2, gpu=GpuBBConfig(pool_size=4)),
        ).solve()
        assert buffered.best_makespan == plain.best_makespan
        assert buffered.overlap_saved_s > 0  # sub-tree credits are merged
        assert plain.overlap_saved_s == 0

    def test_scalar_offload_skips_batch_array(self, small_instance):
        data = LowerBoundData(small_instance)
        backend = LocalBounding(data, kernel="scalar")
        from repro.bb.node import root_node

        children = root_node(small_instance).children(small_instance.processing_times)
        bounds, sim_s, wall_s = backend.bound_nodes(children)
        assert bounds is None  # advisory element: driver reads the nodes
        assert all(child.lower_bound is not None for child in children)
