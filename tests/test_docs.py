"""The documentation stays true: doctests pass, intra-repo links resolve.

Mirrors the CI docs job so a stale snippet or broken link fails locally
too, not only on the runner.
"""

from __future__ import annotations

import doctest
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "docs" / "ARCHITECTURE.md", REPO_ROOT / "docs" / "SERVING.md"]


class TestDocSnippets:
    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_doc_exists_and_snippets_pass(self, path):
        assert path.exists(), f"{path.name} is missing"
        results = doctest.testfile(
            str(path), module_relative=False, verbose=False, report=True
        )
        assert results.attempted > 0, f"{path.name} carries no executable snippets"
        assert results.failed == 0, f"{results.failed} doctest(s) failed in {path.name}"


class TestDocLinks:
    def test_intra_repo_markdown_links_resolve(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_doc_links.py"), str(REPO_ROOT)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestReadmeMentionsDocs:
    def test_readme_links_both_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/SERVING.md" in readme
