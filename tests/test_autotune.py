"""Tests for the pool-size auto-tuner."""

from __future__ import annotations

import pytest

from repro.core import GpuBBConfig, PoolSizeAutotuner
from repro.core.autotune import AutotuneReport
from repro.flowshop import taillard_instance


class TestModelMode:
    def test_report_structure(self, paper_instance):
        report = PoolSizeAutotuner(
            paper_instance, candidates=(4096, 8192, 65536), mode="model"
        ).run()
        assert isinstance(report, AutotuneReport)
        assert report.best_pool_size in (4096, 8192, 65536)
        assert len(report.samples) == 3
        assert report.mode == "model"
        rows = report.as_rows()
        assert all({"pool_size", "per_node_us", "predicted_speedup"} <= set(r) for r in rows)

    def test_large_instances_prefer_large_pools(self):
        """The paper: 200x20 peaks at 262144 while 20x20 peaks at ~8192."""
        small = PoolSizeAutotuner(taillard_instance(20, 20), mode="model").run()
        large = PoolSizeAutotuner(taillard_instance(200, 20), mode="model").run()
        assert large.best_pool_size >= small.best_pool_size
        assert large.best_pool_size >= 65536
        assert small.best_pool_size <= 32768

    def test_tuned_config(self, paper_instance):
        tuner = PoolSizeAutotuner(paper_instance, GpuBBConfig(pool_size=4096), mode="model")
        config = tuner.tuned_config()
        assert config.pool_size == tuner.run().best_pool_size

    def test_validation(self, paper_instance):
        with pytest.raises(ValueError):
            PoolSizeAutotuner(paper_instance, candidates=())
        with pytest.raises(ValueError):
            PoolSizeAutotuner(paper_instance, candidates=(0,))
        with pytest.raises(ValueError):
            PoolSizeAutotuner(paper_instance, mode="guess")


class TestMeasureMode:
    def test_measured_samples(self, small_instance):
        report = PoolSizeAutotuner(small_instance, candidates=(32, 64), mode="measure").run()
        assert report.mode == "measure"
        assert report.best_pool_size in (32, 64)
        assert all(sample.per_node_s > 0 for sample in report.samples)
