"""Tests for the serial Branch-and-Bound engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb import SequentialBranchAndBound, brute_force_optimum
from repro.flowshop import FlowShopInstance, makespan, random_instance


class TestOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 9])
    def test_matches_bruteforce(self, seed):
        inst = random_instance(7, 4, seed=seed)
        _, optimum = brute_force_optimum(inst)
        result = SequentialBranchAndBound(inst).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal
        assert makespan(inst, result.best_order) == result.best_makespan

    @pytest.mark.parametrize("selection", ["best-first", "depth-first", "fifo"])
    def test_all_strategies_agree(self, medium_instance, selection):
        result = SequentialBranchAndBound(medium_instance, selection=selection).solve()
        _, optimum = brute_force_optimum(medium_instance)
        assert result.best_makespan == optimum

    def test_two_machine_instance_matches_johnson(self):
        from repro.flowshop import johnson_makespan

        inst = random_instance(8, 2, seed=4)
        result = SequentialBranchAndBound(inst).solve()
        a = inst.processing_times[:, 0]
        b = inst.processing_times[:, 1]
        assert result.best_makespan == johnson_makespan(a, b)

    def test_single_machine_instance(self):
        inst = FlowShopInstance([[4], [2], [7], [1]])
        result = SequentialBranchAndBound(inst).solve()
        assert result.best_makespan == 14

    def test_single_job_instance(self):
        inst = FlowShopInstance([[4, 5, 6]])
        result = SequentialBranchAndBound(inst).solve()
        assert result.best_makespan == 15
        assert result.best_order == (0,)

    @given(st.integers(0, 2000), st.integers(2, 6), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_never_better_than_bruteforce(self, seed, n, m):
        rng = np.random.default_rng(seed)
        inst = FlowShopInstance(rng.integers(1, 40, size=(n, m)))
        _, optimum = brute_force_optimum(inst)
        result = SequentialBranchAndBound(inst).solve()
        assert result.best_makespan == optimum


class TestIncumbents:
    def test_neh_seed_reduces_explored_nodes(self, medium_instance):
        with_neh = SequentialBranchAndBound(medium_instance).solve()
        without = SequentialBranchAndBound(
            medium_instance, initial_upper_bound=float("inf")
        ).solve()
        assert with_neh.best_makespan == without.best_makespan
        assert with_neh.stats.nodes_bounded <= without.stats.nodes_bounded

    def test_explicit_upper_bound_respected(self, medium_instance):
        optimum = SequentialBranchAndBound(medium_instance).solve().best_makespan
        # a UB one above the optimum still lets the search find the optimum
        result = SequentialBranchAndBound(medium_instance, initial_upper_bound=optimum + 1).solve()
        assert result.best_makespan == optimum

    def test_incumbent_callback(self, medium_instance):
        seen = []
        SequentialBranchAndBound(
            medium_instance,
            initial_upper_bound=float("inf"),
            on_incumbent=lambda value, order: seen.append(value),
        ).solve()
        assert seen == sorted(seen, reverse=True)
        assert len(seen) >= 1

    def test_unreachable_upper_bound_raises(self, small_instance):
        # a UB below every schedule means no incumbent can ever be produced
        with pytest.raises(RuntimeError):
            SequentialBranchAndBound(small_instance, initial_upper_bound=1).solve()


class TestBudgets:
    def test_node_budget_marks_not_proven(self, medium_instance):
        result = SequentialBranchAndBound(
            medium_instance, max_nodes=5, initial_upper_bound=None
        ).solve()
        assert not result.proved_optimal
        # the incumbent is still a valid schedule
        assert makespan(medium_instance, result.best_order) == result.best_makespan

    def test_time_budget_marks_not_proven(self):
        # the scalar kernel keeps this search comfortably slower than the
        # budget; the batched kernels can finish 11x8 within 50 ms
        inst = random_instance(11, 8, seed=0)
        result = SequentialBranchAndBound(inst, max_time_s=0.05, kernel="scalar").solve()
        assert not result.proved_optimal

    def test_budget_result_not_below_optimum(self, medium_instance):
        _, optimum = brute_force_optimum(medium_instance)
        result = SequentialBranchAndBound(medium_instance, max_nodes=3).solve()
        assert result.best_makespan >= optimum


class TestStatsAndTrace:
    def test_stats_consistency(self, medium_instance):
        result = SequentialBranchAndBound(medium_instance).solve()
        stats = result.stats
        assert stats.nodes_bounded >= stats.nodes_branched
        assert stats.time_total_s > 0
        assert 0 <= stats.bounding_fraction <= 1
        assert stats.time_bounding_s <= stats.time_total_s

    def test_bounding_dominates_runtime_on_wide_instances(self, paper_instance):
        """The paper's preliminary observation: bounding is the vast majority
        of the serial runtime for m=20 instances (measured on the scalar,
        one-call-per-node path the paper instruments)."""
        result = SequentialBranchAndBound(paper_instance, max_nodes=150, kernel="scalar").solve()
        assert result.stats.bounding_fraction > 0.80

    def test_trace_records_root(self, tiny_instance):
        result = SequentialBranchAndBound(
            tiny_instance, trace=True, initial_upper_bound=float("inf")
        ).solve()
        assert result.trace
        assert result.trace[0].prefix == ()
        actions = {event.action for event in result.trace}
        assert "branched" in actions
        assert "incumbent" in actions

    def test_summary_keys(self, tiny_instance):
        result = SequentialBranchAndBound(tiny_instance).solve()
        summary = result.summary()
        assert summary["best_makespan"] == result.best_makespan
        assert "bounding_fraction" in summary
