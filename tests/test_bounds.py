"""Tests for the Lenstra lower bound (:mod:`repro.flowshop.bounds`)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowshop import FlowShopInstance, makespan
from repro.flowshop.bounds import (
    DataStructureComplexity,
    LowerBoundData,
    lower_bound,
    lower_bound_batch,
    machine_couples,
    one_machine_bound,
)


def _instance(n, m, seed):
    rng = np.random.default_rng(seed)
    return FlowShopInstance(rng.integers(1, 50, size=(n, m)))


class TestMachineCouples:
    def test_count_and_order(self):
        couples = machine_couples(4)
        assert couples.shape == (6, 2)
        assert couples.tolist() == [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]]

    def test_single_machine_has_no_couples(self):
        assert machine_couples(1).shape == (0, 2)

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            machine_couples(0)


class TestComplexity:
    def test_paper_table1_values_for_200x20(self):
        c = DataStructureComplexity(n=200, m=20)
        sizes = c.sizes()
        assert sizes["PTM"] == 200 * 20
        assert sizes["LM"] == 200 * 190
        assert sizes["JM"] == 200 * 190
        assert sizes["RM"] == 20
        assert sizes["QM"] == 20
        assert sizes["MM"] == 20 * 19
        acc = c.accesses(200)
        assert acc["PTM"] == 200 * 20 * 19
        assert acc["LM"] == 200 * 190
        assert acc["JM"] == 200 * 190
        assert acc["RM"] == 380
        assert acc["MM"] == 380

    def test_paper_shared_memory_budget(self):
        """JM and LM are ~38 KB each and PTM ~4 KB for 200x20 (packed bytes)."""
        c = DataStructureComplexity(n=200, m=20, bytes_per_element=1)
        assert c.sizes_bytes()["JM"] == 38000
        assert c.sizes_bytes()["LM"] == 38000
        assert c.sizes_bytes()["PTM"] == 4000

    def test_accesses_scale_with_remaining_jobs(self):
        c = DataStructureComplexity(n=50, m=10)
        full = c.accesses(50)
        half = c.accesses(25)
        assert half["PTM"] == full["PTM"] // 2
        assert half["JM"] == full["JM"]  # JM is scanned for all n jobs regardless

    def test_rejects_bad_n_prime(self):
        c = DataStructureComplexity(n=10, m=5)
        with pytest.raises(ValueError):
            c.accesses(11)

    def test_table_rows_order(self):
        c = DataStructureComplexity(n=10, m=5)
        names = [row[0] for row in c.table_rows()]
        assert names == ["PTM", "LM", "JM", "RM", "QM", "MM"]


class TestLowerBoundData:
    def test_shapes(self, small_instance, small_instance_data):
        data = small_instance_data
        n, m = small_instance.shape
        n_couples = m * (m - 1) // 2
        assert data.lm.shape == (n, n_couples)
        assert data.jm.shape == (n, n_couples)
        assert data.mm.shape == (n_couples, 2)
        assert data.tails.shape == (n, m)

    def test_jm_columns_are_permutations(self, small_instance_data):
        data = small_instance_data
        for c in range(data.n_couples):
            assert sorted(data.jm[:, c].tolist()) == list(range(data.n_jobs))

    def test_lags_are_between_sums(self, small_instance, small_instance_data):
        data = small_instance_data
        pt = small_instance.processing_times
        for c in range(data.n_couples):
            k, l = data.mm[c]
            expected = pt[:, k + 1 : l].sum(axis=1)
            assert np.array_equal(data.lm[:, c], expected)

    def test_tails_definition(self, small_instance, small_instance_data):
        pt = small_instance.processing_times
        tails = small_instance_data.tails
        for j in range(small_instance.n_jobs):
            for k in range(small_instance.n_machines):
                assert tails[j, k] == pt[j, k + 1 :].sum()

    def test_release_times_match_schedule_module(self, small_instance, small_instance_data):
        from repro.flowshop.schedule import partial_completion_times

        prefix = [1, 3, 0]
        assert np.array_equal(
            small_instance_data.machine_release_times(prefix),
            partial_completion_times(small_instance, prefix),
        )

    def test_min_tails_all_scheduled_is_zero(self, small_instance_data):
        mask = np.ones(small_instance_data.n_jobs, dtype=bool)
        assert small_instance_data.min_tails(mask).tolist() == [0] * small_instance_data.n_machines

    def test_arrays_read_only(self, small_instance_data):
        with pytest.raises(ValueError):
            small_instance_data.jm[0, 0] = 1


class TestLowerBoundAdmissibility:
    """The central correctness property: LB never exceeds the best completion."""

    def _best_completion(self, instance, prefix):
        remaining = [j for j in range(instance.n_jobs) if j not in prefix]
        if not remaining:
            return makespan(instance, prefix)
        return min(
            makespan(instance, list(prefix) + list(perm))
            for perm in itertools.permutations(remaining)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_root_bound_admissible(self, seed):
        inst = _instance(6, 4, seed)
        data = LowerBoundData(inst)
        assert lower_bound(data, []) <= self._best_completion(inst, [])

    @given(st.integers(0, 500), st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_bound_admissible_for_random_prefixes(self, seed, depth):
        inst = _instance(6, 3, seed)
        data = LowerBoundData(inst)
        rng = np.random.default_rng(seed + 1)
        depth = min(depth, inst.n_jobs)
        prefix = list(rng.permutation(inst.n_jobs)[:depth])
        lb = lower_bound(data, prefix)
        assert lb <= self._best_completion(inst, prefix)

    def test_bound_exact_for_complete_schedule(self, small_instance, small_instance_data):
        order = list(range(small_instance.n_jobs))
        assert lower_bound(small_instance_data, order) == makespan(small_instance, order)

    def test_bound_exact_for_two_machines(self):
        """With m=2 the relaxation is the whole problem, so the root LB is optimal."""
        inst = _instance(6, 2, 42)
        data = LowerBoundData(inst)
        best = min(makespan(inst, perm) for perm in itertools.permutations(range(inst.n_jobs)))
        assert lower_bound(data, []) == best

    def test_bound_monotone_under_extension(self, small_instance, small_instance_data):
        """Extending a prefix can only raise (or keep) the bound."""
        data = small_instance_data
        prefix = [0]
        base = lower_bound(data, prefix)
        for job in range(1, small_instance.n_jobs):
            assert lower_bound(data, prefix + [job]) >= base

    def test_bound_at_least_release_of_last_machine(self, small_instance, small_instance_data):
        prefix = [2, 4]
        rm = small_instance_data.machine_release_times(prefix)
        assert lower_bound(small_instance_data, prefix) >= rm[-1]

    def test_one_machine_bound_admissible(self, small_instance, small_instance_data):
        prefix = [1]
        assert one_machine_bound(small_instance_data, prefix) <= self._best_completion(
            small_instance, prefix
        )

    def test_single_machine_instance(self):
        inst = FlowShopInstance([[4], [2], [7]])
        data = LowerBoundData(inst)
        # with one machine the optimal makespan is the total work
        assert lower_bound(data, [], include_one_machine=True) == 13

    def test_rejects_duplicate_prefix(self, small_instance_data):
        with pytest.raises(ValueError):
            lower_bound(small_instance_data, [0, 0])

    def test_rejects_bad_release_shape(self, small_instance_data):
        with pytest.raises(ValueError):
            lower_bound(small_instance_data, [0], release=np.zeros(2, dtype=np.int64))


class TestBatchKernel:
    def test_empty_batch(self, small_instance_data):
        out = lower_bound_batch(
            small_instance_data,
            np.zeros((0, small_instance_data.n_jobs), dtype=bool),
            np.zeros((0, small_instance_data.n_machines), dtype=np.int64),
        )
        assert out.shape == (0,)

    def test_shape_validation(self, small_instance_data):
        with pytest.raises(ValueError):
            lower_bound_batch(
                small_instance_data,
                np.zeros((3, 2), dtype=bool),
                np.zeros((3, small_instance_data.n_machines), dtype=np.int64),
            )
        with pytest.raises(ValueError):
            lower_bound_batch(
                small_instance_data,
                np.zeros((3, small_instance_data.n_jobs), dtype=bool),
                np.zeros((2, small_instance_data.n_machines), dtype=np.int64),
            )

    @given(st.integers(0, 300), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_scalar(self, seed, batch_size):
        """The GPU (batched) kernel is bit-identical to the scalar kernel."""
        inst = _instance(7, 4, seed)
        data = LowerBoundData(inst)
        rng = np.random.default_rng(seed)
        mask = np.zeros((batch_size, inst.n_jobs), dtype=bool)
        release = np.zeros((batch_size, inst.n_machines), dtype=np.int64)
        prefixes = []
        for i in range(batch_size):
            depth = int(rng.integers(0, inst.n_jobs + 1))
            prefix = list(rng.permutation(inst.n_jobs)[:depth])
            prefixes.append(prefix)
            mask[i, prefix] = True
            release[i] = data.machine_release_times(prefix)
        batch = lower_bound_batch(data, mask, release)
        scalar = np.array([lower_bound(data, p) for p in prefixes])
        assert np.array_equal(batch, scalar)

    def test_batch_matches_scalar_with_one_machine_term(self, small_instance_data):
        data = small_instance_data
        prefixes = [[], [0], [1, 2], list(range(data.n_jobs))]
        mask = np.zeros((len(prefixes), data.n_jobs), dtype=bool)
        release = np.zeros((len(prefixes), data.n_machines), dtype=np.int64)
        for i, p in enumerate(prefixes):
            mask[i, p] = True
            release[i] = data.machine_release_times(p)
        batch = lower_bound_batch(data, mask, release, include_one_machine=True)
        scalar = [lower_bound(data, p, include_one_machine=True) for p in prefixes]
        assert batch.tolist() == scalar

    def test_batch_mixed_complete_and_partial(self, small_instance, small_instance_data):
        data = small_instance_data
        full = list(range(small_instance.n_jobs))
        prefixes = [full, [0], full, []]
        mask = np.zeros((4, data.n_jobs), dtype=bool)
        release = np.zeros((4, data.n_machines), dtype=np.int64)
        for i, p in enumerate(prefixes):
            mask[i, p] = True
            release[i] = data.machine_release_times(p)
        out = lower_bound_batch(data, mask, release)
        assert out[0] == out[2] == makespan(small_instance, full)
        assert out[1] >= out[3]
