"""Cross-module property-based tests (hypothesis).

These are the library-wide invariants that tie the layers together:

* the lower bound is admissible and the engines are exact,
* the batched ("GPU") kernel is bit-identical to the scalar one, so every
  engine explores an equivalent tree,
* the simulator's timings behave monotonically in the quantities the
  paper's analysis relies on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb import SequentialBranchAndBound, brute_force_optimum
from repro.core import GpuBBConfig, GpuBranchAndBound
from repro.flowshop import FlowShopInstance, makespan, neh_heuristic
from repro.flowshop.bounds import (
    DataStructureComplexity,
    LowerBoundData,
    lower_bound,
    lower_bound_batch,
)
from repro.gpu.simulator import GpuSimulator


def instances(max_jobs: int = 6, max_machines: int = 4):
    return st.builds(
        lambda n, m, seed: FlowShopInstance(
            np.random.default_rng(seed).integers(1, 99, size=(n, m)),
            name=f"hyp_{n}x{m}_{seed}",
        ),
        st.integers(2, max_jobs),
        st.integers(2, max_machines),
        st.integers(0, 10_000),
    )


class TestExactness:
    @given(instances(max_jobs=5, max_machines=3))
    @settings(max_examples=20, deadline=None)
    def test_gpu_engine_is_exact(self, instance):
        _, optimum = brute_force_optimum(instance)
        result = GpuBranchAndBound(instance, GpuBBConfig(pool_size=32)).solve()
        assert result.best_makespan == optimum
        assert makespan(instance, result.best_order) == optimum

    @given(instances(max_jobs=5, max_machines=3))
    @settings(max_examples=20, deadline=None)
    def test_serial_and_gpu_engines_agree(self, instance):
        serial = SequentialBranchAndBound(instance).solve()
        gpu = GpuBranchAndBound(instance, GpuBBConfig(pool_size=16)).solve()
        assert serial.best_makespan == gpu.best_makespan

    @given(instances())
    @settings(max_examples=20, deadline=None)
    def test_neh_upper_bound_vs_root_lower_bound(self, instance):
        data = LowerBoundData(instance)
        assert lower_bound(data, []) <= neh_heuristic(instance).makespan


class TestKernelEquivalence:
    @given(instances(), st.integers(1, 40), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_batched_kernel_equals_scalar_kernel(self, instance, batch, seed):
        data = LowerBoundData(instance)
        rng = np.random.default_rng(seed)
        mask = np.zeros((batch, instance.n_jobs), dtype=bool)
        release = np.zeros((batch, instance.n_machines), dtype=np.int64)
        prefixes = []
        for i in range(batch):
            depth = int(rng.integers(0, instance.n_jobs + 1))
            prefix = list(rng.permutation(instance.n_jobs)[:depth])
            prefixes.append(prefix)
            mask[i, prefix] = True
            release[i] = data.machine_release_times(prefix)
        assert np.array_equal(
            lower_bound_batch(data, mask, release),
            np.array([lower_bound(data, p) for p in prefixes]),
        )

    @given(instances())
    @settings(max_examples=20, deadline=None)
    def test_lower_bound_of_complete_schedule_is_its_makespan(self, instance):
        data = LowerBoundData(instance)
        order = list(range(instance.n_jobs))
        assert lower_bound(data, order) == makespan(instance, order)


class TestSimulatorMonotonicity:
    @given(
        st.sampled_from([20, 50, 100, 200]),
        st.sampled_from([4096, 8192, 65536, 262144]),
    )
    @settings(max_examples=20, deadline=None)
    def test_kernel_time_positive_and_bounded(self, n_jobs, pool):
        complexity = DataStructureComplexity(n=n_jobs, m=20)
        timing = GpuSimulator().evaluate_pool(complexity, pool)
        assert 0 < timing.kernel_s < 60.0
        assert timing.total_s >= timing.kernel_s

    @given(st.sampled_from([20, 50, 100, 200]), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_more_pool_never_takes_less_time(self, n_jobs, doubling):
        complexity = DataStructureComplexity(n=n_jobs, m=20)
        sim = GpuSimulator()
        small = sim.evaluate_pool(complexity, 4096)
        large = sim.evaluate_pool(complexity, 4096 * (2**doubling))
        assert large.total_s >= small.total_s
