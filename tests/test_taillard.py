"""Tests for the Taillard instance generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flowshop.taillard import (
    PAPER_INSTANCE_CLASSES,
    TAILLARD_CLASSES,
    TAILLARD_TIME_SEEDS,
    TaillardGenerator,
    TaillardRNG,
    taillard_instance,
)


class TestTaillardRNG:
    def test_rejects_bad_seeds(self):
        with pytest.raises(ValueError):
            TaillardRNG(0)
        with pytest.raises(ValueError):
            TaillardRNG(2**31 - 1)

    def test_deterministic_sequence(self):
        a = TaillardRNG(873654221)
        b = TaillardRNG(873654221)
        assert [a.next_int(1, 99) for _ in range(50)] == [b.next_int(1, 99) for _ in range(50)]

    def test_lehmer_recurrence(self):
        """One step of the generator matches 16807 * x mod (2^31 - 1)."""
        seed = 123456789
        rng = TaillardRNG(seed)
        rng.next_float()
        assert rng.state == (16807 * seed) % (2**31 - 1)

    def test_uniform_range(self):
        rng = TaillardRNG(42)
        values = [rng.next_int(1, 99) for _ in range(2000)]
        assert min(values) >= 1
        assert max(values) <= 99
        # crude uniformity check: both halves of the range are populated
        assert sum(v <= 50 for v in values) > 500
        assert sum(v > 50 for v in values) > 500

    def test_next_int_validates_bounds(self):
        rng = TaillardRNG(42)
        with pytest.raises(ValueError):
            rng.next_int(5, 1)


class TestGenerator:
    def test_shape_and_range(self):
        inst = taillard_instance(20, 5, index=1)
        assert inst.shape == (20, 5)
        assert inst.processing_times.min() >= 1
        assert inst.processing_times.max() <= 99

    def test_known_seed_is_used_for_ta001(self):
        gen = TaillardGenerator(20, 5, index=1)
        seed, synthetic = gen.resolved_seed()
        assert seed == TAILLARD_TIME_SEEDS[(20, 5, 1)]
        assert synthetic is False

    def test_unknown_instance_is_flagged_synthetic(self):
        inst = taillard_instance(20, 20, index=1)
        assert inst.metadata["synthetic"] is True

    def test_explicit_seed_overrides_registry(self):
        gen = TaillardGenerator(20, 5, time_seed=12345, index=1)
        seed, synthetic = gen.resolved_seed()
        assert seed == 12345
        assert synthetic is False

    def test_reproducibility(self):
        a = taillard_instance(50, 20, index=3)
        b = taillard_instance(50, 20, index=3)
        assert np.array_equal(a.processing_times, b.processing_times)

    def test_different_indices_differ(self):
        a = taillard_instance(20, 20, index=1)
        b = taillard_instance(20, 20, index=2)
        assert not np.array_equal(a.processing_times, b.processing_times)

    def test_generation_order_is_machine_major(self):
        """Taillard fills the matrix machine by machine: p[j,k] uses draw k*n+j."""
        gen = TaillardGenerator(3, 2, time_seed=873654221)
        rng = TaillardRNG(873654221)
        draws = [rng.next_int(1, 99) for _ in range(6)]
        pt = gen.processing_times()
        assert pt[:, 0].tolist() == draws[:3]
        assert pt[:, 1].tolist() == draws[3:]

    def test_paper_classes_subset_of_benchmark(self):
        for klass in PAPER_INSTANCE_CLASSES:
            assert klass in TAILLARD_CLASSES

    def test_metadata_contents(self):
        inst = taillard_instance(20, 10, index=4)
        assert inst.metadata["generator"] == "taillard"
        assert inst.metadata["class"] == (20, 10)
        assert inst.metadata["index"] == 4
        assert inst.name == "ta_20x10_04"
