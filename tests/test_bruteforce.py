"""Tests for the exhaustive reference solver."""

from __future__ import annotations

import pytest

from repro.bb.bruteforce import brute_force_optimum, enumerate_makespans
from repro.flowshop import FlowShopInstance, makespan, random_instance


class TestBruteForce:
    def test_enumerates_all_permutations(self):
        inst = random_instance(4, 3, seed=0)
        entries = list(enumerate_makespans(inst))
        assert len(entries) == 24
        orders = {order for order, _ in entries}
        assert len(orders) == 24

    def test_optimum_is_minimal(self):
        inst = random_instance(5, 3, seed=1)
        order, value = brute_force_optimum(inst)
        assert value == min(v for _, v in enumerate_makespans(inst))
        assert makespan(inst, order) == value

    def test_refuses_large_instances(self):
        inst = random_instance(11, 2, seed=0)
        with pytest.raises(ValueError):
            brute_force_optimum(inst)

    def test_known_johnson_example(self):
        inst = FlowShopInstance([[3, 6], [5, 2], [1, 2]])
        _, value = brute_force_optimum(inst)
        assert value == 12
