"""Tests for device / CPU specifications."""

from __future__ import annotations

import pytest

from repro.gpu.device import (
    CORE_I7_970,
    GTX_480,
    TESLA_C1060,
    TESLA_C2050,
    CpuSpec,
    DeviceSpec,
    XEON_E5520,
)


class TestTeslaC2050:
    def test_paper_figures(self):
        """The preset must match the characteristics quoted in Section IV."""
        dev = TESLA_C2050
        assert dev.total_cores == 448
        assert dev.n_multiprocessors == 14
        assert dev.cores_per_multiprocessor == 32
        assert dev.clock_ghz == pytest.approx(1.15)
        assert dev.warp_size == 32
        assert dev.peak_gflops_double == pytest.approx(515.0)
        assert dev.default_shared_memory_bytes == 48 * 1024
        assert dev.onchip_memory_bytes == 64 * 1024

    def test_recommended_min_blocks_is_twice_sms(self):
        """The paper: blocks should be at least 2x the multiprocessor count (28)."""
        assert TESLA_C2050.recommended_min_blocks() == 28

    def test_shared_memory_reconfiguration(self):
        dev = TESLA_C2050.with_shared_memory(16 * 1024)
        assert dev.default_shared_memory_bytes == 16 * 1024
        assert dev.l1_cache_bytes == 48 * 1024
        with pytest.raises(ValueError):
            TESLA_C2050.with_shared_memory(128 * 1024)

    def test_max_resident_threads(self):
        assert TESLA_C2050.max_resident_threads == 14 * 1536


class TestDeviceValidation:
    def test_rejects_zero_multiprocessors(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                n_multiprocessors=0,
                cores_per_multiprocessor=8,
                clock_ghz=1.0,
                global_memory_bytes=1,
            )

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            DeviceSpec(
                name="bad",
                n_multiprocessors=1,
                cores_per_multiprocessor=8,
                clock_ghz=0.0,
                global_memory_bytes=1,
            )

    def test_other_presets_are_consistent(self):
        for dev in (TESLA_C1060, GTX_480):
            assert dev.total_cores == dev.n_multiprocessors * dev.cores_per_multiprocessor
            assert dev.clock_hz == pytest.approx(dev.clock_ghz * 1e9)


class TestCpuSpecs:
    def test_xeon_reference(self):
        assert XEON_E5520.n_cores == 8
        assert XEON_E5520.clock_ghz == pytest.approx(2.27)

    def test_i7_per_core_peak(self):
        """The paper's Table IV accounting: 76.8 GFLOPS chip peak, 6 cores."""
        assert CORE_I7_970.peak_gflops_double == pytest.approx(76.8)
        assert CORE_I7_970.peak_gflops_per_core == pytest.approx(76.8 / 6)

    def test_gflops_scaling(self):
        assert CORE_I7_970.gflops_for_cores(3) == pytest.approx(38.4)
        assert CORE_I7_970.cores_for_gflops(76.8) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSpec(name="bad", n_cores=4, n_threads=2, clock_ghz=2.0, peak_gflops_double=10)
        with pytest.raises(ValueError):
            CORE_I7_970.gflops_for_cores(-1)
        with pytest.raises(ValueError):
            CORE_I7_970.cores_for_gflops(-1)
