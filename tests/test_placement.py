"""Tests for data-structure placement (:mod:`repro.gpu.placement`)."""

from __future__ import annotations

import pytest

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import TESLA_C2050
from repro.gpu.memory import FermiCacheConfig, MemoryHierarchy, MemorySpace
from repro.gpu.placement import DataPlacement, PlacementError, STRUCTURE_NAMES


class TestConstruction:
    def test_default_is_all_global(self):
        placement = DataPlacement.all_global()
        for name in STRUCTURE_NAMES:
            assert placement.space_of(name) is MemorySpace.GLOBAL
        assert placement.cache_config is FermiCacheConfig.PREFER_L1

    def test_shared_ptm_jm(self):
        placement = DataPlacement.shared_ptm_jm()
        assert placement.space_of("PTM") is MemorySpace.SHARED
        assert placement.space_of("JM") is MemorySpace.SHARED
        assert placement.space_of("LM") is MemorySpace.GLOBAL
        assert placement.cache_config is FermiCacheConfig.PREFER_SHARED

    def test_rejects_unknown_structure(self):
        with pytest.raises(PlacementError):
            DataPlacement(assignment={"XYZ": MemorySpace.SHARED})

    def test_rejects_bad_element_bytes(self):
        with pytest.raises(PlacementError):
            DataPlacement(element_bytes={"PTM": 0})
        with pytest.raises(PlacementError):
            DataPlacement(element_bytes={"XYZ": 1})

    def test_space_of_unknown_structure(self):
        with pytest.raises(PlacementError):
            DataPlacement.all_global().space_of("XYZ")


class TestFootprints:
    def test_paper_footprints_for_200x20(self):
        """JM ~38 KB, LM ~38 KB, PTM ~4 KB as stated in Section IV-B."""
        placement = DataPlacement.shared_ptm_jm()
        complexity = DataStructureComplexity(n=200, m=20)
        footprints = placement.structure_bytes(complexity)
        assert footprints["JM"] == 38000
        assert footprints["LM"] == 38000
        assert footprints["PTM"] == 4000

    def test_shared_bytes_per_block(self):
        placement = DataPlacement.shared_ptm_jm()
        complexity = DataStructureComplexity(n=200, m=20)
        assert placement.shared_bytes_per_block(complexity) == 42000

    def test_all_global_needs_no_shared_memory(self):
        placement = DataPlacement.all_global()
        complexity = DataStructureComplexity(n=200, m=20)
        assert placement.shared_bytes_per_block(complexity) == 0


class TestValidation:
    def test_shared_ptm_jm_fits_up_to_200_jobs(self):
        placement = DataPlacement.shared_ptm_jm()
        hierarchy = MemoryHierarchy(TESLA_C2050, placement.cache_config)
        for n in (20, 50, 100, 200):
            assert placement.fits(DataStructureComplexity(n=n, m=20), hierarchy)

    def test_shared_everything_does_not_fit_for_200_jobs(self):
        placement = DataPlacement.shared_structures(["PTM", "JM", "LM"])
        hierarchy = MemoryHierarchy(TESLA_C2050, placement.cache_config)
        complexity = DataStructureComplexity(n=200, m=20)
        assert not placement.fits(complexity, hierarchy)
        with pytest.raises(PlacementError):
            placement.validate(complexity, hierarchy)

    def test_validate_checks_global_capacity(self):
        placement = DataPlacement.all_global()
        tiny_device = TESLA_C2050.with_shared_memory(48 * 1024)
        hierarchy = MemoryHierarchy(tiny_device)
        complexity = DataStructureComplexity(n=200, m=20)
        # normal device: fine
        placement.validate(complexity, hierarchy)


class TestRecommendation:
    def test_recommended_is_shared_ptm_jm_for_paper_instances(self):
        """The paper's recommendation should be selected whenever it fits."""
        for n in (20, 50, 100, 200):
            placement = DataPlacement.recommended(DataStructureComplexity(n=n, m=20), TESLA_C2050)
            assert placement.name == "shared-PTM-JM"

    def test_recommended_degrades_for_huge_instances(self):
        placement = DataPlacement.recommended(DataStructureComplexity(n=500, m=20), TESLA_C2050)
        # PTM+JM would need 500*190 + 500*20 = 105 KB: does not fit; JM alone
        # does not fit either (95 KB), so the fallback must avoid them.
        assert placement.name in ("shared-PTM", "all-global")

    def test_describe_rows(self):
        placement = DataPlacement.shared_ptm_jm()
        rows = placement.describe(DataStructureComplexity(n=20, m=20))
        assert [row["structure"] for row in rows] == list(STRUCTURE_NAMES)
        by_name = {row["structure"]: row for row in rows}
        assert by_name["PTM"]["space"] == "shared"
        assert by_name["LM"]["space"] == "global"
