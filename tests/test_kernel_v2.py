"""Property-based equivalence of kernel v2 against the reference kernels.

Kernel v2 (:func:`repro.flowshop.bounds.lower_bound_batch_v2`) must be
*bit-identical* to both the scalar ``lower_bound`` and the v1
``lower_bound_batch`` on every input — that is the contract that lets the
engines switch kernels without changing the explored tree.  These tests
drive all three implementations (and both internal v2 strategies) over
randomly generated instances and pools, including every edge case the
kernel special-cases: ``m = 1`` (no couples), ``m = 2`` (a single couple),
empty prefixes (root nodes), complete schedules and empty pools.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowshop import FlowShopInstance
from repro.flowshop.bounds import (
    BATCH_KERNELS,
    LowerBoundData,
    get_batch_kernel,
    lower_bound,
    lower_bound_batch,
    lower_bound_batch_v2,
)

V2_STRATEGIES = ("gemm", "scan")


def instances(min_jobs=1, max_jobs=7, min_machines=1, max_machines=5, max_pt=99):
    return st.builds(
        lambda n, m, seed: FlowShopInstance(
            np.random.default_rng(seed).integers(1, max_pt, size=(n, m)),
            name=f"hyp_{n}x{m}_{seed}",
        ),
        st.integers(min_jobs, max_jobs),
        st.integers(min_machines, max_machines),
        st.integers(0, 10_000),
    )


def random_pool(instance, data, batch, seed, force_edges=True):
    """A pool of random partial schedules (masks + exact release times)."""
    rng = np.random.default_rng(seed)
    mask = np.zeros((batch, instance.n_jobs), dtype=bool)
    release = np.zeros((batch, instance.n_machines), dtype=np.int64)
    prefixes = []
    for i in range(batch):
        if force_edges and i == 0:
            depth = 0  # empty prefix (root node)
        elif force_edges and i == 1 and batch > 1:
            depth = instance.n_jobs  # complete schedule
        else:
            depth = int(rng.integers(0, instance.n_jobs + 1))
        prefix = [int(j) for j in rng.permutation(instance.n_jobs)[:depth]]
        prefixes.append(prefix)
        mask[i, prefix] = True
        release[i] = data.machine_release_times(prefix)
    return mask, release, prefixes


class TestKernelV2Equivalence:
    @given(
        instances(),
        st.integers(1, 24),
        st.integers(0, 10_000),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_v2_bit_identical_to_scalar_and_v1(self, instance, batch, seed, one_mach):
        data = LowerBoundData(instance)
        mask, release, prefixes = random_pool(instance, data, batch, seed)
        scalar = np.array(
            [
                lower_bound(data, p, release=rel, include_one_machine=one_mach)
                for p, rel in zip(prefixes, release)
            ],
            dtype=np.int64,
        )
        v1 = lower_bound_batch(data, mask, release, include_one_machine=one_mach)
        assert np.array_equal(v1, scalar)
        for strategy in (None, *V2_STRATEGIES):
            v2 = lower_bound_batch_v2(
                data, mask, release, include_one_machine=one_mach, strategy=strategy
            )
            assert np.array_equal(v2, scalar), f"strategy={strategy}"

    @given(instances(min_machines=1, max_machines=1), st.integers(1, 12), st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_single_machine_instances(self, instance, batch, seed):
        data = LowerBoundData(instance)
        mask, release, prefixes = random_pool(instance, data, batch, seed)
        expected = np.array([lower_bound(data, p) for p in prefixes], dtype=np.int64)
        assert np.array_equal(lower_bound_batch_v2(data, mask, release), expected)

    @given(instances(min_machines=2, max_machines=2), st.integers(1, 12), st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_two_machine_instances(self, instance, batch, seed):
        data = LowerBoundData(instance)
        mask, release, prefixes = random_pool(instance, data, batch, seed)
        expected = np.array([lower_bound(data, p) for p in prefixes], dtype=np.int64)
        for strategy in V2_STRATEGIES:
            out = lower_bound_batch_v2(data, mask, release, strategy=strategy)
            assert np.array_equal(out, expected), f"strategy={strategy}"

    @given(instances(max_pt=10**6), st.integers(1, 8), st.integers(0, 999))
    @settings(max_examples=10, deadline=None)
    def test_large_processing_times_select_wider_dtypes(self, instance, batch, seed):
        """Values beyond the float32 / int16 guards still match exactly."""
        data = LowerBoundData(instance)
        mask, release, prefixes = random_pool(instance, data, batch, seed)
        expected = np.array([lower_bound(data, p) for p in prefixes], dtype=np.int64)
        for strategy in V2_STRATEGIES:
            out = lower_bound_batch_v2(data, mask, release, strategy=strategy)
            assert np.array_equal(out, expected), f"strategy={strategy}"


class TestKernelV2Edges:
    def test_empty_pool(self):
        instance = FlowShopInstance(np.full((4, 3), 7), name="edge")
        data = LowerBoundData(instance)
        out = lower_bound_batch_v2(
            data, np.zeros((0, 4), dtype=bool), np.zeros((0, 3), dtype=np.int64)
        )
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_pool_of_only_complete_schedules(self):
        rng = np.random.default_rng(5)
        instance = FlowShopInstance(rng.integers(1, 50, size=(5, 4)), name="edge")
        data = LowerBoundData(instance)
        orders = [list(rng.permutation(5)) for _ in range(6)]
        mask = np.ones((6, 5), dtype=bool)
        release = np.stack([data.machine_release_times(o) for o in orders])
        expected = release[:, -1]
        for strategy in V2_STRATEGIES:
            out = lower_bound_batch_v2(data, mask, release, strategy=strategy)
            assert np.array_equal(out, expected)

    def test_unknown_strategy_rejected(self):
        instance = FlowShopInstance(np.full((3, 3), 2), name="edge")
        data = LowerBoundData(instance)
        with pytest.raises(ValueError):
            lower_bound_batch_v2(
                data,
                np.zeros((1, 3), dtype=bool),
                np.zeros((1, 3), dtype=np.int64),
                strategy="v3",
            )

    def test_kernel_registry(self):
        assert set(BATCH_KERNELS) == {"v1", "v2"}
        assert get_batch_kernel("v1") is lower_bound_batch
        assert get_batch_kernel("v2") is lower_bound_batch_v2
        with pytest.raises(ValueError):
            get_batch_kernel("v0")

    def test_scan_forced_on_single_job_instance(self):
        instance = FlowShopInstance(np.array([[3, 4, 5]]), name="edge-1job")
        data = LowerBoundData(instance)
        mask = np.array([[False], [True]])
        release = np.stack([np.zeros(3, dtype=np.int64), data.machine_release_times([0])])
        expected = lower_bound_batch(data, mask, release)
        for strategy in V2_STRATEGIES:
            assert np.array_equal(
                lower_bound_batch_v2(data, mask, release, strategy=strategy), expected
            )
