"""Tests for the local-search upper-bound improvement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb import brute_force_optimum
from repro.flowshop import (
    FlowShopInstance,
    improved_upper_bound,
    insertion_neighbourhood_improve,
    iterated_descent,
    makespan,
    neh_heuristic,
    random_instance,
    swap_neighbourhood_improve,
)


class TestNeighbourhoods:
    def test_insertion_move_never_worsens(self, medium_instance):
        order, value, improved = insertion_neighbourhood_improve(medium_instance)
        assert value <= neh_heuristic(medium_instance).makespan
        assert makespan(medium_instance, order) == value

    def test_swap_move_never_worsens(self, medium_instance):
        order, value, _ = swap_neighbourhood_improve(medium_instance)
        assert value <= neh_heuristic(medium_instance).makespan
        assert makespan(medium_instance, order) == value

    def test_moves_return_permutations(self, medium_instance):
        for move in (insertion_neighbourhood_improve, swap_neighbourhood_improve):
            order, _, _ = move(medium_instance)
            assert sorted(order) == list(range(medium_instance.n_jobs))

    def test_rejects_bad_order(self, small_instance):
        with pytest.raises(ValueError):
            insertion_neighbourhood_improve(small_instance, [0, 0, 1, 2, 3, 4])


class TestIteratedDescent:
    def test_descent_is_at_least_as_good_as_neh(self, medium_instance):
        descended = iterated_descent(medium_instance)
        assert descended.makespan <= neh_heuristic(medium_instance).makespan
        assert descended.is_feasible()

    def test_descent_never_below_optimum(self):
        for seed in range(4):
            inst = random_instance(7, 4, seed=seed)
            _, optimum = brute_force_optimum(inst)
            assert iterated_descent(inst).makespan >= optimum

    def test_descent_reaches_local_optimum(self, small_instance):
        schedule = iterated_descent(small_instance)
        # neither neighbourhood can improve the returned schedule
        _, _, improved_a = insertion_neighbourhood_improve(small_instance, schedule.order)
        _, _, improved_b = swap_neighbourhood_improve(small_instance, schedule.order)
        assert not improved_a and not improved_b

    def test_move_budget_respected(self, medium_instance):
        schedule = iterated_descent(medium_instance, max_moves=0)
        assert schedule.makespan == neh_heuristic(medium_instance).makespan

    def test_rejects_negative_budget(self, small_instance):
        with pytest.raises(ValueError):
            iterated_descent(small_instance, max_moves=-1)

    @given(st.integers(0, 500), st.integers(3, 7), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_improved_upper_bound_is_valid(self, seed, n, m):
        rng = np.random.default_rng(seed)
        inst = FlowShopInstance(rng.integers(1, 60, size=(n, m)))
        ub = improved_upper_bound(inst)
        assert inst.trivial_lower_bound() <= ub <= inst.trivial_upper_bound()
        assert ub <= neh_heuristic(inst).makespan


class TestBnbIntegration:
    def test_better_seed_prunes_at_least_as_well(self):
        """Seeding the B&B with the descended upper bound never explores more
        nodes than seeding with plain NEH."""
        from repro.bb import SequentialBranchAndBound

        inst = random_instance(9, 5, seed=12)
        # +1 keeps the seed value reachable even when the heuristic is optimal
        neh_seeded = SequentialBranchAndBound(
            inst, initial_upper_bound=neh_heuristic(inst).makespan + 1
        ).solve()
        ls_seeded = SequentialBranchAndBound(
            inst, initial_upper_bound=improved_upper_bound(inst) + 1
        ).solve()
        assert ls_seeded.best_makespan == neh_seeded.best_makespan
        assert ls_seeded.stats.nodes_bounded <= neh_seeded.stats.nodes_bounded
