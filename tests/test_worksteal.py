"""Tests for the work-stealing, shared-incumbent parallel engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb import (
    MulticoreBranchAndBound,
    SequentialBranchAndBound,
    SharedIncumbent,
    WorkStealingBranchAndBound,
    brute_force_optimum,
)
from repro.bb.worksteal import frontier_prefixes
from repro.flowshop import FlowShopInstance, random_instance


class TestSharedIncumbent:
    def test_initial_value(self):
        incumbent = SharedIncumbent(100.0)
        assert incumbent.get() == 100.0

    def test_update_only_tightens(self):
        incumbent = SharedIncumbent(100.0)
        assert incumbent.try_update(90)
        assert incumbent.get() == 90.0
        assert not incumbent.try_update(90)  # ties lose the CAS
        assert not incumbent.try_update(95)
        assert incumbent.get() == 90.0

    def test_concurrent_updates_keep_minimum(self):
        import threading

        incumbent = SharedIncumbent(1000.0)
        values = list(range(100, 200))

        def hammer(chunk):
            for value in chunk:
                incumbent.try_update(value)

        threads = [
            threading.Thread(target=hammer, args=(values[i::4],)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert incumbent.get() == 100.0


class TestFrontier:
    def test_depth_two_is_oversubscribed(self):
        prefixes = frontier_prefixes(6, 2)
        assert len(prefixes) == 6 * 5
        assert all(len(p) == 2 and p[0] != p[1] for p in prefixes)

    def test_depth_zero_is_root(self):
        assert frontier_prefixes(4, 0) == [()]


class TestValidation:
    def test_rejects_unknown_backend(self, small_instance):
        with pytest.raises(ValueError):
            WorkStealingBranchAndBound(small_instance, backend="gpu")

    def test_rejects_bad_depth(self, small_instance):
        with pytest.raises(ValueError):
            WorkStealingBranchAndBound(small_instance, decomposition_depth=0)

    def test_rejects_bad_poll_interval(self, small_instance):
        with pytest.raises(ValueError):
            WorkStealingBranchAndBound(small_instance, poll_interval=0)

    def test_depth_clamped_to_jobs(self, tiny_instance):
        solver = WorkStealingBranchAndBound(
            tiny_instance, backend="serial", decomposition_depth=10
        )
        assert solver.decomposition_depth == tiny_instance.n_jobs
        assert solver.solve().proved_optimal


class TestExactness:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_matches_bruteforce(self, small_instance, backend, depth):
        _, optimum = brute_force_optimum(small_instance)
        result = WorkStealingBranchAndBound(
            small_instance, n_workers=2, backend=backend, decomposition_depth=depth
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_process_backend(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        result = WorkStealingBranchAndBound(
            small_instance, n_workers=2, backend="process", decomposition_depth=2
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_aggressive_polling(self, medium_instance):
        serial = SequentialBranchAndBound(medium_instance).solve()
        result = WorkStealingBranchAndBound(
            medium_instance, n_workers=4, backend="thread", poll_interval=1
        ).solve()
        assert result.best_makespan == serial.best_makespan

    def test_full_depth_decomposition(self, tiny_instance):
        # every chunk root is a complete schedule (leaf)
        _, optimum = brute_force_optimum(tiny_instance)
        result = WorkStealingBranchAndBound(
            tiny_instance, n_workers=2, backend="thread", decomposition_depth=3
        ).solve()
        assert result.best_makespan == optimum

    def test_optimal_initial_upper_bound_returns_bound(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        result = WorkStealingBranchAndBound(
            small_instance, n_workers=2, backend="thread", initial_upper_bound=optimum
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    @given(
        st.integers(2, 6),
        st.integers(2, 4),
        st.integers(0, 10_000),
        st.sampled_from(["serial", "thread"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_sequential_on_random_instances(self, n, m, seed, backend):
        instance = FlowShopInstance(
            np.random.default_rng(seed).integers(1, 99, size=(n, m)),
            name=f"hyp_ws_{n}x{m}_{seed}",
        )
        serial = SequentialBranchAndBound(instance).solve()
        result = WorkStealingBranchAndBound(
            instance, n_workers=2, backend=backend, decomposition_depth=2
        ).solve()
        assert result.best_makespan == serial.best_makespan
        assert result.proved_optimal


class TestBudgetsAndFailures:
    def test_time_budget_is_global_not_per_chunk(self):
        # 132 depth-2 chunks share ONE deadline; a per-chunk budget would
        # let the run take ~132x longer than requested
        import time

        instance = random_instance(12, 8, seed=5)
        start = time.perf_counter()
        result = WorkStealingBranchAndBound(
            instance, n_workers=2, backend="thread", max_time_s=0.05
        ).solve()
        wall = time.perf_counter() - start
        assert not result.proved_optimal
        assert result.best_makespan > 0  # the NEH incumbent is still reported
        assert wall < 5.0

    def test_truncated_run_with_infinite_bound_raises(self, medium_instance):
        # an infinite bound plus a budget that cuts every chunk before the
        # first leaf leaves nothing to report
        engine = WorkStealingBranchAndBound(
            medium_instance,
            n_workers=1,
            backend="serial",
            decomposition_depth=1,
            initial_upper_bound=float("inf"),
            max_nodes_per_task=1,
        )
        with pytest.raises(RuntimeError, match="without an incumbent"):
            engine.solve()

    def test_worker_thread_failure_propagates(self, small_instance, monkeypatch):
        import repro.bb.multicore as multicore_module

        class Boom:
            def __init__(self, *args, **kwargs):
                raise OSError("worker resources exhausted")

        monkeypatch.setattr(multicore_module, "_SubtreeSolver", Boom)
        engine = WorkStealingBranchAndBound(small_instance, n_workers=2, backend="thread")
        with pytest.raises(RuntimeError, match="worker thread"):
            engine.solve()


class TestRebalancing:
    """rebalance=True: budget-cut chunks re-enqueue their live remainder."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_tiny_node_budget_stays_exact(self, small_instance, backend):
        # Without rebalancing, max_nodes_per_task=5 truncates nearly every
        # chunk; with it the cuts become time-slices and the proof survives.
        _, optimum = brute_force_optimum(small_instance)
        engine = WorkStealingBranchAndBound(
            small_instance,
            n_workers=2,
            backend=backend,
            decomposition_depth=1,
            max_nodes_per_task=5,
            rebalance=True,
        )
        result = engine.solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal
        assert engine.rebalanced_chunks > 0

    def test_process_backend(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        engine = WorkStealingBranchAndBound(
            small_instance,
            n_workers=2,
            backend="process",
            decomposition_depth=1,
            max_nodes_per_task=10,
            rebalance=True,
        )
        result = engine.solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_object_layout(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        engine = WorkStealingBranchAndBound(
            small_instance,
            n_workers=2,
            backend="thread",
            decomposition_depth=1,
            max_nodes_per_task=5,
            layout="object",
            rebalance=True,
        )
        result = engine.solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal
        assert engine.rebalanced_chunks > 0

    def test_infinite_bound_completes_instead_of_raising(self, tiny_instance):
        # The twin of test_truncated_run_with_infinite_bound_raises: the
        # same starved configuration finds the optimum once remainders are
        # re-enqueued instead of dropped.
        _, optimum = brute_force_optimum(tiny_instance)
        result = WorkStealingBranchAndBound(
            tiny_instance,
            n_workers=1,
            backend="serial",
            decomposition_depth=1,
            initial_upper_bound=float("inf"),
            max_nodes_per_task=1,
            rebalance=True,
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_deadline_remains_a_hard_stop(self):
        import time

        instance = random_instance(12, 8, seed=5)
        start = time.perf_counter()
        result = WorkStealingBranchAndBound(
            instance,
            n_workers=2,
            backend="thread",
            max_time_s=0.05,
            max_nodes_per_task=50,
            rebalance=True,
        ).solve()
        wall = time.perf_counter() - start
        assert not result.proved_optimal
        assert wall < 5.0

    def test_best_first_chunks_survive_rebalancing(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        result = WorkStealingBranchAndBound(
            small_instance,
            n_workers=2,
            backend="thread",
            decomposition_depth=1,
            selection="best-first",
            max_nodes_per_task=5,
            rebalance=True,
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal


class TestWorkAvoidance:
    def test_fewer_nodes_than_static_split(self):
        """Acceptance: shared incumbent beats the static split at 4 workers."""
        instance = random_instance(10, 5, seed=1)  # NEH 734 vs optimum 707
        serial = SequentialBranchAndBound(instance).solve()
        static = MulticoreBranchAndBound(
            instance,
            n_workers=4,
            backend="thread",
            mode="static",
            decomposition_depth=2,
        ).solve()
        worksteal = MulticoreBranchAndBound(
            instance,
            n_workers=4,
            backend="thread",
            mode="worksteal",
            decomposition_depth=2,
        ).solve()
        assert static.best_makespan == serial.best_makespan
        assert worksteal.best_makespan == serial.best_makespan
        assert worksteal.proved_optimal
        assert worksteal.stats.nodes_bounded < static.stats.nodes_bounded

    def test_serial_backend_chains_the_incumbent(self, medium_instance):
        """Even one worker benefits: the bound flows between stolen chunks."""
        static = MulticoreBranchAndBound(
            medium_instance,
            n_workers=1,
            backend="serial",
            mode="static",
            decomposition_depth=2,
        ).solve()
        worksteal = MulticoreBranchAndBound(
            medium_instance,
            n_workers=1,
            backend="serial",
            mode="worksteal",
            decomposition_depth=2,
        ).solve()
        assert worksteal.best_makespan == static.best_makespan
        assert worksteal.stats.nodes_bounded <= static.stats.nodes_bounded


class TestFacade:
    def test_default_mode_is_worksteal(self, small_instance):
        solver = MulticoreBranchAndBound(small_instance)
        assert solver.mode == "worksteal"
        assert solver.decomposition_depth == 2

    def test_static_mode_defaults_to_depth_one(self, small_instance):
        solver = MulticoreBranchAndBound(small_instance, mode="static")
        assert solver.decomposition_depth == 1

    def test_rejects_unknown_mode(self, small_instance):
        with pytest.raises(ValueError):
            MulticoreBranchAndBound(small_instance, mode="magic")

    def test_worker_stats_are_merged(self, small_instance):
        result = MulticoreBranchAndBound(
            small_instance, n_workers=2, backend="thread"
        ).solve()
        assert result.stats.nodes_bounded > 0
        assert result.stats.time_total_s > 0
