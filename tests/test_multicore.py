"""Tests for the multi-core Branch-and-Bound baseline."""

from __future__ import annotations

import pytest

from repro.bb import MulticoreBranchAndBound, SequentialBranchAndBound, brute_force_optimum


class TestCorrectness:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_matches_bruteforce(self, small_instance, backend, depth):
        _, optimum = brute_force_optimum(small_instance)
        result = MulticoreBranchAndBound(
            small_instance, n_workers=2, backend=backend, decomposition_depth=depth
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_process_backend(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        result = MulticoreBranchAndBound(
            small_instance, n_workers=2, backend="process", decomposition_depth=1
        ).solve()
        assert result.best_makespan == optimum

    def test_matches_sequential_on_medium_instance(self, medium_instance):
        serial = SequentialBranchAndBound(medium_instance).solve()
        parallel = MulticoreBranchAndBound(
            medium_instance, n_workers=4, backend="thread", decomposition_depth=1
        ).solve()
        assert parallel.best_makespan == serial.best_makespan

    def test_selection_strategy_forwarded(self, small_instance):
        result = MulticoreBranchAndBound(
            small_instance, n_workers=1, backend="serial", selection="best-first"
        ).solve()
        _, optimum = brute_force_optimum(small_instance)
        assert result.best_makespan == optimum


class TestOptimalInitialBound:
    """Regression: an initial bound equal to the optimum used to raise
    ``RuntimeError("parallel search terminated without an incumbent")``."""

    @pytest.mark.parametrize("mode", ["static", "worksteal"])
    def test_returns_the_proven_bound(self, small_instance, mode):
        _, optimum = brute_force_optimum(small_instance)
        result = MulticoreBranchAndBound(
            small_instance,
            n_workers=2,
            backend="thread",
            mode=mode,
            initial_upper_bound=optimum,
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_overtight_bound_is_trusted(self, small_instance):
        # a bound below the optimum admits no improving schedule either;
        # the completed search returns the caller's bound unchanged
        _, optimum = brute_force_optimum(small_instance)
        result = MulticoreBranchAndBound(
            small_instance,
            n_workers=2,
            backend="thread",
            mode="static",
            initial_upper_bound=optimum - 1,
        ).solve()
        assert result.best_makespan == optimum - 1
        assert result.best_order == ()


class TestSubtreeEarlyReturns:
    """Regression: the leaf-root and pruned-root early returns left
    ``time_total_s`` / ``max_pool_size`` unset, under-reporting timings."""

    def test_leaf_root_records_timing(self, tiny_instance):
        from repro.bb.multicore import _SubtreeSolver

        solver = _SubtreeSolver(tiny_instance, prefix=(0, 1, 2), upper_bound=1e9)
        makespan, order, stats, completed = solver.run()
        assert completed and makespan is not None and order == (0, 1, 2)
        assert stats.time_total_s > 0
        assert stats.leaves_evaluated == 1

    def test_rejected_leaf_root_records_timing(self, tiny_instance):
        from repro.bb.multicore import _SubtreeSolver

        solver = _SubtreeSolver(tiny_instance, prefix=(0, 1, 2), upper_bound=1)
        makespan, order, stats, completed = solver.run()
        assert completed and makespan is None and order == ()
        assert stats.time_total_s > 0

    def test_pruned_root_records_timing(self, small_instance):
        from repro.bb.multicore import _SubtreeSolver

        solver = _SubtreeSolver(small_instance, prefix=(0,), upper_bound=1)
        makespan, order, stats, completed = solver.run()
        assert completed and makespan is None
        assert stats.nodes_pruned == 1
        assert stats.time_total_s > 0


class TestConfigurationValidation:
    def test_rejects_unknown_backend(self, small_instance):
        with pytest.raises(ValueError):
            MulticoreBranchAndBound(small_instance, backend="gpu")

    def test_rejects_bad_depth(self, small_instance):
        with pytest.raises(ValueError):
            MulticoreBranchAndBound(small_instance, decomposition_depth=0)

    def test_depth_clamped_to_jobs(self, tiny_instance):
        solver = MulticoreBranchAndBound(tiny_instance, backend="serial", decomposition_depth=10)
        assert solver.decomposition_depth == tiny_instance.n_jobs
        result = solver.solve()
        assert result.proved_optimal


class TestDecomposition:
    def test_frontier_size(self, small_instance):
        solver = MulticoreBranchAndBound(small_instance, decomposition_depth=2, backend="serial")
        prefixes = solver._frontier_prefixes()
        n = small_instance.n_jobs
        assert len(prefixes) == n * (n - 1)
        assert all(len(p) == 2 and p[0] != p[1] for p in prefixes)

    def test_stats_are_merged(self, small_instance):
        result = MulticoreBranchAndBound(
            small_instance, n_workers=2, backend="thread", decomposition_depth=1
        ).solve()
        assert result.stats.nodes_bounded > 0
        assert result.stats.time_total_s > 0

    def test_reference_serial_helper(self, small_instance):
        solver = MulticoreBranchAndBound(small_instance, backend="serial")
        reference = solver.reference_serial()
        assert reference.best_makespan == solver.solve().best_makespan
