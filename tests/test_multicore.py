"""Tests for the multi-core Branch-and-Bound baseline."""

from __future__ import annotations

import pytest

from repro.bb import MulticoreBranchAndBound, SequentialBranchAndBound, brute_force_optimum


class TestCorrectness:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_matches_bruteforce(self, small_instance, backend, depth):
        _, optimum = brute_force_optimum(small_instance)
        result = MulticoreBranchAndBound(
            small_instance, n_workers=2, backend=backend, decomposition_depth=depth
        ).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_process_backend(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        result = MulticoreBranchAndBound(
            small_instance, n_workers=2, backend="process", decomposition_depth=1
        ).solve()
        assert result.best_makespan == optimum

    def test_matches_sequential_on_medium_instance(self, medium_instance):
        serial = SequentialBranchAndBound(medium_instance).solve()
        parallel = MulticoreBranchAndBound(
            medium_instance, n_workers=4, backend="thread", decomposition_depth=1
        ).solve()
        assert parallel.best_makespan == serial.best_makespan

    def test_selection_strategy_forwarded(self, small_instance):
        result = MulticoreBranchAndBound(
            small_instance, n_workers=1, backend="serial", selection="best-first"
        ).solve()
        _, optimum = brute_force_optimum(small_instance)
        assert result.best_makespan == optimum


class TestConfigurationValidation:
    def test_rejects_unknown_backend(self, small_instance):
        with pytest.raises(ValueError):
            MulticoreBranchAndBound(small_instance, backend="gpu")

    def test_rejects_bad_depth(self, small_instance):
        with pytest.raises(ValueError):
            MulticoreBranchAndBound(small_instance, decomposition_depth=0)

    def test_depth_clamped_to_jobs(self, tiny_instance):
        solver = MulticoreBranchAndBound(tiny_instance, backend="serial", decomposition_depth=10)
        assert solver.decomposition_depth == tiny_instance.n_jobs
        result = solver.solve()
        assert result.proved_optimal


class TestDecomposition:
    def test_frontier_size(self, small_instance):
        solver = MulticoreBranchAndBound(small_instance, decomposition_depth=2, backend="serial")
        prefixes = solver._frontier_prefixes()
        n = small_instance.n_jobs
        assert len(prefixes) == n * (n - 1)
        assert all(len(p) == 2 and p[0] != p[1] for p in prefixes)

    def test_stats_are_merged(self, small_instance):
        result = MulticoreBranchAndBound(
            small_instance, n_workers=2, backend="thread", decomposition_depth=1
        ).solve()
        assert result.stats.nodes_bounded > 0
        assert result.stats.time_total_s > 0

    def test_reference_serial_helper(self, small_instance):
        solver = MulticoreBranchAndBound(small_instance, backend="serial")
        reference = solver.reference_serial()
        assert reference.best_makespan == solver.solve().best_makespan
