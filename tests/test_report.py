"""Tests for the experiment table rendering / comparison helpers."""

from __future__ import annotations

import pytest

from repro.experiments.report import ExperimentTable, compare_tables, format_table


@pytest.fixture()
def table() -> ExperimentTable:
    t = ExperimentTable(title="demo", columns=(10, 20))
    t.set((200, 20), 10, 40.0)
    t.set((200, 20), 20, 60.0)
    t.set((20, 20), 10, 30.0)
    t.set((20, 20), 20, 35.0)
    return t


class TestExperimentTable:
    def test_set_get(self, table):
        assert table.get((200, 20), 10) == 40.0
        with pytest.raises(KeyError):
            table.set((200, 20), 99, 1.0)

    def test_row_and_column_values(self, table):
        assert table.row_values((200, 20)) == [40.0, 60.0]
        assert table.column_values(10) == [40.0, 30.0]

    def test_average_row(self, table):
        table.add_average_row()
        assert table.rows["average"][10] == pytest.approx(35.0)
        assert table.rows["average"][20] == pytest.approx(47.5)

    def test_best_column(self, table):
        assert table.best_column((200, 20)) == 20

    def test_to_dict(self, table):
        payload = table.to_dict()
        assert payload["title"] == "demo"
        assert payload["rows"]["200x20"]["10"] == 40.0

    def test_format_contains_all_cells(self, table):
        text = format_table(table)
        assert "demo" in text
        assert "200x20" in text
        assert "60.00" in text

    def test_format_handles_missing_cells(self):
        t = ExperimentTable(title="gaps", columns=(1, 2))
        t.set("a", 1, 5.0)
        assert "-" in format_table(t)


class TestComparison:
    def test_relative_errors(self, table):
        reference = {(200, 20): {10: 50.0, 20: 60.0}}
        comparison = compare_tables(table, reference)
        assert len(comparison.cells) == 2
        assert comparison.mean_absolute_relative_error == pytest.approx((0.2 + 0.0) / 2)
        assert comparison.max_absolute_relative_error == pytest.approx(0.2)
        assert not comparison.within(0.1)
        assert comparison.within(0.25)

    def test_missing_rows_ignored(self, table):
        reference = {(999, 20): {10: 1.0}}
        comparison = compare_tables(table, reference)
        assert comparison.cells == []
        with pytest.raises(ValueError):
            _ = comparison.mean_absolute_relative_error

    def test_text_rendering(self, table):
        reference = {(200, 20): {10: 50.0}}
        text = table.compare(reference).to_text()
        assert "vs paper" in text
        assert "%" in text

    def test_summary(self, table):
        reference = {(200, 20): {10: 40.0}}
        summary = table.compare(reference).summary()
        assert summary["cells"] == 1
        assert summary["mean_abs_rel_error"] == pytest.approx(0.0)
