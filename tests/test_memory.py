"""Tests for the GPU memory hierarchy model."""

from __future__ import annotations

import pytest

from repro.gpu.device import TESLA_C2050
from repro.gpu.memory import FermiCacheConfig, MemoryHierarchy, MemorySpace, MemorySpec


class TestFermiCacheConfig:
    def test_splits_sum_to_64kb(self):
        for config in FermiCacheConfig:
            assert config.shared_bytes() + config.l1_bytes() == 64 * 1024

    def test_paper_scenarios(self):
        assert FermiCacheConfig.PREFER_SHARED.shared_bytes() == 48 * 1024
        assert FermiCacheConfig.PREFER_L1.shared_bytes() == 16 * 1024


class TestMemorySpec:
    def test_effective_latency_interpolates(self):
        spec = MemorySpec(MemorySpace.GLOBAL, 1024, latency_cycles=400, cached_latency_cycles=80)
        assert spec.effective_latency(0.0) == 400
        assert spec.effective_latency(1.0) == 80
        assert spec.effective_latency(0.5) == pytest.approx(240)

    def test_effective_latency_validates_rate(self):
        spec = MemorySpec(MemorySpace.SHARED, 1024, latency_cycles=30)
        with pytest.raises(ValueError):
            spec.effective_latency(1.5)

    def test_no_cache_means_flat_latency(self):
        spec = MemorySpec(MemorySpace.SHARED, 1024, latency_cycles=30)
        assert spec.effective_latency(0.9) == 30


class TestMemoryHierarchy:
    def test_shared_and_l1_follow_cache_config(self):
        shared = MemoryHierarchy(TESLA_C2050, FermiCacheConfig.PREFER_SHARED)
        l1 = MemoryHierarchy(TESLA_C2050, FermiCacheConfig.PREFER_L1)
        assert shared.shared_memory_per_sm == 48 * 1024
        assert shared.l1_cache_per_sm == 16 * 1024
        assert l1.shared_memory_per_sm == 16 * 1024
        assert l1.l1_cache_per_sm == 48 * 1024

    def test_latency_ordering(self):
        """Registers < shared < global; the ordering drives every placement decision."""
        hierarchy = MemoryHierarchy(TESLA_C2050)
        registers = hierarchy.access_cycles(MemorySpace.REGISTERS)
        shared = hierarchy.access_cycles(MemorySpace.SHARED)
        global_mem = hierarchy.spec(MemorySpace.GLOBAL).latency_cycles
        assert registers < shared < global_mem

    def test_global_capacity_is_device_memory(self):
        hierarchy = MemoryHierarchy(TESLA_C2050)
        assert hierarchy.spec(MemorySpace.GLOBAL).capacity_bytes == TESLA_C2050.global_memory_bytes

    def test_shared_is_per_block(self):
        hierarchy = MemoryHierarchy(TESLA_C2050)
        assert hierarchy.spec(MemorySpace.SHARED).per_block is True
        assert hierarchy.spec(MemorySpace.GLOBAL).per_block is False

    def test_bigger_l1_improves_hit_rate(self):
        prefer_l1 = MemoryHierarchy(TESLA_C2050, FermiCacheConfig.PREFER_L1)
        prefer_shared = MemoryHierarchy(TESLA_C2050, FermiCacheConfig.PREFER_SHARED)
        assert prefer_l1.global_hit_rate() >= prefer_shared.global_hit_rate()

    def test_latency_override(self):
        hierarchy = MemoryHierarchy(TESLA_C2050, latency_overrides={MemorySpace.SHARED: 5.0})
        assert hierarchy.spec(MemorySpace.SHARED).latency_cycles == 5.0

    def test_describe_lists_all_spaces(self):
        hierarchy = MemoryHierarchy(TESLA_C2050)
        description = hierarchy.describe()
        assert set(description) == {space.value for space in MemorySpace}
        for payload in description.values():
            assert "latency_cycles" in payload and "capacity_bytes" in payload
