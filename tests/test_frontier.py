"""Unit tests for the structure-of-arrays frontier (:mod:`repro.bb.frontier`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.frontier import (
    NO_BOUND,
    BlockFrontier,
    NodeBlock,
    Trail,
    bound_block,
    branch_block,
    branch_row,
    eliminate_block,
    make_frontier,
    root_block,
    seed_block,
)
from repro.bb.node import root_node
from repro.bb.operators import encode_pool
from repro.flowshop import FlowShopInstance
from repro.flowshop.bounds import LowerBoundData, lower_bound_batch


class TestTrail:
    def test_root_prefix_is_empty(self):
        trail = Trail()
        root = trail.append_root()
        assert trail.prefix(root) == ()

    def test_prefix_walks_ancestry(self):
        trail = Trail()
        root = trail.append_root()
        a = trail.append(root, 3)
        b = trail.append(a, 1)
        c = trail.append(b, 4)
        assert trail.prefix(c) == (3, 1, 4)
        assert trail.prefix(b) == (3, 1)

    def test_append_batch_scalar_parent(self):
        trail = Trail(capacity=1)  # force growth
        root = trail.append_root()
        ids = trail.append_batch(root, np.array([2, 0, 1]))
        assert [trail.prefix(i) for i in ids] == [(2,), (0,), (1,)]
        assert np.array_equal(trail.jobs_of(ids), [2, 0, 1])


class TestRootAndSeed:
    def test_root_block(self, small_instance):
        trail = Trail()
        root = root_block(small_instance, trail)
        assert len(root) == 1
        assert not root.scheduled_mask.any()
        assert (root.release == 0).all()
        assert root.lower_bound[0] == NO_BOUND
        assert root.depth[0] == 0
        assert root.order_index[0] == 0
        assert root.prefix(0) == ()

    def test_seed_block_matches_node_chain(self, small_instance):
        prefix = (2, 0, 4)
        trail = Trail()
        seed = seed_block(small_instance, prefix, trail)
        node = root_node(small_instance)
        for job in prefix:
            node = node.child(job, small_instance.processing_times)
        assert np.array_equal(seed.release[0], node.release)
        assert seed.prefix(0) == prefix
        assert seed.depth[0] == len(prefix)
        assert seed.order_index[0] == node.order_index

    def test_seed_block_rejects_duplicates(self, small_instance):
        with pytest.raises(ValueError):
            seed_block(small_instance, (1, 1), Trail())


class TestBranchBlock:
    def test_children_match_object_layout(self, medium_instance):
        trail = Trail()
        root = root_block(medium_instance, trail)
        children = branch_block(root, medium_instance.processing_times, 1)
        object_children = root_node(medium_instance).children(medium_instance.processing_times)
        assert len(children) == len(object_children)
        for i, node in enumerate(object_children):
            assert np.array_equal(children.release[i], node.release)
            assert children.prefix(i) == node.prefix
            assert children.depth[i] == node.depth
            assert children.order_index[i] == node.order_index

    def test_branch_row_matches_branch_block(self, medium_instance):
        trail_a, trail_b = Trail(), Trail()
        root_a = root_block(medium_instance, trail_a)
        root_b = root_block(medium_instance, trail_b)
        via_block = branch_block(root_a, medium_instance.processing_times, 1)
        via_row = branch_row(
            root_b.scheduled_mask[0],
            root_b.release[0],
            0,
            int(root_b.trail_id[0]),
            trail_b,
            medium_instance.processing_times,
            1,
        )
        assert np.array_equal(via_block.release, via_row.release)
        assert np.array_equal(via_block.scheduled_mask, via_row.scheduled_mask)
        assert np.array_equal(via_block.order_index, via_row.order_index)

    def test_empty_block_yields_no_children(self, small_instance):
        trail = Trail()
        empty = NodeBlock.empty(small_instance.n_jobs, small_instance.n_machines, trail)
        children = branch_block(empty, small_instance.processing_times, 5)
        assert len(children) == 0

    def test_all_leaf_batch_yields_no_children(self, tiny_instance):
        # a block of complete schedules has nothing to branch
        trail = Trail()
        block = root_block(tiny_instance, trail)
        order = 1
        for _ in range(tiny_instance.n_jobs):
            block = branch_block(block, tiny_instance.processing_times, order)
            order += len(block)
        assert block.is_leaf_mask.all()
        assert (block.lower_bound == block.makespans).all()  # leaves pre-bounded
        assert len(branch_block(block, tiny_instance.processing_times, order)) == 0


class TestBoundBlock:
    def _deep_block(self, instance, data, rng):
        trail = Trail()
        block = root_block(instance, trail)
        bound_block(data, block)
        order = 1
        depth = int(rng.integers(0, instance.n_jobs - 1))
        for _ in range(depth):
            block = branch_block(block, instance.processing_times, order)
            order += len(block)
            rows = rng.choice(len(block), size=min(3, len(block)), replace=False)
            block = block.take(np.sort(rows))
        return block, order

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_to_v1_kernel(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 9))
        m = int(rng.integers(1, 6))
        instance = FlowShopInstance(rng.integers(1, 60, size=(n, m)))
        data = LowerBoundData(instance)
        block, order = self._deep_block(instance, data, rng)
        children = branch_block(block, instance.processing_times, order)
        if not len(children):
            return
        for include in (False, True):
            probe = children.take(np.arange(len(children)))
            got = bound_block(data, probe, include_one_machine=include)
            want = lower_bound_batch(
                data, probe.scheduled_mask, probe.release, include_one_machine=include
            )
            assert np.array_equal(got, want)
            assert np.array_equal(probe.lower_bound, want)

    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_sibling_path_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 10))
        m = int(rng.integers(2, 6))
        instance = FlowShopInstance(rng.integers(1, 60, size=(n, m)))
        data = LowerBoundData(instance)
        trail = Trail()
        block = root_block(instance, trail)
        order = 1
        depth = int(rng.integers(0, n - 1))
        for _ in range(depth):
            children = branch_block(block, instance.processing_times, order)
            order += len(children)
            block = children.take(np.array([rng.integers(len(children))]))
        siblings = branch_block(block, instance.processing_times, order)
        got = bound_block(data, siblings, siblings=True)
        want = lower_bound_batch(data, siblings.scheduled_mask, siblings.release)
        assert np.array_equal(got, want)

    def test_v1_kernel_path(self, medium_instance):
        data = LowerBoundData(medium_instance)
        trail = Trail()
        children = branch_block(
            root_block(medium_instance, trail), medium_instance.processing_times, 1
        )
        got = bound_block(data, children, kernel="v1")
        want = lower_bound_batch(data, children.scheduled_mask, children.release)
        assert np.array_equal(got, want)

    def test_empty_block(self, small_instance):
        data = LowerBoundData(small_instance)
        empty = NodeBlock.empty(small_instance.n_jobs, small_instance.n_machines, Trail())
        assert bound_block(data, empty).shape == (0,)

    def test_matches_encode_pool_layout(self, medium_instance):
        # the block's arrays ARE what encode_pool used to produce
        data = LowerBoundData(medium_instance)
        trail = Trail()
        children = branch_block(
            root_block(medium_instance, trail), medium_instance.processing_times, 1
        )
        nodes = root_node(medium_instance).children(medium_instance.processing_times)
        mask, release = encode_pool(nodes, data.n_jobs, data.n_machines)
        assert np.array_equal(children.scheduled_mask, mask)
        assert np.array_equal(children.release, release)


class TestEliminateBlock:
    def _bounded_children(self, instance):
        data = LowerBoundData(instance)
        trail = Trail()
        children = branch_block(root_block(instance, trail), instance.processing_times, 1)
        bound_block(data, children)
        return children

    def test_strict_threshold(self, medium_instance):
        children = self._bounded_children(medium_instance)
        threshold = float(np.median(children.lower_bound))
        survivors, pruned = eliminate_block(children, threshold)
        assert pruned == int((children.lower_bound >= threshold).sum())
        assert (survivors.lower_bound < threshold).all()
        assert len(survivors) + pruned == len(children)

    def test_empty_block(self, small_instance):
        empty = NodeBlock.empty(small_instance.n_jobs, small_instance.n_machines, Trail())
        survivors, pruned = eliminate_block(empty, 100.0)
        assert len(survivors) == 0 and pruned == 0

    def test_all_pruned_batch(self, medium_instance):
        children = self._bounded_children(medium_instance)
        survivors, pruned = eliminate_block(children, 0.0)
        assert pruned == len(children)
        assert len(survivors) == 0

    def test_unbounded_rejected(self, medium_instance):
        trail = Trail()
        children = branch_block(
            root_block(medium_instance, trail), medium_instance.processing_times, 1
        )
        with pytest.raises(ValueError):
            eliminate_block(children, 1e9)


def _random_block(rng, n_jobs, n_machines, trail, count, order_start=0):
    """A block of synthetic bounded nodes (pool-behaviour tests only)."""
    mask = rng.random((count, n_jobs)) < 0.4
    return NodeBlock(
        scheduled_mask=mask,
        release=rng.integers(0, 50, size=(count, n_machines)).astype(np.int64),
        lower_bound=rng.integers(0, 12, size=count).astype(np.int64),
        depth=mask.sum(axis=1).astype(np.int64),
        order_index=np.arange(order_start, order_start + count, dtype=np.int64),
        trail_id=np.zeros(count, dtype=np.int64),
        trail=trail,
    )


class TestBlockFrontier:
    @pytest.mark.parametrize("strategy", ["best-first", "depth-first", "fifo"])
    def test_pop_order_matches_reference(self, strategy):
        rng = np.random.default_rng(7)
        trail = Trail()
        trail.append_root()
        frontier = BlockFrontier(6, 3, trail, strategy=strategy)
        keys = []
        order_start = 0
        for _ in range(4):
            block = _random_block(rng, 6, 3, trail, 15, order_start)
            order_start += 15
            frontier.push_block(block)
            keys.extend(
                (int(block.lower_bound[i]), int(block.depth[i]), int(block.order_index[i]))
                for i in range(len(block))
            )
        if strategy == "best-first":
            expected = sorted(keys)
        elif strategy == "depth-first":
            expected = sorted(keys, key=lambda k: -k[2])
        else:
            expected = sorted(keys, key=lambda k: k[2])
        popped = []
        while frontier:
            block, _ = frontier.pop_batch(1)
            popped.append(
                (int(block.lower_bound[0]), int(block.depth[0]), int(block.order_index[0]))
            )
        assert popped == expected

    def test_pop_batch_semantics_match_select_batch(self):
        # lazy pruning parity: stale nodes met while filling the batch are
        # dropped; draining the pool drops every remaining stale node
        rng = np.random.default_rng(3)
        trail = Trail()
        trail.append_root()
        frontier = BlockFrontier(6, 3, trail)
        block = _random_block(rng, 6, 3, trail, 40)
        frontier.push_block(block)
        threshold = 6.0
        n_fresh = int((block.lower_bound < threshold).sum())
        batch, pruned = frontier.pop_batch(10, upper_bound=threshold)
        assert len(batch) == min(10, n_fresh)
        assert (batch.lower_bound < threshold).all()
        if n_fresh >= 10:
            assert pruned == 0
        remaining_fresh = n_fresh - len(batch)
        batch2, pruned2 = frontier.pop_batch(1000, upper_bound=threshold)
        assert len(batch2) == remaining_fresh
        assert len(frontier) == 0  # drained
        assert pruned + pruned2 == 40 - n_fresh

    def test_pop_min_tie_batch_pops_min_group(self):
        rng = np.random.default_rng(11)
        trail = Trail()
        trail.append_root()
        frontier = BlockFrontier(6, 3, trail)
        block = _random_block(rng, 6, 3, trail, 60)
        frontier.push_block(block)
        pairs = list(zip(block.lower_bound.tolist(), block.depth.tolist()))
        best = min(pairs)
        expected = sum(1 for p in pairs if p == best)
        batch = frontier.pop_min_tie_batch()
        assert batch is not None
        assert len(batch) == expected
        assert (batch.lower_bound == best[0]).all()
        assert (batch.depth == best[1]).all()
        # in pop (creation) order
        assert list(batch.order_index) == sorted(batch.order_index)

    def test_prune_to_counts_and_preserves_survivors(self):
        rng = np.random.default_rng(5)
        trail = Trail()
        trail.append_root()
        frontier = BlockFrontier(6, 3, trail)
        block = _random_block(rng, 6, 3, trail, 50)
        frontier.push_block(block)
        removed = frontier.prune_to(5.0)
        assert removed == int((block.lower_bound >= 5.0).sum())
        assert len(frontier) == 50 - removed
        while frontier:
            popped, _ = frontier.pop_batch(1)
            assert popped.lower_bound[0] < 5.0

    def test_prune_to_empty_frontier(self, small_instance):
        frontier = make_frontier(small_instance, Trail())
        assert frontier.prune_to(10.0) == 0

    def test_pop_from_empty(self, small_instance):
        frontier = make_frontier(small_instance, Trail())
        block, pruned = frontier.pop_batch(4)
        assert len(block) == 0 and pruned == 0
        with pytest.raises(IndexError):
            frontier.peek_best()

    def test_max_size_seen(self):
        rng = np.random.default_rng(2)
        trail = Trail()
        trail.append_root()
        frontier = BlockFrontier(6, 3, trail, capacity=4)  # force growth
        frontier.push_block(_random_block(rng, 6, 3, trail, 30))
        frontier.pop_batch(25)
        assert frontier.max_size_seen == 30
        assert len(frontier) == 5

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            BlockFrontier(4, 2, Trail(), strategy="nope")


class TestExecutorBlock:
    def test_evaluate_block_writes_bounds(self, medium_instance):
        from repro.gpu.executor import GpuExecutor

        data = LowerBoundData(medium_instance)
        executor = GpuExecutor(data)
        trail = Trail()
        children = branch_block(
            root_block(medium_instance, trail), medium_instance.processing_times, 1
        )
        result = executor.evaluate_block(children)
        want = lower_bound_batch(data, children.scheduled_mask, children.release)
        assert np.array_equal(result.bounds, want)
        assert np.array_equal(children.lower_bound, want)
