"""Snapshot container: round-trip fidelity, corruption/truncation rejection."""

import json
import struct

import numpy as np
import pytest

from repro.bb.frontier import BlockFrontier
from repro.bb.pool import NodePool
from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.snapshot import (
    MAGIC,
    SNAPSHOT_FORMAT_VERSION,
    CheckpointPolicy,
    SnapshotCorrupt,
    SnapshotError,
    SnapshotVersionError,
    instance_fingerprint,
    load_header,
    load_snapshot,
    loads_header,
    loads_snapshot,
    save_snapshot,
)


def _interrupted_blob(instance, layout, tmp_path, selection="best-first", max_nodes=12):
    """Run a budget-cut solve so the engine writes a real mid-search snapshot."""
    path = tmp_path / f"{layout}.rpbb"
    engine = SequentialBranchAndBound(
        instance,
        selection=selection,
        layout=layout,
        max_nodes=max_nodes,
        checkpoint_path=path,
    )
    result = engine.solve()
    assert not result.proved_optimal, "budget too large for this fixture"
    assert engine.checkpoints_written == 1
    return path.read_bytes(), result


def _rebuild_with_header(blob, mutate):
    """Re-serialize ``blob`` after applying ``mutate`` to its JSON header."""
    (header_len,) = struct.unpack(">I", blob[4:8])
    header = json.loads(blob[8 : 8 + header_len])
    payload = blob[8 + header_len :]
    mutate(header)
    header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
    return MAGIC + struct.pack(">I", len(header_bytes)) + header_bytes + payload


# --------------------------------------------------------------------- #
#  round trip
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("layout", ["block", "object"])
def test_roundtrip_restores_full_state(layout, small_instance, tmp_path):
    blob, result = _interrupted_blob(small_instance, layout, tmp_path)
    snapshot = loads_snapshot(blob)

    assert snapshot.layout == layout
    assert snapshot.instance.n_jobs == small_instance.n_jobs
    assert np.array_equal(
        snapshot.instance.processing_times, small_instance.processing_times
    )
    assert snapshot.upper_bound == result.best_makespan
    assert snapshot.best_order == result.best_order
    for name in ("nodes_bounded", "nodes_branched", "nodes_pruned", "leaves_evaluated"):
        assert getattr(snapshot.stats, name) == getattr(result.stats, name)
    assert len(snapshot.frontier) > 0
    if layout == "block":
        assert isinstance(snapshot.frontier, BlockFrontier)
        assert snapshot.trail is not None
        assert snapshot.next_order > 0
    else:
        assert isinstance(snapshot.frontier, NodePool)
        assert snapshot.trail is None


def test_roundtrip_block_columns_exact(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path)
    first = loads_snapshot(blob)
    second = loads_snapshot(blob)
    f1, f2 = first.frontier, second.frontier
    size = len(f1)
    assert size == len(f2)
    for column in ("_mask", "_release", "_lb", "_depth", "_order", "_tid"):
        assert np.array_equal(getattr(f1, column)[:size], getattr(f2, column)[:size])
    # packed selection keys are recomputed, not stored: they must agree too
    if f1._packed:
        assert np.array_equal(f1._key[:size], f2._key[:size])


def test_roundtrip_preserves_max_pending_cap(small_instance, tmp_path):
    path = tmp_path / "capped.rpbb"
    engine = SequentialBranchAndBound(
        small_instance,
        layout="block",
        max_frontier_nodes=8,
        max_nodes=12,
        checkpoint_path=path,
    )
    engine.solve()
    snapshot = load_snapshot(path)
    assert snapshot.frontier._cap == 8
    assert snapshot.engine["max_frontier_nodes"] == 8


def test_header_inventory(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path)
    header = loads_header(blob)
    assert header["format_version"] == SNAPSHOT_FORMAT_VERSION
    assert header["instance"]["fingerprint"] == instance_fingerprint(small_instance)
    assert header["engine"]["engine"] == "serial"
    assert set(header["payload"]) == {"sha256", "length", "format", "arrays"}
    assert header["payload"]["format"] == "raw"
    assert all(len(entry) == 3 for entry in header["payload"]["arrays"])


# --------------------------------------------------------------------- #
#  corruption / truncation / version rejection
# --------------------------------------------------------------------- #
def test_truncation_at_every_byte_is_rejected(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path, max_nodes=3)
    for k in range(len(blob)):
        with pytest.raises(SnapshotCorrupt):
            loads_snapshot(blob[:k])


def test_payload_bitflip_fails_checksum(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path)
    mangled = bytearray(blob)
    mangled[-1] ^= 0xFF
    with pytest.raises(SnapshotCorrupt, match="checksum"):
        loads_snapshot(bytes(mangled))


def test_bad_magic_rejected(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path)
    with pytest.raises(SnapshotCorrupt, match="magic"):
        loads_snapshot(b"XXXX" + blob[4:])


def test_unknown_version_rejected(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path)

    def bump(header):
        header["format_version"] = SNAPSHOT_FORMAT_VERSION + 1

    with pytest.raises(SnapshotVersionError):
        loads_header(_rebuild_with_header(blob, bump))


def test_instance_fingerprint_mismatch_rejected(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path)

    def tamper(header):
        header["instance"]["fingerprint"] = "0" * 64

    with pytest.raises(SnapshotCorrupt, match="fingerprint"):
        loads_snapshot(_rebuild_with_header(blob, tamper))


def test_missing_field_rejected(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "block", tmp_path)

    def drop(header):
        del header["frontier"]

    with pytest.raises(SnapshotCorrupt):
        loads_snapshot(_rebuild_with_header(blob, drop))


# --------------------------------------------------------------------- #
#  file wrappers
# --------------------------------------------------------------------- #
def test_save_is_atomic_and_leaves_no_temp_files(small_instance, tmp_path):
    blob, _ = _interrupted_blob(small_instance, "object", tmp_path)
    target = tmp_path / "nested" / "snap.rpbb"
    save_snapshot(target, blob)
    save_snapshot(target, blob)  # overwrite goes through os.replace too
    assert target.read_bytes() == blob
    assert [p.name for p in target.parent.iterdir()] == ["snap.rpbb"]
    assert load_header(target)["format_version"] == SNAPSHOT_FORMAT_VERSION


def test_load_missing_file_raises_snapshot_error(tmp_path):
    with pytest.raises(SnapshotError):
        load_snapshot(tmp_path / "absent.rpbb")


# --------------------------------------------------------------------- #
#  policy validation
# --------------------------------------------------------------------- #
def test_checkpoint_policy_validation():
    with pytest.raises(ValueError):
        CheckpointPolicy()
    with pytest.raises(ValueError):
        CheckpointPolicy(every_steps=0)
    with pytest.raises(ValueError):
        CheckpointPolicy(every_seconds=0.0)
    CheckpointPolicy(every_steps=1)
    CheckpointPolicy(every_seconds=0.5)
    CheckpointPolicy(every_steps=10, every_seconds=1.0)


def test_engine_rejects_interval_without_path(small_instance):
    with pytest.raises(ValueError, match="checkpoint_path"):
        SequentialBranchAndBound(small_instance, checkpoint_every=10)
