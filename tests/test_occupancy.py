"""Tests for the CUDA occupancy calculator."""

from __future__ import annotations

import pytest

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import TESLA_C2050
from repro.gpu.occupancy import OccupancyCalculator
from repro.gpu.placement import DataPlacement


@pytest.fixture()
def calc() -> OccupancyCalculator:
    return OccupancyCalculator(TESLA_C2050)


class TestPaperConfiguration:
    def test_registers_limit_to_32_warps(self, calc):
        """The paper: with 26 registers/thread and 256-thread blocks the
        register file limits the kernel to 32 active warps per SM."""
        result = calc.compute(256, registers_per_thread=26, shared_memory_per_block=0)
        assert result.active_warps_per_sm == 32
        assert result.active_blocks_per_sm == 4
        assert result.limiting_factor == "registers"
        assert result.occupancy == pytest.approx(32 / 48)

    def test_shared_memory_becomes_limiting_for_large_instances(self, calc):
        """With PTM+JM staged per block, 100x20 drops to 16 active warps."""
        placement = DataPlacement.shared_ptm_jm()
        for n, expected_warps in ((20, 32), (50, 32), (100, 16)):
            complexity = DataStructureComplexity(n=n, m=20)
            shared = placement.shared_bytes_per_block(complexity)
            result = calc.compute(256, 26, shared, shared_memory_available=48 * 1024)
            assert result.active_warps_per_sm == expected_warps, n

    def test_200x20_shared_placement_is_tight(self, calc):
        placement = DataPlacement.shared_ptm_jm()
        complexity = DataStructureComplexity(n=200, m=20)
        shared = placement.shared_bytes_per_block(complexity)
        result = calc.compute(256, 26, shared, shared_memory_available=48 * 1024)
        assert result.limiting_factor == "shared_memory"
        assert 0 < result.active_warps_per_sm <= 16

    def test_resident_threads(self, calc):
        result = calc.compute(256, 26, 0)
        assert result.resident_threads == 4 * 256 * 14


class TestLimits:
    def test_blocks_limit(self, calc):
        # tiny blocks with almost no resources: the 8-blocks/SM cap binds
        result = calc.compute(32, registers_per_thread=2, shared_memory_per_block=0)
        assert result.active_blocks_per_sm == 8
        assert result.limiting_factor == "blocks"

    def test_warps_limit(self, calc):
        # huge blocks: the warp cap (48) binds before anything else
        result = calc.compute(1024, registers_per_thread=2, shared_memory_per_block=0)
        assert result.active_blocks_per_sm == 1
        assert result.active_warps_per_sm == 32

    def test_zero_occupancy_when_shared_does_not_fit(self, calc):
        result = calc.compute(
            256, 26, shared_memory_per_block=64 * 1024, shared_memory_available=48 * 1024
        )
        assert result.active_blocks_per_sm == 0
        assert not result

    def test_register_allocation_granularity(self, calc):
        # 1 register/thread still allocates in 64-register warp chunks
        assert calc.registers_per_block(32, 1) == 64

    def test_shared_memory_granularity(self, calc):
        assert calc.shared_memory_allocation(1) == 128
        assert calc.shared_memory_allocation(0) == 0
        assert calc.shared_memory_allocation(129) == 256

    def test_validation(self, calc):
        with pytest.raises(ValueError):
            calc.compute(0)
        with pytest.raises(ValueError):
            calc.compute(2048)
        with pytest.raises(ValueError):
            calc.compute(256, registers_per_thread=-1)
        with pytest.raises(ValueError):
            calc.compute(256, registers_per_thread=200)
        with pytest.raises(ValueError):
            calc.shared_memory_allocation(-1)


class TestBestBlockSize:
    def test_best_block_size_returns_valid_candidate(self, calc):
        size, result = calc.best_block_size(registers_per_thread=26)
        assert size in (64, 128, 192, 256, 384, 512, 768, 1024)
        assert result.occupancy > 0

    def test_best_block_size_improves_over_worst(self, calc):
        _, best = calc.best_block_size(registers_per_thread=26)
        worst = calc.compute(1024, registers_per_thread=26)
        assert best.occupancy >= worst.occupancy
