"""Tests for the GFLOPS accounting helpers."""

from __future__ import annotations

import pytest

from repro.gpu.device import CORE_I7_970, TESLA_C2050
from repro.perf.flops import (
    TABLE_IV_GFLOPS,
    FlopsBudget,
    cores_for_equal_gflops,
    theoretical_gflops,
)


class TestTheoreticalGflops:
    def test_device_peak(self):
        assert theoretical_gflops(TESLA_C2050) == pytest.approx(515.0)

    def test_cpu_scaling(self):
        assert theoretical_gflops(CORE_I7_970, n_cores=3) == pytest.approx(38.4)
        assert theoretical_gflops(CORE_I7_970) == pytest.approx(76.8)

    def test_device_with_cores_rejected(self):
        with pytest.raises(ValueError):
            theoretical_gflops(TESLA_C2050, n_cores=4)

    def test_cores_for_equal_gflops(self):
        cores = cores_for_equal_gflops(CORE_I7_970, TESLA_C2050)
        assert cores == pytest.approx(515.0 / 12.8, rel=1e-3)


class TestTableIvHeader:
    def test_published_values(self):
        assert TABLE_IV_GFLOPS[3] == pytest.approx(230.4)
        assert TABLE_IV_GFLOPS[7] == pytest.approx(537.6)
        assert TABLE_IV_GFLOPS[11] == pytest.approx(844.8)

    def test_values_scale_linearly_with_threads(self):
        for threads, value in TABLE_IV_GFLOPS.items():
            assert value == pytest.approx(76.8 * threads)


class TestFlopsBudget:
    def test_paper_budget_maps_to_seven_threads(self):
        """~500 GFLOPS corresponds to 7 threads in the paper's accounting."""
        budget = FlopsBudget(TESLA_C2050.peak_gflops_double)
        assert budget.cpu_threads(CORE_I7_970, per_thread_gflops=76.8) == 7

    def test_matches_device(self):
        assert FlopsBudget(500.0).matches_device(TESLA_C2050)
        assert not FlopsBudget(100.0).matches_device(TESLA_C2050)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlopsBudget(0)
        with pytest.raises(ValueError):
            FlopsBudget(100).cpu_threads(CORE_I7_970, per_thread_gflops=0)
