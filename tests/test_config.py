"""Tests for :mod:`repro.core.config`."""

from __future__ import annotations

import pytest

from repro.core.config import PAPER_BLOCK_SIZE, PAPER_POOL_SIZES, GpuBBConfig
from repro.gpu.placement import DataPlacement


class TestPaperConstants:
    def test_pool_sizes_match_tables(self):
        assert PAPER_POOL_SIZES == (4096, 8192, 16384, 32768, 65536, 131072, 262144)

    def test_block_size(self):
        assert PAPER_BLOCK_SIZE == 256

    def test_pool_sizes_are_block_multiples(self):
        assert all(p % PAPER_BLOCK_SIZE == 0 for p in PAPER_POOL_SIZES)


class TestGpuBBConfig:
    def test_defaults(self):
        config = GpuBBConfig()
        assert config.pool_size == 8192
        assert config.threads_per_block == 256
        assert config.placement is None
        assert config.blocks_per_pool == 32

    def test_with_pool_size(self):
        config = GpuBBConfig().with_pool_size(4096)
        assert config.pool_size == 4096
        assert GpuBBConfig().pool_size == 8192  # original untouched

    def test_with_placement(self):
        placement = DataPlacement.all_global()
        config = GpuBBConfig().with_placement(placement)
        assert config.placement is placement

    def test_describe(self):
        payload = GpuBBConfig(pool_size=1024).describe()
        assert payload["pool_size"] == 1024
        assert payload["placement"] == "auto"
        assert payload["device"]

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuBBConfig(pool_size=0)
        with pytest.raises(ValueError):
            GpuBBConfig(threads_per_block=0)
        with pytest.raises(ValueError):
            GpuBBConfig(threads_per_block=2048)
        with pytest.raises(ValueError):
            GpuBBConfig(max_nodes=0)
        with pytest.raises(ValueError):
            GpuBBConfig(max_time_s=0)
        with pytest.raises(ValueError):
            GpuBBConfig(max_iterations=0)

    def test_blocks_per_pool_rounds_up(self):
        assert GpuBBConfig(pool_size=1000).blocks_per_pool == 4
