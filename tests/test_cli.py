"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.flowshop import random_instance, write_json_file, write_taillard_file


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.engine == "gpu"
        assert args.jobs == 20 and args.machines == 10
        assert args.pool_size == 8192

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--engine", "quantum"])

    def test_parallel_flags(self):
        args = build_parser().parse_args(
            ["solve", "--n-workers", "8", "--parallel-mode", "static", "--decomposition-depth", "3"]
        )
        assert args.workers == 8
        assert args.parallel_mode == "static"
        assert args.decomposition_depth == 3

    def test_workers_alias_kept(self):
        args = build_parser().parse_args(["solve", "--workers", "2"])
        assert args.workers == 2

    def test_parallel_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.parallel_mode == "worksteal"
        assert args.decomposition_depth is None

    def test_unknown_parallel_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--parallel-mode", "telepathy"])


class TestSolveCommand:
    def test_solve_generated_instance_gpu(self, capsys):
        code = main(["solve", "--jobs", "7", "--machines", "4", "--pool-size", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "optimal  : True" in out

    def test_solve_serial_engine(self, capsys):
        code = main(["solve", "--jobs", "6", "--machines", "3", "--engine", "serial"])
        assert code == 0
        assert "engine   : serial" in capsys.readouterr().out

    def test_multicore_honours_max_nodes(self, capsys):
        # the ta_10x8 NEH seed is not optimal, so a 1-node budget per chunk
        # must leave the run truncated instead of silently unbounded
        code = main(
            "solve --jobs 10 --machines 8 --engine multicore "
            "--n-workers 2 --max-nodes 1".split()
        )
        assert code == 0
        assert "optimal  : False" in capsys.readouterr().out

    def test_solve_multicore_worksteal(self, capsys):
        code = main(
            [
                "solve",
                "--jobs",
                "6",
                "--machines",
                "3",
                "--engine",
                "multicore",
                "--n-workers",
                "2",
                "--parallel-mode",
                "worksteal",
                "--decomposition-depth",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine   : multicore" in out
        assert "optimal  : True" in out

    def test_solve_cluster_engine(self, capsys):
        argv = "solve --jobs 6 --machines 3 --engine cluster --nodes 2 --pool-size 32".split()
        code = main(argv)
        assert code == 0
        assert "simulated device" in capsys.readouterr().out

    def test_solve_from_taillard_file(self, tmp_path, capsys):
        instance = random_instance(6, 3, seed=1)
        path = write_taillard_file(instance, tmp_path / "inst.txt")
        code = main(["solve", "--file", str(path), "--engine", "serial"])
        assert code == 0
        assert "inst" in capsys.readouterr().out

    def test_solve_from_json_file(self, tmp_path, capsys):
        instance = random_instance(6, 3, seed=2)
        path = write_json_file(instance, tmp_path / "inst.json")
        code = main(["solve", "--file", str(path), "--engine", "serial"])
        assert code == 0

    def test_missing_file_errors(self):
        with pytest.raises(SystemExit):
            main(["solve", "--file", "/nonexistent/instance.txt"])


class TestCheckpointCommands:
    def _write_instance(self, tmp_path):
        instance = random_instance(8, 5, seed=17)
        path = tmp_path / "instance.json"
        write_json_file(instance, path)
        return path

    def test_checkpoint_requires_serial_engine(self, tmp_path):
        with pytest.raises(SystemExit, match="serial"):
            main(["solve", "--checkpoint", str(tmp_path / "ck.rpbb")])

    def test_checkpoint_interval_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="--checkpoint"):
            main(["solve", "--engine", "serial", "--checkpoint-interval", "5"])

    def test_solve_then_resume_round_trip(self, tmp_path, capsys):
        """Budget-cut a checkpointed solve; `repro resume` finishes it."""
        instance_file = self._write_instance(tmp_path)
        snapshot = tmp_path / "run.rpbb"
        code = main(
            [
                "solve",
                "--engine",
                "serial",
                "--file",
                str(instance_file),
                "--max-nodes",
                "40",
                "--checkpoint",
                str(snapshot),
                "--checkpoint-interval",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal  : False" in out
        assert snapshot.exists()

        code = main(["resume", str(snapshot)])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal  : True" in out
        assert "makespan : 539" in out

    def test_resume_missing_snapshot_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["resume", str(tmp_path / "nope.rpbb")])

    def test_resume_corrupt_snapshot_errors(self, tmp_path):
        bogus = tmp_path / "bogus.rpbb"
        bogus.write_bytes(b"not a snapshot at all")
        with pytest.raises(SystemExit, match="cannot resume"):
            main(["resume", str(bogus)])


class TestAutotuneCommand:
    def test_autotune_model_mode(self, capsys):
        code = main(["autotune", "--jobs", "20", "--machines", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "best pool size" in out
        assert "predicted speed-up" in out


class TestEvaluateCommand:
    def test_evaluate_writes_report(self, tmp_path, capsys):
        output = tmp_path / "report.json"
        code = main(["evaluate", "--skip-measured", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "table2" in out
        payload = json.loads(output.read_text())
        names = {a["name"] for a in payload["artefacts"]}
        assert {"table1", "table2", "table3", "table4", "figure4", "figure5"} <= names
