"""Tests for the CPU cost and multi-core scaling models."""

from __future__ import annotations

import pytest

from repro.flowshop.bounds import DataStructureComplexity
from repro.perf.model import CpuCostModel, MulticoreScalingModel


class TestCpuCostModel:
    def test_cost_grows_with_instance_size(self):
        model = CpuCostModel()
        costs = [
            model.lower_bound_seconds(DataStructureComplexity(n=n, m=20))
            for n in (20, 50, 100, 200)
        ]
        assert costs == sorted(costs)
        # O(m^2 n): 200 jobs cost much more than 20 jobs
        assert costs[-1] > 8 * costs[0]

    def test_cost_grows_with_machines(self):
        model = CpuCostModel()
        small = model.lower_bound_seconds(DataStructureComplexity(n=50, m=5))
        large = model.lower_bound_seconds(DataStructureComplexity(n=50, m=20))
        assert large > 10 * small  # ~m^2 scaling

    def test_fewer_remaining_jobs_is_cheaper(self):
        model = CpuCostModel()
        c = DataStructureComplexity(n=100, m=20)
        assert model.lower_bound_seconds(c, n_remaining=50) < model.lower_bound_seconds(c)

    def test_cache_pressure_raises_per_iteration_cost(self):
        model = CpuCostModel()
        small = model.cycles_per_iteration_effective(DataStructureComplexity(n=20, m=20))
        large = model.cycles_per_iteration_effective(DataStructureComplexity(n=200, m=20))
        assert large > small
        assert large <= model.cycles_per_iteration + model.cache_penalty_cycles

    def test_pool_seconds_scales_linearly(self):
        model = CpuCostModel()
        c = DataStructureComplexity(n=50, m=20)
        assert model.pool_seconds(c, 2000) == pytest.approx(2 * model.pool_seconds(c, 1000))

    def test_pool_seconds_includes_non_bounding_share(self):
        model = CpuCostModel()
        c = DataStructureComplexity(n=50, m=20)
        pure_bounding = 1000 * model.lower_bound_seconds(c)
        assert model.pool_seconds(c, 1000, bounding_fraction=0.985) == pytest.approx(
            pure_bounding / 0.985
        )

    def test_validation(self):
        model = CpuCostModel()
        c = DataStructureComplexity(n=10, m=5)
        with pytest.raises(ValueError):
            model.pool_seconds(c, -1)
        with pytest.raises(ValueError):
            model.pool_seconds(c, 10, bounding_fraction=0.0)


class TestMulticoreScalingModel:
    def test_speedup_grows_with_threads(self):
        model = MulticoreScalingModel()
        speedups = [model.speedup(t) for t in (1, 3, 5, 7, 9, 11)]
        assert speedups == sorted(speedups)

    def test_sublinear_beyond_physical_cores(self):
        """The paper: the slope flattens as the thread count rises."""
        model = MulticoreScalingModel()
        gain_low = model.speedup(5) - model.speedup(3)
        gain_high = model.speedup(11) - model.speedup(9)
        assert gain_high < gain_low

    def test_paper_range(self):
        """Speed-ups must land in the Table IV ballpark: ~4 at 3 threads,
        ~9-11 at 11 threads."""
        model = MulticoreScalingModel()
        c = DataStructureComplexity(n=20, m=20)
        assert 3.5 <= model.speedup(3, c) <= 5.0
        assert 8.0 <= model.speedup(11, c) <= 12.0

    def test_larger_instances_scale_slightly_worse(self):
        model = MulticoreScalingModel()
        small = model.speedup(7, DataStructureComplexity(n=20, m=20))
        large = model.speedup(7, DataStructureComplexity(n=200, m=20))
        assert large < small

    def test_per_core_ratio_reflects_clocks(self):
        model = MulticoreScalingModel()
        assert model.per_core_performance_ratio == pytest.approx(3.20 / 2.27, rel=1e-3)

    def test_speedup_for_gflops(self):
        model = MulticoreScalingModel()
        # ~500 GFLOPS maps to several threads; the result must be positive and finite
        value = model.speedup_for_gflops(500.0)
        assert 1.0 < value < 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MulticoreScalingModel().speedup(0)
        with pytest.raises(ValueError):
            MulticoreScalingModel().effective_parallelism(-1)
