"""Tests for :mod:`repro.flowshop.schedule`."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowshop import (
    FlowShopInstance,
    PartialSchedule,
    Schedule,
    completion_times,
    makespan,
    partial_completion_times,
)
from repro.flowshop.schedule import remaining_tail_times


def random_instance_strategy(max_jobs=6, max_machines=4):
    return st.builds(
        lambda n, m, seed: FlowShopInstance(
            np.random.default_rng(seed).integers(1, 50, size=(n, m))
        ),
        st.integers(2, max_jobs),
        st.integers(1, max_machines),
        st.integers(0, 10_000),
    )


class TestCompletionTimes:
    def test_known_two_machine_example(self):
        # Johnson's classic: jobs (a, b) = (3,6), (5,2), (1,2)
        inst = FlowShopInstance([[3, 6], [5, 2], [1, 2]])
        comp = completion_times(inst, [2, 0, 1])
        assert comp[0].tolist() == [1, 3]
        assert comp[1].tolist() == [4, 10]
        assert comp[2].tolist() == [9, 12]
        assert makespan(inst, [2, 0, 1]) == 12

    def test_single_machine_is_sum(self):
        inst = FlowShopInstance([[4], [6], [5]])
        assert makespan(inst, [1, 0, 2]) == 15

    def test_single_job(self):
        inst = FlowShopInstance([[3, 4, 5]])
        assert makespan(inst, [0]) == 12

    def test_rejects_incomplete_permutation(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            makespan(inst, [0])

    def test_rejects_duplicate_jobs(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            makespan(inst, [0, 0])

    def test_rejects_out_of_range(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            makespan(inst, [0, 5])

    @given(random_instance_strategy(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_completion_times_monotone(self, inst, seed):
        """Completion times increase along positions and along machines."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(inst.n_jobs)
        comp = completion_times(inst, order)
        # along machines for a given position
        assert np.all(np.diff(comp, axis=1) >= 0)
        # along positions for a given machine
        assert np.all(np.diff(comp, axis=0) >= 0)

    @given(random_instance_strategy())
    @settings(max_examples=30, deadline=None)
    def test_makespan_at_least_critical_path(self, inst):
        order = list(range(inst.n_jobs))
        value = makespan(inst, order)
        pt = inst.processing_times
        assert value >= int(pt.sum(axis=1).max())  # any single job's total work
        assert value >= int(pt.sum(axis=0).max())  # any machine's total load
        assert value <= int(pt.sum())


class TestPartialCompletion:
    def test_empty_prefix_is_zero(self, small_instance):
        expected = [0] * small_instance.n_machines
        assert partial_completion_times(small_instance, []).tolist() == expected

    def test_full_prefix_matches_completion_times(self, small_instance):
        order = list(range(small_instance.n_jobs))
        full = completion_times(small_instance, order)[-1]
        partial = partial_completion_times(small_instance, order)
        assert partial.tolist() == full.tolist()

    def test_prefix_extension_is_monotone(self, small_instance):
        prefix = [2, 0]
        shorter = partial_completion_times(small_instance, prefix)
        longer = partial_completion_times(small_instance, prefix + [1])
        assert np.all(longer >= shorter)

    def test_remaining_tails_zero_when_all_scheduled(self, small_instance):
        order = list(range(small_instance.n_jobs))
        expected = [0] * small_instance.n_machines
        assert remaining_tail_times(small_instance, order).tolist() == expected

    def test_remaining_tails_last_machine_zero(self, small_instance):
        tails = remaining_tail_times(small_instance, [0])
        assert tails[-1] == 0
        assert np.all(tails >= 0)


class TestScheduleObjects:
    def test_schedule_makespan_and_feasibility(self, small_instance):
        order = tuple(range(small_instance.n_jobs))
        sched = Schedule(small_instance, order)
        assert sched.makespan == makespan(small_instance, order)
        assert sched.is_feasible()
        rows = sched.gantt_rows()
        assert len(rows) == small_instance.n_machines
        assert all(len(r) == small_instance.n_jobs for r in rows)

    def test_schedule_rejects_bad_order(self, small_instance):
        with pytest.raises(ValueError):
            Schedule(small_instance, (0, 0, 1, 2, 3, 4))

    def test_partial_schedule_children(self, small_instance):
        ps = PartialSchedule(small_instance, (0,))
        children = ps.children()
        assert len(children) == small_instance.n_jobs - 1
        assert all(child.depth == 2 for child in children)
        assert all(child.prefix[0] == 0 for child in children)

    def test_partial_schedule_extend_rejects_duplicates(self, small_instance):
        ps = PartialSchedule(small_instance, (0,))
        with pytest.raises(ValueError):
            ps.extend(0)

    def test_partial_to_schedule_requires_completion(self, small_instance):
        ps = PartialSchedule(small_instance, (0,))
        with pytest.raises(ValueError):
            ps.to_schedule()
        full = PartialSchedule(small_instance, tuple(range(small_instance.n_jobs)))
        assert full.to_schedule().makespan == makespan(small_instance, range(small_instance.n_jobs))

    def test_completions_if(self, small_instance):
        ps = PartialSchedule(small_instance, (1, 0))
        rest = [j for j in range(small_instance.n_jobs) if j not in (1, 0)]
        value = ps.completions_if(rest)
        assert value == makespan(small_instance, [1, 0] + rest)

    def test_best_completion_matches_bruteforce(self, small_instance):
        ps = PartialSchedule(small_instance, (3,))
        rest = list(ps.unscheduled)
        best = min(ps.completions_if(perm) for perm in itertools.permutations(rest))
        full_best = min(
            makespan(small_instance, (3,) + perm) for perm in itertools.permutations(rest)
        )
        assert best == full_best
