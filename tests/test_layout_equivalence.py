"""Block layout vs object layout: identical trees, results and statistics.

The structure-of-arrays frontier (:mod:`repro.bb.frontier`) promises to be a
pure re-representation: every engine run with ``layout="block"`` must explore
bit-for-bit the same tree as its ``layout="object"`` twin — same incumbent,
same best order, same node counters, same trace.  These are the property
tests the acceptance criteria of the frontier work rest on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bb.multicore import MulticoreBranchAndBound
from repro.bb.sequential import SequentialBranchAndBound
from repro.core.cluster import ClusterBranchAndBound, ClusterSpec
from repro.core.config import GpuBBConfig
from repro.core.gpu_bb import GpuBranchAndBound
from repro.core.pipeline import HybridBranchAndBound, HybridConfig
from repro.flowshop import FlowShopInstance, random_instance

COUNTERS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "max_pool_size",
)


def assert_same_search(a, b, counters=COUNTERS):
    assert a.best_makespan == b.best_makespan
    assert a.best_order == b.best_order
    assert a.proved_optimal == b.proved_optimal
    for field in counters:
        assert getattr(a.stats, field) == getattr(b.stats, field), field


class TestSequentialEquivalence:
    @given(st.integers(0, 4000), st.integers(3, 8), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_random_instances(self, seed, n, m):
        rng = np.random.default_rng(seed)
        # a small time range makes (lb, depth) ties frequent, stressing the
        # tie-batched selection path
        instance = FlowShopInstance(rng.integers(1, 25, size=(n, m)))
        obj = SequentialBranchAndBound(instance, layout="object").solve()
        blk = SequentialBranchAndBound(instance, layout="block").solve()
        assert_same_search(obj, blk)

    @pytest.mark.parametrize("selection", ["best-first", "depth-first", "fifo"])
    def test_selection_strategies(self, medium_instance, selection):
        obj = SequentialBranchAndBound(medium_instance, selection=selection, layout="object")
        blk = SequentialBranchAndBound(medium_instance, selection=selection, layout="block")
        assert_same_search(obj.solve(), blk.solve())

    def test_without_neh_seed(self, medium_instance):
        obj = SequentialBranchAndBound(
            medium_instance, initial_upper_bound=float("inf"), layout="object"
        ).solve()
        blk = SequentialBranchAndBound(
            medium_instance, initial_upper_bound=float("inf"), layout="block"
        ).solve()
        assert_same_search(obj, blk)

    @pytest.mark.parametrize("max_nodes", [1, 2, 7, 40, 400])
    def test_node_budgets(self, medium_instance, max_nodes):
        obj = SequentialBranchAndBound(medium_instance, max_nodes=max_nodes, layout="object")
        blk = SequentialBranchAndBound(medium_instance, max_nodes=max_nodes, layout="block")
        assert_same_search(obj.solve(), blk.solve())

    def test_trace_events_identical(self, small_instance):
        obj = SequentialBranchAndBound(small_instance, trace=True, layout="object").solve()
        blk = SequentialBranchAndBound(small_instance, trace=True, layout="block").solve()
        assert obj.trace == blk.trace

    def test_incumbent_callback_sequence(self, medium_instance):
        calls = {"object": [], "block": []}
        for layout in ("object", "block"):
            SequentialBranchAndBound(
                medium_instance,
                initial_upper_bound=float("inf"),
                on_incumbent=lambda value, order, layout=layout: calls[layout].append(
                    (value, order)
                ),
                layout=layout,
            ).solve()
        assert calls["object"] == calls["block"]

    def test_single_machine_instance(self):
        instance = FlowShopInstance([[4], [2], [7], [1]])
        obj = SequentialBranchAndBound(instance, layout="object").solve()
        blk = SequentialBranchAndBound(instance, layout="block").solve()
        assert_same_search(obj, blk)

    def test_scalar_kernel_falls_back_to_object(self, small_instance):
        engine = SequentialBranchAndBound(small_instance, kernel="scalar", layout="block")
        assert engine.layout == "object"
        assert engine.solve().proved_optimal


class TestGpuEngineEquivalence:
    @pytest.mark.parametrize("pool_size", [4, 64])
    def test_gpu_engine(self, medium_instance, pool_size):
        obj = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=pool_size, layout="object")
        ).solve()
        blk = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=pool_size, layout="block")
        ).solve()
        assert_same_search(obj, blk)
        assert obj.stats.pools_evaluated == blk.stats.pools_evaluated
        assert len(obj.iterations) == len(blk.iterations)
        for a, b in zip(obj.iterations, blk.iterations):
            assert (a.nodes_offloaded, a.nodes_pruned, a.nodes_kept, a.incumbent) == (
                b.nodes_offloaded,
                b.nodes_pruned,
                b.nodes_kept,
                b.incumbent,
            )
        assert obj.simulated_device_time_s == pytest.approx(blk.simulated_device_time_s)

    def test_cluster_engine(self, medium_instance):
        spec = ClusterSpec(n_nodes=3)
        obj = ClusterBranchAndBound(
            medium_instance, spec, GpuBBConfig(pool_size=16, layout="object")
        ).solve()
        blk = ClusterBranchAndBound(
            medium_instance, spec, GpuBBConfig(pool_size=16, layout="block")
        ).solve()
        assert_same_search(obj, blk)
        assert obj.simulated_device_time_s == pytest.approx(blk.simulated_device_time_s)

    @pytest.mark.parametrize("share", [True, False])
    def test_hybrid_engine(self, small_instance, share):
        def run(layout):
            config = HybridConfig(
                n_explorers=2,
                gpu=GpuBBConfig(pool_size=16, layout=layout, share_incumbent=share),
            )
            return HybridBranchAndBound(small_instance, config).solve()

        # max_pool_size is per-subtree in the hybrid engine's merged stats
        assert_same_search(run("object"), run("block"))


class TestParallelEquivalence:
    @pytest.mark.parametrize("mode", ["worksteal", "static"])
    def test_serial_backend_exact(self, medium_instance, mode):
        def run(layout):
            return MulticoreBranchAndBound(
                medium_instance,
                n_workers=1,
                backend="serial",
                mode=mode,
                decomposition_depth=2,
                layout=layout,
            ).solve()

        assert_same_search(run("object"), run("block"))

    @pytest.mark.parametrize("mode", ["worksteal", "static"])
    def test_thread_backend_block_exact_and_conserved(self, medium_instance, mode):
        optimum = SequentialBranchAndBound(medium_instance).solve().best_makespan
        result = MulticoreBranchAndBound(
            medium_instance,
            n_workers=4,
            backend="thread",
            mode=mode,
            decomposition_depth=2,
            layout="block",
        ).solve()
        assert result.proved_optimal
        assert result.best_makespan == optimum
        stats = result.stats
        assert stats.nodes_bounded == (
            stats.nodes_branched + stats.nodes_pruned + stats.leaves_evaluated
        )

    def test_worksteal_block_aggressive_polling(self, medium_instance):
        # poll_interval=1 exercises BlockFrontier.prune_to on every pop
        result = MulticoreBranchAndBound(
            medium_instance,
            n_workers=4,
            backend="thread",
            mode="worksteal",
            poll_interval=1,
            layout="block",
        ).solve()
        assert result.proved_optimal
        stats = result.stats
        assert stats.nodes_bounded == (
            stats.nodes_branched + stats.nodes_pruned + stats.leaves_evaluated
        )


class TestBlockConservation:
    """nodes_bounded == branched + pruned + leaves on the block layout."""

    def test_sequential_block(self, medium_instance):
        result = SequentialBranchAndBound(medium_instance, layout="block").solve()
        stats = result.stats
        assert result.proved_optimal
        assert stats.nodes_bounded == (
            stats.nodes_branched + stats.nodes_pruned + stats.leaves_evaluated
        )

    @pytest.mark.parametrize("pool_size", [4, 64])
    def test_gpu_block(self, medium_instance, pool_size):
        result = GpuBranchAndBound(
            medium_instance, GpuBBConfig(pool_size=pool_size, layout="block")
        ).solve()
        stats = result.stats
        assert result.proved_optimal
        assert stats.nodes_bounded == (
            stats.nodes_branched + stats.nodes_pruned + stats.leaves_evaluated
        )


class TestCliLayoutFlag:
    def test_solve_accepts_node_layout(self, capsys):
        from repro.cli import main

        for layout in ("block", "object"):
            assert (
                main(
                    [
                        "solve",
                        "--jobs",
                        "6",
                        "--machines",
                        "4",
                        "--engine",
                        "serial",
                        "--node-layout",
                        layout,
                    ]
                )
                == 0
            )
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_layouts_agree_via_cli_objects(self):
        instance = random_instance(7, 4, seed=9)
        obj = SequentialBranchAndBound(instance, layout="object").solve()
        blk = SequentialBranchAndBound(instance, layout="block").solve()
        assert_same_search(obj, blk)

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            SequentialBranchAndBound(random_instance(4, 2, seed=0), layout="columnar")
        with pytest.raises(ValueError):
            GpuBBConfig(layout="columnar")
        with pytest.raises(ValueError):
            MulticoreBranchAndBound(random_instance(4, 2, seed=0), layout="columnar")
