"""Tests for the GPU kernel timing model (:mod:`repro.gpu.simulator`)."""

from __future__ import annotations

import pytest

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.placement import DataPlacement
from repro.gpu.simulator import GpuSimulator, KernelCostModel


@pytest.fixture()
def c200() -> DataStructureComplexity:
    return DataStructureComplexity(n=200, m=20)


@pytest.fixture()
def c20() -> DataStructureComplexity:
    return DataStructureComplexity(n=20, m=20)


class TestPerThreadCost:
    def test_cost_grows_with_instance_size(self, c20, c200):
        sim = GpuSimulator()
        occ20 = sim.occupancy(c20)
        occ200 = sim.occupancy(c200)
        assert sim.per_thread_cycles(c200, occ200) > sim.per_thread_cycles(c20, occ20)

    def test_shared_placement_is_cheaper_per_thread(self, c200):
        global_sim = GpuSimulator(placement=DataPlacement.all_global())
        shared_sim = GpuSimulator(placement=DataPlacement.shared_ptm_jm())
        occ_g = global_sim.occupancy(c200)
        occ_s = shared_sim.occupancy(c200)
        assert shared_sim.per_thread_cycles(c200, occ_s) < global_sim.per_thread_cycles(c200, occ_g)

    def test_fewer_remaining_jobs_cost_less(self, c200):
        sim = GpuSimulator()
        occ = sim.occupancy(c200)
        assert sim.per_thread_cycles(c200, occ, n_remaining=100) < sim.per_thread_cycles(
            c200, occ, n_remaining=200
        )

    def test_shared_benefit_larger_for_big_instances(self, c20, c200):
        """The Figure 4 effect: the end-to-end gain of the shared placement
        is larger for 200x20 than for 20x20 (whose working set already fits
        the L1 slice, and whose per-node host overheads dilute the kernel
        improvement)."""
        def gain(complexity):
            g = GpuSimulator(placement=DataPlacement.all_global())
            s = GpuSimulator(placement=DataPlacement.shared_ptm_jm())
            pool = 262144
            global_s = g.evaluate_pool(complexity, pool).total_s
            return global_s / s.evaluate_pool(complexity, pool).total_s

        assert gain(c200) > gain(c20) > 1.0


class TestKernelTime:
    def test_zero_pool(self, c200):
        sim = GpuSimulator()
        seconds, occupancy, cycles = sim.kernel_time_s(c200, 0)
        assert seconds == 0.0
        assert cycles > 0
        assert occupancy.active_warps_per_sm > 0

    def test_kernel_time_monotone_in_pool_size(self, c200):
        sim = GpuSimulator()
        times = [sim.kernel_time_s(c200, p)[0] for p in (4096, 8192, 65536, 262144)]
        assert times == sorted(times)

    def test_throughput_improves_until_saturation(self, c200):
        """Per-node kernel time at 262144 nodes is lower than at 4096 nodes
        (the paper's under-utilisation argument for small pools)."""
        sim = GpuSimulator()
        t_small = sim.kernel_time_s(c200, 4096)[0] / 4096
        t_large = sim.kernel_time_s(c200, 262144)[0] / 262144
        assert t_large < t_small

    def test_rejects_negative_pool(self, c200):
        with pytest.raises(ValueError):
            GpuSimulator().kernel_time_s(c200, -1)

    def test_unfittable_placement_raises(self):
        placement = DataPlacement.shared_structures(["PTM", "JM", "LM"])
        sim = GpuSimulator(placement=placement)
        complexity = DataStructureComplexity(n=200, m=20)
        with pytest.raises(ValueError):
            sim.kernel_time_s(complexity, 1024)


class TestEvaluatePool:
    def test_timing_breakdown_positive(self, c200):
        timing = GpuSimulator().evaluate_pool(c200, 8192)
        assert timing.kernel_s > 0
        assert timing.transfer_s > 0
        assert timing.host_overhead_s > 0
        assert timing.launch_overhead_s > 0
        assert timing.total_s == pytest.approx(
            timing.kernel_s + timing.transfer_s + timing.host_overhead_s + timing.launch_overhead_s
        )
        assert timing.per_node_s > 0

    def test_kernel_dominates_for_large_instances(self, c200):
        """For 200x20 the kernel time dwarfs transfers — the premise that
        makes off-loading worthwhile."""
        timing = GpuSimulator().evaluate_pool(c200, 262144)
        assert timing.kernel_s > 5 * timing.transfer_s

    def test_cost_model_overrides(self, c200):
        base = GpuSimulator().evaluate_pool(c200, 8192)
        slow = GpuSimulator(
            cost_model=KernelCostModel().with_overrides(cycles_per_iteration=60.0)
        ).evaluate_pool(c200, 8192)
        assert slow.kernel_s > base.kernel_s


class TestOccupancyIntegration:
    def test_shared_placement_reduces_occupancy_for_large_instances(self, c200):
        global_occ = GpuSimulator(placement=DataPlacement.all_global()).occupancy(c200)
        shared_occ = GpuSimulator(placement=DataPlacement.shared_ptm_jm()).occupancy(c200)
        assert shared_occ.active_warps_per_sm < global_occ.active_warps_per_sm

    def test_all_global_occupancy_independent_of_instance(self, c20, c200):
        sim = GpuSimulator(placement=DataPlacement.all_global())
        assert (
            sim.occupancy(c20).active_warps_per_sm == sim.occupancy(c200).active_warps_per_sm == 32
        )
