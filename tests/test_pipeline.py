"""Tests for the hybrid multi-core + GPU engine."""

from __future__ import annotations

import pytest

from repro.bb import brute_force_optimum
from repro.core import GpuBBConfig, HybridBranchAndBound, HybridConfig


class TestHybrid:
    @pytest.mark.parametrize("depth", [1, 2])
    def test_matches_bruteforce(self, small_instance, depth):
        _, optimum = brute_force_optimum(small_instance)
        config = HybridConfig(
            n_explorers=2, decomposition_depth=depth, gpu=GpuBBConfig(pool_size=64)
        )
        result = HybridBranchAndBound(small_instance, config).solve()
        assert result.best_makespan == optimum
        assert result.proved_optimal

    def test_multiple_explorers_agree_with_single(self, small_instance):
        single = HybridBranchAndBound(
            small_instance, HybridConfig(n_explorers=1, gpu=GpuBBConfig(pool_size=64))
        ).solve()
        many = HybridBranchAndBound(
            small_instance, HybridConfig(n_explorers=4, gpu=GpuBBConfig(pool_size=64))
        ).solve()
        assert single.best_makespan == many.best_makespan

    def test_accumulates_device_time(self, small_instance):
        result = HybridBranchAndBound(
            small_instance, HybridConfig(gpu=GpuBBConfig(pool_size=64))
        ).solve()
        assert result.simulated_device_time_s > 0
        assert result.stats.nodes_bounded > 0

    def test_default_config(self, small_instance):
        _, optimum = brute_force_optimum(small_instance)
        result = HybridBranchAndBound(small_instance).solve()
        assert result.best_makespan == optimum

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(n_explorers=0)
        with pytest.raises(ValueError):
            HybridConfig(decomposition_depth=0)
