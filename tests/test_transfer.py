"""Tests for the host<->device transfer model."""

from __future__ import annotations

import pytest

from repro.gpu.device import TESLA_C2050
from repro.gpu.transfer import TransferModel


@pytest.fixture()
def model() -> TransferModel:
    return TransferModel(TESLA_C2050)


class TestRoundTrip:
    def test_zero_pool_has_only_fixed_cost(self, model):
        timing = model.round_trip(0)
        assert timing.host_to_device_s == 0
        assert timing.device_to_host_s == 0
        assert timing.fixed_overhead_s > 0

    def test_cost_scales_linearly_with_pool(self, model):
        small = model.round_trip(1000, n_jobs=200, n_machines=20)
        large = model.round_trip(2000, n_jobs=200, n_machines=20)
        assert large.host_to_device_s == pytest.approx(2 * small.host_to_device_s)
        assert large.device_to_host_s == pytest.approx(2 * small.device_to_host_s)
        assert large.fixed_overhead_s == pytest.approx(small.fixed_overhead_s)

    def test_bigger_instances_ship_more_bytes(self, model):
        small = model.round_trip(1000, n_jobs=20, n_machines=20)
        large = model.round_trip(1000, n_jobs=200, n_machines=20)
        assert large.host_to_device_s > small.host_to_device_s

    def test_per_node_cost_drops_with_pool_size(self, model):
        """The paper's trade-off: larger pools amortise the fixed launch cost."""
        small = model.round_trip(4096, n_jobs=200, n_machines=20)
        large = model.round_trip(262144, n_jobs=200, n_machines=20)
        assert small.total_s / 4096 > large.total_s / 262144

    def test_rejects_negative_pool(self, model):
        with pytest.raises(ValueError):
            model.round_trip(-1)


class TestPayloads:
    def test_payload_is_aligned(self, model):
        assert model.payload_for_instance(200, 20) % 32 == 0
        assert model.payload_for_instance(20, 20) % 32 == 0

    def test_payload_grows_with_jobs_and_machines(self, model):
        assert model.payload_for_instance(200, 20) >= model.payload_for_instance(20, 20)

    def test_instance_upload(self, model):
        assert model.instance_upload(0) == pytest.approx(model.latency_us * 1e-6)
        assert model.instance_upload(10**6) > model.instance_upload(10**3)
        with pytest.raises(ValueError):
            model.instance_upload(-1)
