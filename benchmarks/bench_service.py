"""Cross-session launch coalescing: 8 concurrent sessions vs the same 8 serial.

The paper amortizes kernel-launch overhead by pooling one search's nodes
into big bounding batches; the service layer (:mod:`repro.service`) applies
the same lever across *concurrent solve sessions*: every session's bounding
batches park on one shared dispatcher, which fuses whatever is pending
across sessions into single kernel launches.

This module submits the same 8 small sessions (two distinct instances,
four sessions each) to the service twice — once with ``max_active=1``
(a degraded serial queue: nothing ever overlaps, every bounding batch is
its own launch, exactly the stand-alone engines' behaviour) and once with
``max_active=8`` — and asserts

* every session's ``(makespan, order)`` is **bit-identical** between the
  two runs AND to a stand-alone
  :class:`~repro.bb.sequential.SequentialBranchAndBound` solve (the fused
  launches change launch counts, never values);
* the serial run issues one launch per bounding request (the baseline is
  honest: zero coalescing);
* the concurrent run issues **>= 2x fewer launches** (the ISSUE 6 floor;
  measured ~4x — the ideal for 4 sessions per instance group, since only
  same-instance batches can share a kernel evaluation).

Unlike a wall-clock floor, launch counting is deterministic, so the
assertion also runs in ``--smoke`` mode on CI.

Runable three ways::

    PYTHONPATH=src python benchmarks/bench_service.py                 # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke --json out.json
    PYTHONPATH=src python -m pytest benchmarks/bench_service.py --benchmark-only
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.bb.sequential import SequentialBranchAndBound
from repro.flowshop import random_instance
from repro.service import FlushPolicy, SolveService

REDUCTION_FLOOR = 2.0
#: 8 sessions, 2 distinct instances x 4 — only same-instance batches fuse,
#: so the ideal reduction of this workload is 4x (floor 2x leaves margin
#: for startup skew on loaded runners)
SESSIONS_PER_INSTANCE = 4


def workload():
    """The 8-session workload: two small instances, four sessions each."""
    medium = random_instance(8, 5, seed=17)
    small = random_instance(6, 4, seed=3)
    return [medium, small] * SESSIONS_PER_INSTANCE


def run_service(instances, max_active: int) -> tuple[list, dict]:
    """Solve ``instances`` as one service batch; returns (results, stats)."""

    async def run():
        async with SolveService(
            max_active_sessions=max_active,
            flush_policy=FlushPolicy(max_wait_s=0.05),
        ) as service:
            for i, instance in enumerate(instances):
                await service.submit(f"r{i}", instance)
            results = [await service.result(f"r{i}") for i in range(len(instances))]
            return results, service.dispatch_stats.as_dict()

    return asyncio.run(run())


def measure() -> dict:
    """Serial-vs-concurrent launch accounting plus bit-identity checks."""
    instances = workload()
    serial_results, serial_stats = run_service(instances, max_active=1)
    concurrent_results, concurrent_stats = run_service(instances, max_active=8)

    for instance, concurrent, serial in zip(instances, concurrent_results, serial_results):
        assert (concurrent.makespan, concurrent.order) == (serial.makespan, serial.order), (
            "concurrent and serial service runs diverged"
        )
        reference = SequentialBranchAndBound(instance).solve()
        assert concurrent.makespan == reference.best_makespan
        assert concurrent.order == reference.best_order
        assert concurrent.proved_optimal == reference.proved_optimal

    assert serial_stats["n_launches"] == serial_stats["n_requests"], (
        "the serial baseline should have nothing to coalesce"
    )
    assert concurrent_stats["n_requests"] == serial_stats["n_requests"], (
        "both runs must issue the identical bounding requests"
    )
    reduction = serial_stats["n_launches"] / concurrent_stats["n_launches"]

    return {
        "sessions": len(instances),
        "distinct_instances": 2,
        "serial_launches": serial_stats["n_launches"],
        "concurrent_launches": concurrent_stats["n_launches"],
        "bounding_requests": serial_stats["n_requests"],
        "launch_reduction": reduction,
        "reduction_floor": REDUCTION_FLOOR,
        "max_requests_coalesced": concurrent_stats["max_requests_coalesced"],
        "flush_reasons": concurrent_stats["flush_reasons"],
        "makespans": sorted({r.makespan for r in concurrent_results}),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode (launch counting is deterministic: still asserts)",
    )
    parser.add_argument("--json", help="write the results to this path as JSON")
    args = parser.parse_args(argv)

    results = measure()
    results["smoke"] = args.smoke

    print(f"sessions            : {results['sessions']} "
          f"({results['distinct_instances']} distinct instances)")
    print(f"bounding requests   : {results['bounding_requests']} (identical in both runs)")
    print(f"serial launches     : {results['serial_launches']} (one per request)")
    print(f"concurrent launches : {results['concurrent_launches']} "
          f"(max {results['max_requests_coalesced']} requests fused per launch)")
    print(f"launch reduction    : {results['launch_reduction']:.2f}x "
          f"(floor {REDUCTION_FLOOR}x)")
    print(f"results             : bit-identical to stand-alone sequential solves "
          f"(makespans {results['makespans']})")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")

    assert results["launch_reduction"] >= REDUCTION_FLOOR, (
        f"launch reduction {results['launch_reduction']:.2f}x is below the "
        f"{REDUCTION_FLOOR}x floor"
    )
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #
def test_serial_service_throughput(benchmark):
    instances = workload()
    results, _ = benchmark(lambda: run_service(instances, max_active=1))
    assert len(results) == len(instances)


def test_concurrent_service_throughput(benchmark):
    instances = workload()
    results, _ = benchmark(lambda: run_service(instances, max_active=8))
    assert len(results) == len(instances)


def test_coalescing_floor(benchmark):
    results = benchmark(measure)
    assert results["launch_reduction"] >= REDUCTION_FLOOR


if __name__ == "__main__":
    sys.exit(main())
