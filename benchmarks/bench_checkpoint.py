"""Checkpoint overhead: periodic frontier snapshots must stay under 5%.

Fault tolerance is only free if nobody pays for it while nothing crashes.
This module runs the identical node-budgeted sequential search over a
Taillard 20x10 instance twice — once bare, once writing a frontier
snapshot (:mod:`repro.bb.snapshot`) every ``CHECKPOINT_EVERY`` steps —
and asserts

* the two runs explore the **bit-identical** tree (every non-timing
  counter equal: checkpointing observes the search, it never steers it);
* the checkpointed run's node throughput is within
  ``OVERHEAD_CEILING`` (5%) of the bare run, best-of-``REPEATS`` walls;
* the final snapshot on disk round-trips through ``load_header`` (the
  artifact a crash would actually resume from is well-formed).

Runable three ways::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py                 # full
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --smoke --json out.json
    PYTHONPATH=src python -m pytest benchmarks/bench_checkpoint.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.snapshot import load_header
from repro.flowshop.taillard import taillard_instance

OVERHEAD_CEILING = 0.05
#: snapshot cadence in driver steps — frequent enough that a smoke run
#: writes several checkpoints, sparse enough to model production cadence
CHECKPOINT_EVERY = 5_000
#: non-timing SearchStats fields that must match bit-for-bit
COUNTERS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "pools_evaluated",
    "max_pool_size",
)


def _run(instance, max_nodes: int, checkpoint_path=None):
    """One budgeted solve; returns (result, wall_seconds).

    Depth-first on purpose: snapshot cost scales with the *live* frontier,
    and depth-first keeps it bounded (~n_jobs deep) — the configuration a
    long fault-tolerant run actually uses.  Best-first grows the frontier
    without bound, so its snapshots measure memory pressure, not the
    checkpoint machinery.
    """
    engine = SequentialBranchAndBound(
        instance,
        selection="depth-first",
        max_nodes=max_nodes,
        checkpoint_path=checkpoint_path,
        checkpoint_every=CHECKPOINT_EVERY if checkpoint_path is not None else None,
    )
    start = time.perf_counter()
    result = engine.solve()
    return result, time.perf_counter() - start


def measure(max_nodes: int, repeats: int) -> dict:
    """Bare-vs-checkpointed throughput plus tree-identity checks."""
    instance = taillard_instance(20, 10, index=1)

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "bench.ckpt"
        bare_walls, ckpt_walls = [], []
        bare_result = ckpt_result = None
        for _ in range(repeats):
            bare_result, wall = _run(instance, max_nodes)
            bare_walls.append(wall)
            ckpt_result, wall = _run(instance, max_nodes, checkpoint_path=snapshot_path)
            ckpt_walls.append(wall)

        for counter in COUNTERS:
            bare, ckpt = getattr(bare_result.stats, counter), getattr(ckpt_result.stats, counter)
            assert bare == ckpt, f"checkpointing changed the search: {counter} {bare} != {ckpt}"
        assert (bare_result.best_makespan, bare_result.best_order) == (
            ckpt_result.best_makespan,
            ckpt_result.best_order,
        ), "checkpointing changed the incumbent"

        header = load_header(snapshot_path)  # the crash artifact must be resumable

    bare_wall, ckpt_wall = min(bare_walls), min(ckpt_walls)
    bare_rate = bare_result.stats.nodes_bounded / bare_wall
    ckpt_rate = ckpt_result.stats.nodes_bounded / ckpt_wall
    overhead = max(0.0, 1.0 - ckpt_rate / bare_rate)

    return {
        "instance": instance.name or "ta20x10",
        "max_nodes": max_nodes,
        "repeats": repeats,
        "checkpoint_every": CHECKPOINT_EVERY,
        "nodes_bounded": bare_result.stats.nodes_bounded,
        "bare_wall_s": bare_wall,
        "checkpointed_wall_s": ckpt_wall,
        "bare_nodes_per_s": bare_rate,
        "checkpointed_nodes_per_s": ckpt_rate,
        "overhead": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
        "snapshot_format_version": header["format_version"],
        "proved_optimal": bool(bare_result.proved_optimal),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: smaller node budget, same assertions",
    )
    parser.add_argument("--json", help="write the results to this path as JSON")
    args = parser.parse_args(argv)

    results = measure(max_nodes=24_000 if args.smoke else 96_000, repeats=7)
    results["smoke"] = args.smoke

    print(f"instance             : {results['instance']} "
          f"({results['nodes_bounded']} nodes bounded, budget {results['max_nodes']})")
    print(f"checkpoint cadence   : every {results['checkpoint_every']} steps "
          f"(snapshot format v{results['snapshot_format_version']})")
    print(f"bare throughput      : {results['bare_nodes_per_s']:,.0f} nodes/s "
          f"(best of {results['repeats']})")
    print(f"checkpointed         : {results['checkpointed_nodes_per_s']:,.0f} nodes/s")
    print(f"overhead             : {results['overhead'] * 100:.2f}% "
          f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)")
    print("tree identity        : all non-timing counters bit-identical")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")

    assert results["overhead"] <= OVERHEAD_CEILING, (
        f"checkpoint overhead {results['overhead'] * 100:.2f}% exceeds the "
        f"{OVERHEAD_CEILING * 100:.0f}% ceiling"
    )
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #
def test_bare_search_throughput(benchmark):
    instance = taillard_instance(20, 10, index=1)
    result, _ = benchmark(lambda: _run(instance, max_nodes=4_000))
    assert result.stats.nodes_bounded > 0


def test_checkpoint_overhead_ceiling(benchmark):
    results = benchmark(lambda: measure(max_nodes=4_000, repeats=1))
    assert results["overhead"] <= OVERHEAD_CEILING * 3  # looser under profiling


if __name__ == "__main__":
    sys.exit(main())
