"""SearchDriver overhead: block-layout sequential solve vs the pre-driver loop.

The driver refactor collapsed the eight per-engine solve loops into the one
canonical iteration of :class:`repro.bb.driver.SearchDriver`.  Its contract
is *zero semantic drift* (bit-identical trees, pinned by
``tests/test_driver.py``) and *near-zero mechanical overhead*: the hook
checks and the indirection through the offload backend must not slow the
hottest engine down.

This benchmark keeps a verbatim copy of the pre-refactor block-layout
sequential loop (``_solve_block`` as it existed before ``bb/driver.py``)
and measures end-to-end nodes/s of both implementations on a Taillard
20x10 instance.  It asserts

* identical ``best_makespan`` and identical ``nodes_bounded`` /
  ``nodes_branched`` / ``nodes_pruned`` counters (same tree, node for node);
* driver throughput within 5 % of the legacy loop
  (``DRIVER_FLOOR = 0.95``) in full mode; smoke mode (CI shared runners)
  relaxes the floor to 0.75 so only catastrophic regressions fail the job.

Runable three ways::

    PYTHONPATH=src python benchmarks/bench_driver.py                 # full, 5% floor
    PYTHONPATH=src python benchmarks/bench_driver.py --smoke --json out.json
    PYTHONPATH=src python -m pytest benchmarks/bench_driver.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.bb.frontier import (
    BlockFrontier,
    Trail,
    bound_block,
    branch_block,
    branch_row,
    leaf_improvements,
    root_block,
)
from repro.bb.sequential import SequentialBranchAndBound
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.neh import neh_heuristic
from repro.flowshop.taillard import taillard_instance

#: driver nodes/s must stay within 5% of the pre-refactor loop
DRIVER_FLOOR = 0.95
SMOKE_FLOOR = 0.75
FULL_BUDGET = 3000
SMOKE_BUDGET = 600


def legacy_solve_block(instance, max_nodes):
    """The pre-driver ``SequentialBranchAndBound._solve_block``, verbatim.

    Frozen at the commit that introduced ``bb/driver.py`` so the driver's
    mechanical overhead stays measurable against the loop it replaced.
    Only the engine scaffolding (NEH seeding, result packaging) is inlined;
    the loop body is untouched.
    """
    data = LowerBoundData(instance)
    n_jobs = instance.n_jobs
    pt = instance.processing_times
    stats = SearchStats()

    heuristic = neh_heuristic(instance)
    upper_bound = float(heuristic.makespan)
    stats.incumbent_updates += 1
    best_trail = None

    trail = Trail()
    frontier = BlockFrontier(n_jobs, instance.n_machines, trail, strategy="best-first")
    root = root_block(instance, trail)
    next_order = 1
    perf_counter = time.perf_counter

    start = time.perf_counter()
    t0 = time.perf_counter()
    bound_block(data, root, False, kernel="v2")
    stats.time_bounding_s += time.perf_counter() - t0
    stats.nodes_bounded += 1
    frontier.push_block(root)

    use_batches = True
    completed = True
    while frontier:
        if max_nodes is not None and stats.nodes_explored >= max_nodes:
            completed = False
            break

        if use_batches:
            remaining = max_nodes - stats.nodes_explored if max_nodes is not None else None
            t0 = perf_counter()
            batch = frontier.pop_min_tie_batch(remaining)
            stats.time_pool_s += perf_counter() - t0
            if batch is None:
                use_batches = False
            else:
                k = len(batch)
                lb0 = int(batch.lower_bound[0])
                depth0 = int(batch.depth[0])
                if lb0 >= upper_bound:
                    stats.nodes_pruned += k
                    continue
                if depth0 == n_jobs:
                    stats.leaves_evaluated += 1
                    upper_bound = float(lb0)
                    best_trail = int(batch.trail_id[0])
                    stats.incumbent_updates += 1
                    stats.nodes_branched += 1
                    stats.nodes_pruned += k - 1
                    continue
                if depth0 + 1 == n_jobs:
                    for i in range(k):
                        if lb0 >= upper_bound:
                            stats.nodes_pruned += 1
                            continue
                        t0 = perf_counter()
                        children = branch_row(
                            batch.scheduled_mask[i],
                            batch.release[i],
                            depth0,
                            int(batch.trail_id[i]),
                            trail,
                            pt,
                            next_order,
                        )
                        stats.time_branching_s += perf_counter() - t0
                        next_order += len(children)
                        stats.nodes_branched += 1
                        t0 = perf_counter()
                        bound_block(data, children, False, kernel="v2", siblings=True)
                        stats.time_bounding_s += perf_counter() - t0
                        n_children = len(children)
                        stats.nodes_bounded += n_children
                        stats.leaves_evaluated += n_children
                        makespans = children.makespans
                        improving, _ = leaf_improvements(upper_bound, makespans)
                        for j in improving:
                            makespan = int(makespans[j])
                            upper_bound = float(makespan)
                            best_trail = int(children.trail_id[j])
                            stats.incumbent_updates += 1
                    continue

                t0 = perf_counter()
                if k == 1:
                    children = branch_row(
                        batch.scheduled_mask[0],
                        batch.release[0],
                        depth0,
                        int(batch.trail_id[0]),
                        trail,
                        pt,
                        next_order,
                    )
                else:
                    children = branch_block(batch, pt, next_order)
                stats.time_branching_s += perf_counter() - t0
                next_order += len(children)
                stats.nodes_branched += k
                t0 = perf_counter()
                bound_block(data, children, False, kernel="v2", siblings=k == 1)
                stats.time_bounding_s += perf_counter() - t0
                n_children = len(children)
                stats.nodes_bounded += n_children
                keep = children.lower_bound < upper_bound
                pruned = n_children - int(np.count_nonzero(keep))
                stats.nodes_pruned += pruned
                if pruned and k > 1:
                    per_member = n_jobs - depth0
                    kept_per = np.add.reduceat(keep, np.arange(0, k * per_member, per_member))
                    sizes = len(frontier) + (k - 1 - np.arange(k)) + np.cumsum(kept_per)
                    populated = kept_per > 0
                    if populated.any():
                        frontier.record_size_hint(int(sizes[populated].max()))
                t0 = perf_counter()
                frontier.push_block(children, keep if pruned else None)
                stats.time_pool_s += perf_counter() - t0
                continue

        t0 = perf_counter()
        row = frontier.peek_best()
        node_lb, node_depth, _, node_tid, mask_view, release_view = frontier.row_view(row)
        stats.time_pool_s += perf_counter() - t0

        if node_lb >= upper_bound:
            frontier.discard(row)
            stats.nodes_pruned += 1
            continue

        if node_depth == n_jobs:
            makespan = int(release_view[-1])
            frontier.discard(row)
            stats.leaves_evaluated += 1
            if makespan < upper_bound:
                upper_bound = float(makespan)
                best_trail = node_tid
                stats.incumbent_updates += 1
            stats.nodes_branched += 1
            continue

        t0 = perf_counter()
        children = branch_row(mask_view, release_view, node_depth, node_tid, trail, pt, next_order)
        frontier.discard(row)
        stats.time_branching_s += perf_counter() - t0
        next_order += len(children)
        stats.nodes_branched += 1

        t0 = perf_counter()
        bound_block(data, children, False, kernel="v2", siblings=True)
        stats.time_bounding_s += perf_counter() - t0
        n_children = len(children)
        stats.nodes_bounded += n_children

        if node_depth + 1 == n_jobs:
            stats.leaves_evaluated += n_children
            makespans = children.makespans
            improving, _ = leaf_improvements(upper_bound, makespans)
            for i in improving:
                makespan = int(makespans[i])
                upper_bound = float(makespan)
                best_trail = int(children.trail_id[i])
                stats.incumbent_updates += 1
            continue

        keep = children.lower_bound < upper_bound
        pruned = n_children - int(np.count_nonzero(keep))
        stats.nodes_pruned += pruned
        t0 = perf_counter()
        frontier.push_block(children, keep if pruned else None)
        stats.time_pool_s += perf_counter() - t0

    stats.time_total_s = time.perf_counter() - start
    stats.max_pool_size = frontier.max_size_seen
    del best_trail, completed
    return int(upper_bound), stats


def run_driver(instance, max_nodes):
    result = SequentialBranchAndBound(instance, max_nodes=max_nodes, layout="block").solve()
    return result.best_makespan, result.stats


def measure(instance, max_nodes: int, repeats: int) -> dict:
    """Interleaved best-of-``repeats`` nodes/s of both implementations."""
    for runner in (legacy_solve_block, run_driver):  # warm the kernels / caches
        runner(instance, min(300, max_nodes))
    best: dict[str, tuple] = {}
    for _ in range(repeats):
        for name, runner in (("legacy", legacy_solve_block), ("driver", run_driver)):
            makespan, stats = runner(instance, max_nodes)
            record = best.get(name)
            if record is None or stats.time_total_s < record[1].time_total_s:
                best[name] = (makespan, stats)
    legacy_makespan, legacy_stats = best["legacy"]
    driver_makespan, driver_stats = best["driver"]

    assert driver_makespan == legacy_makespan, "driver diverged from the pre-refactor loop"
    for field in ("nodes_bounded", "nodes_branched", "nodes_pruned"):
        a, b = getattr(legacy_stats, field), getattr(driver_stats, field)
        assert a == b, f"{field} diverged: legacy={a} driver={b}"

    legacy_nps = legacy_stats.nodes_bounded / legacy_stats.time_total_s
    driver_nps = driver_stats.nodes_bounded / driver_stats.time_total_s
    return {
        "instance": instance.name or f"{instance.n_jobs}x{instance.n_machines}",
        "max_nodes": max_nodes,
        "best_makespan": legacy_makespan,
        "nodes_bounded": legacy_stats.nodes_bounded,
        "legacy_nodes_per_s": legacy_nps,
        "driver_nodes_per_s": driver_nps,
        "legacy_time_s": legacy_stats.time_total_s,
        "driver_time_s": driver_stats.time_total_s,
        "driver_over_legacy": driver_nps / legacy_nps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small budget and relaxed floor (CI smoke mode on noisy shared runners)",
    )
    parser.add_argument("--json", help="write the results to this path as JSON")
    args = parser.parse_args(argv)

    instance = taillard_instance(20, 10, index=1)
    budget = SMOKE_BUDGET if args.smoke else FULL_BUDGET
    repeats = 3 if args.smoke else 5

    results = measure(instance, budget, repeats)
    floor = SMOKE_FLOOR if args.smoke else DRIVER_FLOOR
    results["smoke"] = args.smoke
    results["floor"] = floor

    print(f"instance          : {results['instance']} (budget {budget} nodes)")
    print(f"best makespan     : {results['best_makespan']} (identical in both loops)")
    print(f"nodes bounded     : {results['nodes_bounded']} (identical in both loops)")
    print(f"legacy loop       : {results['legacy_nodes_per_s']:10.0f} nodes/s")
    print(f"driver            : {results['driver_nodes_per_s']:10.0f} nodes/s")
    print(f"driver/legacy     : {results['driver_over_legacy']:.3f}x (floor {floor:.2f}x)")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")

    assert results["driver_over_legacy"] >= floor, (
        f"driver throughput {results['driver_over_legacy']:.3f}x of the pre-refactor "
        f"loop is below the {floor:.2f}x floor"
    )
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry points (same measurements, one loop per test)
# --------------------------------------------------------------------- #
def test_legacy_loop_throughput(benchmark):
    instance = taillard_instance(20, 10, index=1)
    makespan, stats = benchmark(lambda: legacy_solve_block(instance, SMOKE_BUDGET))
    assert stats.nodes_bounded > 0


def test_driver_throughput(benchmark):
    instance = taillard_instance(20, 10, index=1)
    makespan, stats = benchmark(lambda: run_driver(instance, SMOKE_BUDGET))
    assert stats.nodes_bounded > 0


def test_driver_explores_identical_tree(benchmark):
    instance = taillard_instance(20, 10, index=1)
    legacy_makespan, legacy_stats = legacy_solve_block(instance, SMOKE_BUDGET)
    makespan, stats = benchmark(lambda: run_driver(instance, SMOKE_BUDGET))
    assert makespan == legacy_makespan
    assert stats.nodes_bounded == legacy_stats.nodes_bounded
    assert stats.nodes_branched == legacy_stats.nodes_branched
    assert stats.nodes_pruned == legacy_stats.nodes_pruned


if __name__ == "__main__":
    sys.exit(main())
