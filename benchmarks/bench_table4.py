"""Benchmark / regeneration of Table IV (multi-threaded CPU B&B speed-ups).

Two parts:

* the modelled table (the calibrated scaling model, compared cell-by-cell
  against the published values), and
* a *measured* multi-core run on this host (process backend) showing that
  the real engine also scales, albeit on a much smaller instance than the
  paper's protocol uses.
"""

from __future__ import annotations

from _bench_utils import attach_table

from repro.bb import MulticoreBranchAndBound, SequentialBranchAndBound
from repro.experiments import PAPER_TABLE4, table4
from repro.experiments.paper_values import PAPER_INSTANCES, PAPER_THREAD_COUNTS
from repro.flowshop import random_instance


def test_table4_model(benchmark):
    table = benchmark(table4)
    attach_table(benchmark, table, PAPER_TABLE4)

    comparison = table.compare(PAPER_TABLE4)
    assert comparison.mean_absolute_relative_error < 0.20
    for klass in PAPER_INSTANCES:
        row = [table.get(klass, t) for t in PAPER_THREAD_COUNTS]
        assert row == sorted(row)  # more threads never slower
        assert row[-1] < 14  # clearly sub-linear at 11 threads


def test_table4_measured_multicore_run(benchmark):
    """Wall-clock sanity check of the real multi-core engine on this host."""
    instance = random_instance(10, 8, seed=2)

    def run():
        return MulticoreBranchAndBound(
            instance, n_workers=4, backend="process", decomposition_depth=1
        ).solve()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = SequentialBranchAndBound(instance).solve()
    assert result.best_makespan == serial.best_makespan
    benchmark.extra_info["nodes_bounded"] = result.stats.nodes_bounded
