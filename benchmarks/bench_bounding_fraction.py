"""Benchmark of the preliminary experiment: time share of the bounding operator.

The paper measures that ~98.5 % of the serial B&B runtime goes into lower
bound evaluation on the m=20 instances.  The benchmark runs the instrumented
serial engine on a Taillard-style 20x20 instance (with a node budget so the
run stays short) and asserts that bounding dominates here too.
"""

from __future__ import annotations

from repro.experiments import measure_bounding_fraction
from repro.flowshop import taillard_instance


def test_bounding_fraction_20x20(benchmark):
    instance = taillard_instance(20, 20, index=1)

    def run():
        return measure_bounding_fraction(instance=instance, max_nodes=400)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["bounding_fraction"] = result.fraction
    benchmark.extra_info["paper_fraction"] = result.paper_fraction
    benchmark.extra_info["nodes_bounded"] = result.nodes_bounded
    assert result.fraction > 0.90


def test_bounding_fraction_grows_with_machines(benchmark):
    """The O(m^2 n log n) bound cost makes the fraction rise with m."""

    def run():
        narrow = measure_bounding_fraction(
            instance=taillard_instance(12, 5, index=1), max_nodes=300
        )
        wide = measure_bounding_fraction(instance=taillard_instance(12, 20, index=1), max_nodes=300)
        return narrow, wide

    narrow, wide = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["fraction_m5"] = narrow.fraction
    benchmark.extra_info["fraction_m20"] = wide.fraction
    assert wide.fraction >= narrow.fraction
