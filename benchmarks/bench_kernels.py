"""Measured kernel throughput on this host: scalar vs batched bounding.

The paper's speed-ups come from evaluating a pool of bounds in parallel
instead of one at a time.  The reproduction's "device" is the vectorised
NumPy kernel, so the measured analogue is the throughput gap between the
scalar kernel (one Python call per node — the serial engine's path) and the
batched kernel (one vectorised call per pool — the executor's path).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.protocol import synthetic_pool
from repro.flowshop import taillard_instance
from repro.flowshop.bounds import LowerBoundData, lower_bound, lower_bound_batch

POOL_SIZE = 512


def _pool(instance, data, pool_size=POOL_SIZE):
    mask, release = synthetic_pool(instance, pool_size, seed=1)
    return mask, release


def test_scalar_kernel_20x20(benchmark):
    instance = taillard_instance(20, 20, index=1)
    data = LowerBoundData(instance)
    mask, release = _pool(instance, data)
    prefixes = [list(np.flatnonzero(row)) for row in mask]

    def run():
        return [lower_bound(data, prefix, release=rel) for prefix, rel in zip(prefixes, release)]

    values = benchmark(run)
    assert len(values) == POOL_SIZE


def test_batched_kernel_20x20(benchmark):
    instance = taillard_instance(20, 20, index=1)
    data = LowerBoundData(instance)
    mask, release = _pool(instance, data)

    values = benchmark(lower_bound_batch, data, mask, release)
    assert values.shape == (POOL_SIZE,)


def test_batched_kernel_matches_scalar_while_faster(benchmark):
    """Correctness + speed in one: the batched kernel returns identical values
    and (on any realistic host) at a fraction of the scalar cost."""
    instance = taillard_instance(50, 20, index=1)
    data = LowerBoundData(instance)
    mask, release = _pool(instance, data, pool_size=256)

    batched = benchmark(lower_bound_batch, data, mask, release)
    scalar = np.array(
        [
            lower_bound(data, list(np.flatnonzero(row)), release=rel)
            for row, rel in zip(mask, release)
        ]
    )
    assert np.array_equal(batched, scalar)


def test_batched_kernel_200x20(benchmark):
    """Throughput on the paper's largest class (per-node cost is ~100x 20x20)."""
    instance = taillard_instance(200, 20, index=1)
    data = LowerBoundData(instance)
    mask, release = synthetic_pool(instance, 128, seed=3)

    values = benchmark(lower_bound_batch, data, mask, release)
    assert values.shape == (128,)
    assert int(values.min()) > 0
