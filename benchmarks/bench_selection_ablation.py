"""Ablation: selection strategy (best-first vs depth-first vs FIFO).

The paper selects nodes best-first before off-loading them.  This ablation
solves the same instance with the three strategies on both the serial and
the GPU engine and reports the explored-node counts — best-first should
never explore more nodes than FIFO, and all strategies must agree on the
optimum.
"""

from __future__ import annotations

from repro.bb import SequentialBranchAndBound
from repro.core import GpuBBConfig, GpuBranchAndBound
from repro.flowshop import random_instance

STRATEGIES = ("best-first", "depth-first", "fifo")


def test_selection_ablation_serial(benchmark):
    instance = random_instance(9, 6, seed=4)

    def sweep():
        return {
            strategy: SequentialBranchAndBound(instance, selection=strategy).solve()
            for strategy in STRATEGIES
        }

    results = benchmark(sweep)
    makespans = {s: r.best_makespan for s, r in results.items()}
    nodes = {s: r.stats.nodes_bounded for s, r in results.items()}
    benchmark.extra_info["nodes_bounded"] = nodes
    assert len(set(makespans.values())) == 1
    assert nodes["best-first"] <= nodes["fifo"]


def test_selection_ablation_gpu_engine(benchmark):
    instance = random_instance(8, 5, seed=4)

    def sweep():
        return {
            strategy: GpuBranchAndBound(
                instance, GpuBBConfig(pool_size=64, selection=strategy)
            ).solve()
            for strategy in STRATEGIES
        }

    results = benchmark(sweep)
    makespans = {s: r.best_makespan for s, r in results.items()}
    benchmark.extra_info["pools"] = {s: r.stats.pools_evaluated for s, r in results.items()}
    assert len(set(makespans.values())) == 1
