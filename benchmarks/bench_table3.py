"""Benchmark / regeneration of Table III (PTM and JM in shared memory)."""

from __future__ import annotations

from _bench_utils import attach_table

from repro.experiments import PAPER_TABLE3, table2, table3
from repro.experiments.paper_values import PAPER_INSTANCES, PAPER_POOL_SIZES


def test_table3_full_sweep(benchmark, protocol):
    table = benchmark(table3, protocol=protocol)
    attach_table(benchmark, table, PAPER_TABLE3)

    comparison = table.compare(PAPER_TABLE3)
    assert comparison.mean_absolute_relative_error < 0.15
    # the x100 headline number for 200x20 at the largest pool
    assert 85 <= table.get((200, 20), 262144) <= 115


def test_table3_improvement_over_table2(benchmark, protocol):
    """The paper's 23% claim: the shared-memory placement improves the
    largest instance/pool cell by ~20-30% and never hurts."""

    def build_both():
        return table2(protocol=protocol), table3(protocol=protocol)

    t2, t3 = benchmark(build_both)
    for klass in PAPER_INSTANCES:
        for pool in PAPER_POOL_SIZES:
            assert t3.get(klass, pool) > t2.get(klass, pool)
    gain = t3.get((200, 20), 262144) / t2.get((200, 20), 262144)
    benchmark.extra_info["gain_200x20_largest_pool"] = gain
    assert 1.10 <= gain <= 1.45
