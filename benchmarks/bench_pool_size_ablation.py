"""Ablation: the off-load pool size, and the auto-tuner's choice.

The pool size is the paper's dominant tuning knob (Tables II/III) and its
conclusion calls for determining it at runtime.  This ablation checks the
auto-tuner against the paper's observation: small instances prefer moderate
pools, large instances the biggest pool.
"""

from __future__ import annotations

from repro.core import GpuBBConfig, PoolSizeAutotuner
from repro.experiments.paper_values import PAPER_BEST_POOL_SIZE
from repro.flowshop import taillard_instance


def test_autotuner_tracks_paper_optimum(benchmark):
    def tune_all():
        choices = {}
        for n_jobs, n_machines in ((20, 20), (50, 20), (100, 20), (200, 20)):
            instance = taillard_instance(n_jobs, n_machines, index=1)
            report = PoolSizeAutotuner(instance, GpuBBConfig(), mode="model").run()
            choices[(n_jobs, n_machines)] = report.best_pool_size
        return choices

    choices = benchmark(tune_all)
    benchmark.extra_info["chosen_pool_sizes"] = {f"{k[0]}x{k[1]}": v for k, v in choices.items()}
    benchmark.extra_info["paper_best"] = {
        f"{k[0]}x{k[1]}": v for k, v in PAPER_BEST_POOL_SIZE.items()
    }

    # shape: the chosen pool size never decreases with the instance size,
    # small instances stay at moderate pools, large instances go big.
    ordered = [choices[k] for k in ((20, 20), (50, 20), (100, 20), (200, 20))]
    assert ordered == sorted(ordered)
    assert choices[(20, 20)] <= 32768
    assert choices[(200, 20)] >= 65536
