"""Benchmark / regeneration of Figure 5 (GPU vs multi-threaded at ~500 GFLOPS).

Reproduces the two bars of Figure 5 per instance class and checks the
section's headline claims: at equal theoretical computational power the GPU
B&B wins by roughly an order of magnitude, the gap grows with the instance
size, and the multi-threaded baseline stays roughly flat across classes.
"""

from __future__ import annotations

from _bench_utils import attach_series

from repro.experiments import PAPER_FIGURE5, figure5


def test_figure5_series(benchmark, protocol):
    series = benchmark(figure5, protocol=protocol)
    attach_series(benchmark, series, PAPER_FIGURE5)

    gpu = series["gpu"]
    cpu = series["multithreaded"]
    xs = sorted(gpu.points)

    # the GPU wins everywhere, by ~x5-18 (the paper reports ~x6.7-11.5)
    ratios = [gpu.points[x] / cpu.points[x] for x in xs]
    assert all(5.0 <= r <= 18.0 for r in ratios)
    benchmark.extra_info["gpu_over_multithreaded"] = dict(zip(map(int, xs), ratios))

    # the GPU advantage grows with the instance size ...
    assert ratios == sorted(ratios)
    assert gpu.values() == sorted(gpu.values())
    # ... while the multi-threaded speed-up is roughly flat (within ~15%)
    assert max(cpu.values()) / min(cpu.values()) < 1.15
