"""Extension benchmark: scaling over a simulated cluster of GPU nodes.

The paper's conclusion announces an extension "to a cluster of
GPU-accelerated multi-core processors"; this benchmark exercises the
reproduction's implementation of that extension (`repro.core.cluster`) and
records how the distributed bounding step scales with the node count for a
large and a small pool.
"""

from __future__ import annotations

from repro.core.cluster import ClusterSimulator, ClusterSpec
from repro.flowshop.bounds import DataStructureComplexity

NODE_COUNTS = (1, 2, 4, 8, 16)


def test_cluster_scaling_200x20(benchmark):
    complexity = DataStructureComplexity(n=200, m=20)
    simulator = ClusterSimulator(ClusterSpec(n_nodes=8))

    def sweep():
        return {
            "large_pool": simulator.scaling_efficiency(complexity, 262144, NODE_COUNTS),
            "small_pool": simulator.scaling_efficiency(complexity, 4096, NODE_COUNTS),
        }

    results = benchmark(sweep)
    benchmark.extra_info["efficiency"] = results

    large, small = results["large_pool"], results["small_pool"]
    # near-linear scaling for the big pool up to 8 nodes...
    assert large[8] > 0.7
    # ...and clearly degraded scaling when the pool is small
    assert small[16] < large[16]
    # efficiency never exceeds ~1 (no super-linear artefacts)
    assert all(v <= 1.05 for v in large.values())


def test_cluster_engine_step_time(benchmark):
    """Time of one distributed bounding step (the harness itself, measured)."""
    complexity = DataStructureComplexity(n=100, m=20)

    def step():
        return ClusterSimulator(ClusterSpec(n_nodes=4)).evaluate_pool(complexity, 65536)

    timing = benchmark(step)
    assert timing.total_s > 0
    benchmark.extra_info["simulated_step_s"] = timing.total_s
