"""Reporting helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["attach_table", "attach_series"]


def attach_table(benchmark, table, reference=None) -> None:
    """Attach a reproduced table (and its paper comparison) to the benchmark."""
    benchmark.extra_info["table"] = table.to_dict()
    if reference is not None:
        comparison = table.compare(reference)
        benchmark.extra_info["vs_paper"] = comparison.summary()


def attach_series(benchmark, series_by_label, reference=None) -> None:
    """Attach reproduced figure series to the benchmark."""
    benchmark.extra_info["series"] = {
        label: {str(int(x)): v for x, v in zip(s.xs(), s.values())}
        for label, s in series_by_label.items()
    }
    if reference is not None:
        benchmark.extra_info["paper"] = {
            label: {f"{k[0]}x{k[1]}": v for k, v in values.items()}
            for label, values in reference.items()
        }
