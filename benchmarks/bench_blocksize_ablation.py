"""Ablation: thread-block size.

The paper fixes the block size to 256 threads "experimentally".  This
ablation sweeps the candidate block sizes on the simulated device and checks
that 256 is indeed (near-)optimal: occupancy-wise it ties the smaller sizes,
and the end-to-end pool time at 256 is within a few percent of the best.
"""

from __future__ import annotations

from repro.experiments.protocol import ExperimentProtocol
from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.occupancy import OccupancyCalculator
from repro.gpu.placement import DataPlacement
from repro.gpu.simulator import GpuSimulator

BLOCK_SIZES = (64, 128, 192, 256, 384, 512)
POOL = 262144


def test_block_size_sweep_200x20(benchmark, protocol: ExperimentProtocol):
    complexity = DataStructureComplexity(n=200, m=20)
    simulator = GpuSimulator(
        device=protocol.device,
        placement=DataPlacement.shared_ptm_jm(),
        cost_model=protocol.cost_model,
    )

    def sweep():
        return {
            block: simulator.evaluate_pool(complexity, POOL, threads_per_block=block).total_s
            for block in BLOCK_SIZES
        }

    times = benchmark(sweep)
    benchmark.extra_info["pool_times_s"] = times
    best = min(times.values())
    worst = max(times.values())
    # the paper's choice is close to the best configuration and clearly
    # better than the worst (tiny blocks under-populate the SMs)
    assert times[256] <= best * 1.10
    assert times[256] < worst
    assert times[64] == worst


def test_occupancy_by_block_size(benchmark, protocol: ExperimentProtocol):
    calculator = OccupancyCalculator(protocol.device)

    def sweep():
        return {
            block: calculator.compute(block, registers_per_thread=26).active_warps_per_sm
            for block in BLOCK_SIZES
        }

    warps = benchmark(sweep)
    benchmark.extra_info["active_warps"] = warps
    # the register file keeps 256-thread blocks at 32 active warps (the
    # figure the paper quotes) — close to the best achievable configuration
    # and well above the small 64-thread blocks
    assert warps[256] == 32
    assert warps[256] > warps[64]
    assert warps[256] >= 0.85 * max(warps.values())
