"""Ablation: how much does the device generation matter?

The paper evaluates on a Fermi-class Tesla C2050.  This ablation re-runs the
largest-instance speed-up prediction on the previous-generation Tesla C1060
(smaller shared memory, fewer resources per SM) and on the consumer GTX 480,
confirming that the C2050's larger configurable shared memory is what makes
the Table III placement possible at 200x20.
"""

from __future__ import annotations

from repro.core.mapping import recommend_placement
from repro.experiments.protocol import ExperimentProtocol
from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import GTX_480, TESLA_C1060, TESLA_C2050
from repro.gpu.simulator import GpuSimulator
from repro.perf.model import CpuCostModel

DEVICES = {"C2050": TESLA_C2050, "C1060": TESLA_C1060, "GTX480": GTX_480}
POOL = 262144


def test_device_comparison_200x20(benchmark, protocol: ExperimentProtocol):
    complexity = DataStructureComplexity(n=200, m=20)
    cpu = CpuCostModel()

    def sweep():
        results = {}
        for name, device in DEVICES.items():
            placement = recommend_placement(complexity, device, cost_model=protocol.cost_model)
            simulator = GpuSimulator(
                device=device, placement=placement, cost_model=protocol.cost_model
            )
            timing = simulator.evaluate_pool(complexity, POOL)
            results[name] = {
                "placement": placement.name,
                "speedup": cpu.pool_seconds(complexity, POOL) / timing.total_s,
            }
        return results

    results = benchmark(sweep)
    benchmark.extra_info["devices"] = results

    # the C2050 can host PTM+JM in its 48 KB shared memory; the C1060 (16 KB)
    # cannot, and must fall back to a smaller placement
    assert results["C2050"]["placement"] == "shared-PTM-JM"
    assert results["C1060"]["placement"] != "shared-PTM-JM"
    # and the Fermi cards are clearly faster than the GT200-class board
    assert results["C2050"]["speedup"] > results["C1060"]["speedup"]
