"""Segmented min-key frontier index vs linear scans: selection throughput.

With bounding offloaded and amortized, frontier *selection* is the next
serial bottleneck of the block layout: every best-first pop is an
``np.argmin`` over the packed key column and every batch selection an
``argpartition`` over the whole store — O(pending) per operation, which
dominates the iteration at 10^5–10^6 pending nodes.  The segmented index
(:class:`~repro.bb.frontier.BlockFrontier` with
``frontier_index="segmented"``) caches per-4096-row-segment key minima and
refreshes them lazily, so a steady-state pop touches a couple of segments
plus ~n/4096 cached minima instead of all n rows.

This module builds synthetic frontiers at 10^5–10^6 pending nodes, drives
the three selection workloads of the search loop —

* single-pop selection (``peek_best`` → ``discard``; the gated metric —
  pure selection ops, no harness dilution),
* the full single-step cycle (pop + push children; informational),
* batch selection (``pop_batch``, the ``_best_prefix`` path),
* tie-run extraction (``pop_min_tie_batch``),

— identically under ``frontier_index="segmented"`` and ``"linear"``, and
asserts

* both index kinds pop the identical node sequence (selection is
  bit-identical; the packed key embeds the creation-index tie-break, so
  argmin is unambiguous) — asserted in every mode;
* a >= ``SPEEDUP_FLOOR`` (3x) single-pop selection-throughput floor for
  the segmented index at >= 2*10^5 pending nodes (the pop-drain metric) — asserted in every mode
  including ``--smoke``: both sides are in-process numpy micro-kernels,
  so the *ratio* is robust even on noisy shared runners.

Runnable two ways::

    PYTHONPATH=src python benchmarks/bench_frontier_index.py                 # full: 10^6 pending
    PYTHONPATH=src python benchmarks/bench_frontier_index.py --smoke --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.bb.frontier import BlockFrontier, NodeBlock, Trail

#: Minimum segmented/linear single-pop selection-throughput ratio (CI gate).
SPEEDUP_FLOOR = 3.0

#: Pending-store sizes: the acceptance floor is gated at >= 2*10^5 pending.
FULL_PENDING = 1_000_000
SMOKE_PENDING = 200_000

N_JOBS = 20
N_MACHINES = 10

#: Children pushed back per single-step pop (keeps the store near steady
#: state, like a real search whose eliminations roughly balance branching).
CHILDREN_PER_POP = 8


def _block(frontier: BlockFrontier, lb, depth, order_start: int) -> NodeBlock:
    """A synthetic bounded block (mask/release contents never drive selection)."""
    count = lb.shape[0]
    return NodeBlock(
        scheduled_mask=np.zeros((count, N_JOBS), dtype=bool),
        release=np.zeros((count, N_MACHINES), dtype=np.int32),
        lower_bound=np.asarray(lb, dtype=np.int32),
        depth=np.asarray(depth, dtype=np.int32),
        order_index=np.arange(order_start, order_start + count, dtype=np.int32),
        trail_id=np.zeros(count, dtype=np.int32),
        trail=frontier._trail,
    )


def build_frontier(kind: str, pending: int, seed: int) -> tuple[BlockFrontier, int]:
    """A frontier holding ``pending`` synthetic nodes (identical per seed)."""
    rng = np.random.default_rng(seed)
    frontier = BlockFrontier(N_JOBS, N_MACHINES, Trail(), frontier_index=kind)
    order = 0
    while len(frontier) < pending:
        count = min(8192, pending - len(frontier))
        lb = rng.integers(500, 4000, size=count)
        depth = rng.integers(1, N_JOBS, size=count)
        frontier.push_block(_block(frontier, lb, depth, order))
        order += count
    return frontier, order


def measure_pop_drain(
    frontier: BlockFrontier, drains: int
) -> tuple[float, int]:
    """The gated metric: consecutive best-first pops, nothing else timed.

    ``peek_best`` + ``discard`` is exactly the selection half of the
    single-step loop; pushes are excluded so the measured ratio is the
    selection data structure's, not the benchmark harness's.
    """
    order_column = frontier._order
    checksum = 0
    t0 = time.perf_counter()
    for _ in range(drains):
        row = frontier.peek_best()
        checksum = (checksum * 1_000_003 + int(order_column[row])) % (1 << 61)
        frontier.discard(row)
    elapsed = time.perf_counter() - t0
    return elapsed, checksum


def measure_pop_cycle(
    frontier: BlockFrontier, order_start: int, cycles: int, seed: int
) -> tuple[float, int, int]:
    """Steady-state single-step loop: pop best, push children.

    Returns ``(elapsed_s, popped_checksum, order_end)``; the checksum is a
    deterministic digest of the popped node sequence, compared across index
    kinds to prove bit-identical selection.
    """
    rng = np.random.default_rng(seed)
    order = order_start
    checksum = 0
    t0 = time.perf_counter()
    for _ in range(cycles):
        row = frontier.peek_best()
        lb, depth, order_index, _tid, _mask, _release = frontier.row_view(row)
        checksum = (checksum * 1_000_003 + order_index) % (1 << 61)
        frontier.discard(row)
        child_lb = lb + rng.integers(0, 6, size=CHILDREN_PER_POP)
        child_depth = np.full(CHILDREN_PER_POP, min(depth + 1, N_JOBS - 1))
        frontier.push_block(_block(frontier, child_lb, child_depth, order))
        order += CHILDREN_PER_POP
    elapsed = time.perf_counter() - t0
    return elapsed, checksum, order


def measure_pop_batch(frontier: BlockFrontier, rounds: int, batch: int) -> tuple[float, int]:
    """Batch-shape selection: ``pop_batch`` + push the block back (steady state)."""
    checksum = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        block, _pruned = frontier.pop_batch(batch)
        checksum = (checksum * 1_000_003 + int(block.order_index[0])) % (1 << 61)
        frontier.push_block(block)
    elapsed = time.perf_counter() - t0
    return elapsed, checksum


def measure_tie_batch(frontier: BlockFrontier, rounds: int) -> tuple[float, int]:
    """Tie-run extraction: ``pop_min_tie_batch`` + push the run back."""
    checksum = 0
    t0 = time.perf_counter()
    for _ in range(rounds):
        block = frontier.pop_min_tie_batch(1 << 30)
        assert block is not None
        checksum = (
            checksum * 1_000_003 + int(block.order_index.sum()) + len(block)
        ) % (1 << 61)
        frontier.push_block(block)
    elapsed = time.perf_counter() - t0
    return elapsed, checksum


def measure(pending: int, cycles: int, batch_rounds: int, tie_rounds: int, seed: int) -> dict:
    """Drive the identical workload under both index kinds and compare."""
    results: dict[str, dict] = {}
    checks: dict[str, tuple] = {}
    for kind in ("linear", "segmented"):
        frontier, order = build_frontier(kind, pending, seed)
        # warm up (first refresh builds every segment cache)
        frontier.peek_best()
        drain_s, drain_sum = measure_pop_drain(frontier, cycles)
        # refill to steady state (untimed, identical nodes per seed)
        rng = np.random.default_rng(seed + 2)
        frontier.push_block(
            _block(
                frontier,
                rng.integers(500, 4000, size=cycles),
                rng.integers(1, N_JOBS, size=cycles),
                order,
            )
        )
        order += cycles
        cycle_s, cycle_sum, order = measure_pop_cycle(frontier, order, cycles, seed + 1)
        batch_s, batch_sum = measure_pop_batch(frontier, batch_rounds, 512)
        tie_s, tie_sum = measure_tie_batch(frontier, tie_rounds)
        results[kind] = {
            "pops_per_s": cycles / drain_s,
            "pop_cycles_per_s": cycles / cycle_s,
            "pop_batch_rounds_per_s": batch_rounds / batch_s,
            "tie_batch_rounds_per_s": tie_rounds / tie_s,
        }
        checks[kind] = (drain_sum, cycle_sum, batch_sum, tie_sum, len(frontier))
    assert checks["linear"] == checks["segmented"], (
        "segmented and linear indexes diverged: "
        f"linear={checks['linear']} segmented={checks['segmented']}"
    )
    return {
        "pending": pending,
        "cycles": cycles,
        "linear": results["linear"],
        "segmented": results["segmented"],
        "speedup_pop": results["segmented"]["pops_per_s"]
        / results["linear"]["pops_per_s"],
        "speedup_cycle": results["segmented"]["pop_cycles_per_s"]
        / results["linear"]["pop_cycles_per_s"],
        "speedup_batch": results["segmented"]["pop_batch_rounds_per_s"]
        / results["linear"]["pop_batch_rounds_per_s"],
        "speedup_tie": results["segmented"]["tie_batch_rounds_per_s"]
        / results["linear"]["tie_batch_rounds_per_s"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2*10^5 pending and fewer repetitions (CI smoke mode); the "
        "speed-up floor and the bit-identity checksums are still asserted",
    )
    parser.add_argument("--json", help="write the results to this path as JSON")
    args = parser.parse_args(argv)

    pending = SMOKE_PENDING if args.smoke else FULL_PENDING
    cycles = 300 if args.smoke else 1000
    batch_rounds = 20 if args.smoke else 50
    tie_rounds = 30 if args.smoke else 80

    results = measure(pending, cycles, batch_rounds, tie_rounds, seed=7)
    results["bench"] = "frontier_index"
    results["smoke"] = args.smoke
    results["speedup_floor"] = SPEEDUP_FLOOR

    print(f"pending nodes        : {pending}")
    for kind in ("linear", "segmented"):
        r = results[kind]
        print(
            f"{kind:9s} pop={r['pops_per_s']:,.0f}/s "
            f"cycle={r['pop_cycles_per_s']:,.0f}/s "
            f"batch={r['pop_batch_rounds_per_s']:,.1f}/s "
            f"tie={r['tie_batch_rounds_per_s']:,.1f}/s"
        )
    print(
        f"speedup              : pop {results['speedup_pop']:.1f}x "
        f"(floor {SPEEDUP_FLOOR}x), cycle {results['speedup_cycle']:.1f}x, "
        f"batch {results['speedup_batch']:.1f}x, tie {results['speedup_tie']:.1f}x"
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")

    assert results["speedup_pop"] >= SPEEDUP_FLOOR, (
        f"segmented pop throughput {results['speedup_pop']:.2f}x linear "
        f"misses the {SPEEDUP_FLOOR}x floor at {pending} pending nodes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
