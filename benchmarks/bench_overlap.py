"""Async offload pipeline: batch-shape wall-clock throughput vs synchronous.

The two-slot host-thread pipeline (``repro.bb.offload.AsyncOffload``)
bounds batch N on a dedicated worker thread while the driver selects and
branches batch N+1.  On the host BLAS backend the win is real because the
fused kernel v2 spends its bounding time inside GEMM calls with the GIL
released.  This benchmark drives both modes over the identical workload —
block layout, pool (batch) size 4096, a Taillard 20x10 instance explored
from an infinite incumbent so the frontier actually fills the pool — and
asserts

* **bit identity** (always, on every host): makespan, node-creation
  order, and every ``SearchStats`` counter agree between the two modes
  (compared as a SHA-256 checksum of the full tuple);
* **>= 1.25x** async-over-sync wall-clock throughput
  (``OVERLAP_FLOOR``) in full mode; smoke mode (CI shared runners)
  relaxes the floor to 1.05x so only a completely dead pipeline fails
  the job.

The floor is only meaningful where a pipeline is physically possible:
on a single-CPU host the worker and driver threads time-share one core,
so the floor check is skipped (recorded as ``floor_skipped`` in the
JSON artifact) while the bit-identity assertions still run.

Runable three ways::

    PYTHONPATH=src python benchmarks/bench_overlap.py                # full, 1.25x floor
    PYTHONPATH=src python benchmarks/bench_overlap.py --smoke --json out.json
    PYTHONPATH=src python -m pytest benchmarks/bench_overlap.py --benchmark-only
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

from repro.bb.driver import LocalBounding, SearchDriver, SearchLimits
from repro.bb.frontier import BlockFrontier, Trail, bound_block, root_block
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.taillard import taillard_instance

#: async wall-clock throughput must beat sync by 25% in full mode
OVERLAP_FLOOR = 1.25
SMOKE_FLOOR = 1.05
#: the paper regime: device pools of >= 4096 nodes per launch
POOL_SIZE = 4096
FULL_ITERATIONS = 12
SMOKE_ITERATIONS = 6

_COUNTERS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "pools_evaluated",
    "max_pool_size",
)


def host_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # macOS has no sched_getaffinity
        return os.cpu_count() or 1


def run_once(instance, overlap: str, iterations: int):
    """One batch-shape solve segment; returns (outcome, stats, wall_s)."""
    data = LowerBoundData(instance)
    driver = SearchDriver(
        instance,
        offload=LocalBounding(data),
        batch_size=POOL_SIZE,
        overlap=overlap,
        limits=SearchLimits(max_iterations=iterations),
    )
    trail = Trail()
    frontier = BlockFrontier(instance.n_jobs, instance.n_machines, trail)
    root = root_block(instance, trail)
    bound_block(data, root)
    stats = SearchStats(nodes_bounded=1)
    frontier.push_block(root)
    t0 = time.perf_counter()
    outcome = driver.run(
        frontier,
        upper_bound=float("inf"),
        best_order=(),
        stats=stats,
        trail=trail,
        next_order=1,
    )
    return outcome, stats, time.perf_counter() - t0


def tree_checksum(outcome, stats) -> str:
    """SHA-256 over every figure the explored tree determines."""
    payload = (
        outcome.upper_bound,
        tuple(outcome.best_order),
        outcome.best_value,
        outcome.completed,
        outcome.iterations,
        outcome.next_order,
        tuple(getattr(stats, name) for name in _COUNTERS),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def measure(instance, iterations: int, repeats: int) -> dict:
    """Interleaved best-of-``repeats`` walls of both modes, identity-checked."""
    for overlap in ("sync", "async"):  # warm the kernels / caches / worker
        run_once(instance, overlap, min(3, iterations))
    best: dict[str, tuple] = {}
    checksums: dict[str, str] = {}
    for _ in range(repeats):
        for overlap in ("sync", "async"):
            outcome, stats, wall = run_once(instance, overlap, iterations)
            checksum = tree_checksum(outcome, stats)
            previous = checksums.setdefault(overlap, checksum)
            assert checksum == previous, f"{overlap} mode is not deterministic"
            record = best.get(overlap)
            if record is None or wall < record[2]:
                best[overlap] = (outcome, stats, wall)

    assert checksums["async"] == checksums["sync"], (
        "async explored a different tree than sync: "
        f"{checksums['async']} != {checksums['sync']}"
    )
    sync_outcome, sync_stats, sync_wall = best["sync"]
    async_outcome, async_stats, async_wall = best["async"]
    nodes = sync_stats.nodes_bounded
    return {
        "bench": "overlap",
        "instance": instance.name or f"{instance.n_jobs}x{instance.n_machines}",
        "pool_size": POOL_SIZE,
        "iterations": iterations,
        "nodes_bounded": nodes,
        "tree_checksum": checksums["sync"],
        "sync_wall_s": sync_wall,
        "async_wall_s": async_wall,
        "sync_nodes_per_s": nodes / sync_wall,
        "async_nodes_per_s": nodes / async_wall,
        "async_over_sync_speedup": sync_wall / async_wall,
        "overlap_saved_wall_s": async_outcome.overlap_saved_wall_s,
        "sync_overlap_saved_wall_s": sync_outcome.overlap_saved_wall_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small budget and relaxed floor (CI smoke mode on noisy shared runners)",
    )
    parser.add_argument("--json", help="write the results to this path as JSON")
    args = parser.parse_args(argv)

    instance = taillard_instance(20, 10, index=1)
    iterations = SMOKE_ITERATIONS if args.smoke else FULL_ITERATIONS
    repeats = 3 if args.smoke else 5

    results = measure(instance, iterations, repeats)
    floor = SMOKE_FLOOR if args.smoke else OVERLAP_FLOOR
    cpus = host_cpus()
    enforce = cpus >= 2
    results["smoke"] = args.smoke
    results["speedup_floor"] = floor
    results["host_cpus"] = cpus
    if not enforce:
        results["floor_skipped"] = "single-CPU host: worker and driver time-share one core"

    print(f"instance          : {results['instance']} (pool {POOL_SIZE}, {iterations} iterations)")
    print(f"nodes bounded     : {results['nodes_bounded']} (identical tree, checksum match)")
    print(f"sync              : {results['sync_nodes_per_s']:10.0f} nodes/s")
    print(f"async             : {results['async_nodes_per_s']:10.0f} nodes/s")
    print(f"async/sync        : {results['async_over_sync_speedup']:.3f}x (floor {floor:.2f}x)")
    print(f"measured overlap  : {results['overlap_saved_wall_s']:.3f}s hidden behind the worker")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")

    if enforce:
        assert results["async_over_sync_speedup"] >= floor, (
            f"async throughput {results['async_over_sync_speedup']:.3f}x of sync "
            f"is below the {floor:.2f}x floor"
        )
    else:
        print(f"floor not enforced: {results['floor_skipped']}")
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry points (same measurements, one loop per test)
# --------------------------------------------------------------------- #
def test_async_explores_identical_tree():
    instance = taillard_instance(20, 10, index=1)
    sync_outcome, sync_stats, _ = run_once(instance, "sync", SMOKE_ITERATIONS)
    async_outcome, async_stats, _ = run_once(instance, "async", SMOKE_ITERATIONS)
    assert tree_checksum(async_outcome, async_stats) == tree_checksum(
        sync_outcome, sync_stats
    )


def test_sync_throughput(benchmark):
    instance = taillard_instance(20, 10, index=1)
    _, stats, _ = benchmark(lambda: run_once(instance, "sync", SMOKE_ITERATIONS))
    assert stats.nodes_bounded > 0


def test_async_throughput(benchmark):
    instance = taillard_instance(20, 10, index=1)
    _, stats, _ = benchmark(lambda: run_once(instance, "async", SMOKE_ITERATIONS))
    assert stats.nodes_bounded > 0


if __name__ == "__main__":
    sys.exit(main())
