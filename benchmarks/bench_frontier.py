"""Structure-of-arrays frontier vs object nodes: sequential solve throughput.

After the bounding kernel was vectorized (PR 1), Amdahl's law moved the
sequential engine's bottleneck into the pure-Python per-node pipeline: one
``Node`` dataclass per child, one heap entry per push, and a row-by-row
``encode_pool`` re-pack per bounding launch.  The block layout
(:mod:`repro.bb.frontier`) stores the frontier as structure-of-arrays
batches — branching, selection and elimination are array programs, bounding
reads the arrays with zero re-packing, and best-first ties are branched and
bounded in one launch — while exploring bit-for-bit the same tree.

This module measures end-to-end sequential solve throughput (nodes bounded
per second of search time) for both layouts on a Taillard 20x10 instance and
asserts

* both layouts report the identical ``best_makespan`` and identical
  ``nodes_bounded`` / ``nodes_branched`` / ``nodes_pruned`` counters;
* the stats-conservation identity ``bounded == branched + pruned + leaves``
  on a fully solved instance (both layouts);
* a >= 3x nodes/s floor for ``layout="block"`` over ``layout="object"``
  (skipped in ``--smoke`` mode: shared CI runners are too noisy for a hard
  wall-clock assertion).

Runable three ways::

    PYTHONPATH=src python benchmarks/bench_frontier.py                # full, asserts the floor
    PYTHONPATH=src python benchmarks/bench_frontier.py --smoke --json out.json
    PYTHONPATH=src python -m pytest benchmarks/bench_frontier.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bb.sequential import SequentialBranchAndBound
from repro.flowshop import random_instance
from repro.flowshop.taillard import taillard_instance

SPEEDUP_FLOOR = 3.0
#: exploration budget of the throughput measurement (identical trees in both
#: layouts under the same budget, so the counters must agree exactly)
FULL_BUDGET = 3000
SMOKE_BUDGET = 600


def run_once(instance, layout: str, max_nodes: int | None):
    """One solve; returns its :class:`~repro.bb.stats.SearchStats`."""
    engine = SequentialBranchAndBound(instance, max_nodes=max_nodes, layout=layout)
    return engine.solve()


def measure(instance, max_nodes: int, repeats: int) -> dict:
    """Interleaved best-of-``repeats`` throughput of both layouts.

    The denominator is ``stats.time_total_s`` — the search loop proper —
    so the (identical, search-independent) NEH seeding cost does not dilute
    the layout comparison.
    """
    for layout in ("object", "block"):  # warm the kernels / caches
        run_once(instance, layout, min(300, max_nodes))
    best: dict[str, object] = {}
    for _ in range(repeats):
        for layout in ("object", "block"):
            result = run_once(instance, layout, max_nodes)
            record = best.get(layout)
            if record is None or result.stats.time_total_s < record.stats.time_total_s:
                best[layout] = result
    obj, blk = best["object"], best["block"]

    for field in ("nodes_bounded", "nodes_branched", "nodes_pruned"):
        a, b = getattr(obj.stats, field), getattr(blk.stats, field)
        assert a == b, f"{field} diverged between layouts: object={a} block={b}"
    assert obj.best_makespan == blk.best_makespan, "best_makespan diverged between layouts"

    def throughput(result):
        return result.stats.nodes_bounded / result.stats.time_total_s

    return {
        "instance": instance.name or f"{instance.n_jobs}x{instance.n_machines}",
        "max_nodes": max_nodes,
        "best_makespan": obj.best_makespan,
        "nodes_bounded": obj.stats.nodes_bounded,
        "nodes_branched": obj.stats.nodes_branched,
        "nodes_pruned": obj.stats.nodes_pruned,
        "object_nodes_per_s": throughput(obj),
        "block_nodes_per_s": throughput(blk),
        "object_time_s": obj.stats.time_total_s,
        "block_time_s": blk.stats.time_total_s,
        "speedup": obj.stats.time_total_s / blk.stats.time_total_s,
    }


def check_conservation(seed: int = 3) -> dict:
    """Fully solve a small instance in both layouts; check the identity."""
    instance = random_instance(10, 8, seed=seed)
    payload: dict[str, object] = {"instance": f"10x8 seed={seed}"}
    makespans = set()
    for layout in ("object", "block"):
        result = run_once(instance, layout, None)
        stats = result.stats
        assert result.proved_optimal
        assert stats.nodes_bounded == (
            stats.nodes_branched + stats.nodes_pruned + stats.leaves_evaluated
        ), f"conservation violated in layout={layout}"
        makespans.add(result.best_makespan)
        payload[f"{layout}_nodes_bounded"] = stats.nodes_bounded
    assert len(makespans) == 1, "layouts disagree on the optimum"
    payload["best_makespan"] = makespans.pop()
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small budget, no speed-up floor assertion (CI smoke mode)",
    )
    parser.add_argument("--json", help="write the results to this path as JSON")
    args = parser.parse_args(argv)

    instance = taillard_instance(20, 10, index=1)
    budget = SMOKE_BUDGET if args.smoke else FULL_BUDGET
    repeats = 2 if args.smoke else 5

    results = measure(instance, budget, repeats)
    results["conservation"] = check_conservation()
    results["smoke"] = args.smoke
    results["speedup_floor"] = SPEEDUP_FLOOR

    print(f"instance          : {results['instance']} (budget {budget} nodes)")
    print(f"best makespan     : {results['best_makespan']} (identical in both layouts)")
    print(
        f"nodes             : bounded={results['nodes_bounded']} "
        f"branched={results['nodes_branched']} pruned={results['nodes_pruned']} "
        "(identical in both layouts)"
    )
    print(f"object layout     : {results['object_nodes_per_s']:10.0f} nodes/s")
    print(f"block layout      : {results['block_nodes_per_s']:10.0f} nodes/s")
    print(f"speedup           : {results['speedup']:.2f}x (floor {SPEEDUP_FLOOR}x)")
    print(f"conservation      : ok ({results['conservation']['instance']})")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"results written to {args.json}")

    if not args.smoke:
        assert results["speedup"] >= SPEEDUP_FLOOR, (
            f"block layout speedup {results['speedup']:.2f}x is below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    return 0


# --------------------------------------------------------------------- #
# pytest-benchmark entry points (same measurements, one layout per test)
# --------------------------------------------------------------------- #
def test_object_layout_throughput(benchmark):
    instance = taillard_instance(20, 10, index=1)
    result = benchmark(lambda: run_once(instance, "object", SMOKE_BUDGET))
    assert result.stats.nodes_bounded > 0


def test_block_layout_throughput(benchmark):
    instance = taillard_instance(20, 10, index=1)
    result = benchmark(lambda: run_once(instance, "block", SMOKE_BUDGET))
    assert result.stats.nodes_bounded > 0


def test_layouts_explore_identical_tree(benchmark):
    instance = taillard_instance(20, 10, index=1)
    obj = run_once(instance, "object", SMOKE_BUDGET)
    blk = benchmark(lambda: run_once(instance, "block", SMOKE_BUDGET))
    assert obj.best_makespan == blk.best_makespan
    assert obj.stats.nodes_bounded == blk.stats.nodes_bounded
    assert obj.stats.nodes_branched == blk.stats.nodes_branched
    assert obj.stats.nodes_pruned == blk.stats.nodes_pruned


if __name__ == "__main__":
    sys.exit(main())
