"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one artefact of the paper's evaluation (a table
or a figure), times its generation with ``pytest-benchmark``, and — so the
numbers are visible in the benchmark log — attaches the reproduced values
and the comparison against the published ones as ``extra_info``
(see :mod:`_bench_utils`).
"""

from __future__ import annotations

import pytest

from repro.experiments.protocol import ExperimentProtocol


@pytest.fixture(scope="session")
def protocol() -> ExperimentProtocol:
    """One shared protocol (device, cost models) for every benchmark."""
    return ExperimentProtocol()
