"""Static split vs work stealing: node counts and wall time.

The static-split engine maps the decomposition frontier onto the workers
once and never exchanges the incumbent, so every worker prunes against the
launch-time NEH bound for its whole lifetime.  The work-stealing engine
shares the incumbent (compare-and-swap updates + periodic polling) and lets
idle workers steal chunks from a common queue, so pruning information
propagates and the load balances dynamically.  Both are exact; the win is
the *work avoided*: fewer nodes bounded for the same proven optimum.

Runable two ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_worksteal.py --benchmark-only
    PYTHONPATH=src python benchmarks/bench_worksteal.py   # self-checking report
"""

from __future__ import annotations

import time

from repro.bb.multicore import MulticoreBranchAndBound
from repro.bb.sequential import SequentialBranchAndBound
from repro.flowshop import neh_heuristic, random_instance

N_WORKERS = 4
DEPTH = 2
#: 10 jobs x 5 machines with a suboptimal NEH seed (734 vs the 707 optimum),
#: so incumbent improvements exist for the workers to share.
INSTANCE_ARGS = dict(n_jobs=10, n_machines=5, seed=1)


def _engines(instance):
    static = MulticoreBranchAndBound(
        instance,
        n_workers=N_WORKERS,
        backend="thread",
        mode="static",
        decomposition_depth=DEPTH,
    )
    worksteal = MulticoreBranchAndBound(
        instance,
        n_workers=N_WORKERS,
        backend="thread",
        mode="worksteal",
        decomposition_depth=DEPTH,
    )
    return static, worksteal


def test_worksteal_explores_fewer_nodes_than_static(benchmark):
    instance = random_instance(**INSTANCE_ARGS)
    optimum = SequentialBranchAndBound(instance).solve().best_makespan
    static, worksteal = _engines(instance)
    static_result = static.solve()
    ws_result = benchmark(worksteal.solve)
    assert static_result.best_makespan == optimum
    assert ws_result.best_makespan == optimum
    assert ws_result.proved_optimal
    assert ws_result.stats.nodes_bounded < static_result.stats.nodes_bounded


def test_static_split_baseline(benchmark):
    instance = random_instance(**INSTANCE_ARGS)
    static, _ = _engines(instance)
    result = benchmark(static.solve)
    assert result.proved_optimal


# --------------------------------------------------------------------- #
# Script mode: self-checking report
# --------------------------------------------------------------------- #
def main() -> int:
    instance = random_instance(**INSTANCE_ARGS)
    neh = neh_heuristic(instance).makespan
    serial = SequentialBranchAndBound(instance).solve()
    print(
        f"instance {instance.name or '10x5'}: optimum {serial.best_makespan}, "
        f"NEH seed {neh}, serial nodes {serial.stats.nodes_bounded}"
    )
    print(f"parallel engines: {N_WORKERS} workers, depth-{DEPTH} frontier, thread backend")

    static, worksteal = _engines(instance)
    rows = []
    for label, engine in (("static split", static), ("work stealing", worksteal)):
        start = time.perf_counter()
        result = engine.solve()
        wall = time.perf_counter() - start
        assert result.best_makespan == serial.best_makespan, f"{label} diverged from serial"
        rows.append((label, result.stats.nodes_bounded, result.stats.nodes_pruned, wall))
        print(
            f"  {label:<14}: {result.stats.nodes_bounded:>7} nodes bounded, "
            f"{result.stats.nodes_pruned:>7} pruned, {wall * 1e3:8.1f} ms"
        )

    static_nodes, ws_nodes = rows[0][1], rows[1][1]
    ratio = static_nodes / ws_nodes if ws_nodes else float("inf")
    print(f"  node reduction: {ratio:.2f}x fewer nodes with the shared incumbent")
    if ws_nodes >= static_nodes:
        print("FAIL: work stealing did not explore fewer nodes than the static split")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
