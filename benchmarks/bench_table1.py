"""Benchmark / regeneration of Table I (data-structure complexity).

Table I is analytical; the benchmark times its computation for the largest
instance class and checks the exact values the paper quotes (38 KB for JM
and LM, 4 KB for PTM on 200x20).
"""

from __future__ import annotations

from repro.experiments.table1 import table1


def test_table1_200x20(benchmark):
    rows = benchmark(table1, 200, 20)
    by_name = {r.structure: r for r in rows}
    assert by_name["JM"].size_bytes_packed == 38000
    assert by_name["LM"].size_bytes_packed == 38000
    assert by_name["PTM"].size_bytes_packed == 4000
    assert by_name["PTM"].accesses == 200 * 20 * 19
    benchmark.extra_info["rows"] = [
        {
            "structure": r.structure,
            "size": r.size_elements,
            "accesses": r.accesses,
            "packed_bytes": r.size_bytes_packed,
        }
        for r in rows
    ]


def test_table1_all_paper_classes(benchmark):
    def build_all():
        return {n: table1(n, 20) for n in (20, 50, 100, 200)}

    tables = benchmark(build_all)
    # the shared-memory capacity argument: JM+PTM fit in 48 KB for every class
    for n, rows in tables.items():
        by_name = {r.structure: r for r in rows}
        assert by_name["JM"].size_bytes_packed + by_name["PTM"].size_bytes_packed <= 48 * 1024
