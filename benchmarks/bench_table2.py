"""Benchmark / regeneration of Table II (all matrices in global memory).

Regenerates the full instance x pool-size speed-up sweep with the simulated
Tesla C2050 and compares every cell against the published values.
"""

from __future__ import annotations

from _bench_utils import attach_table

from repro.experiments import PAPER_TABLE2, table2


def test_table2_full_sweep(benchmark, protocol):
    table = benchmark(table2, protocol=protocol)
    attach_table(benchmark, table, PAPER_TABLE2)

    comparison = table.compare(PAPER_TABLE2)
    assert comparison.mean_absolute_relative_error < 0.15

    # shape: speed-up grows with instance size at the largest pool
    column = [table.get(k, 262144) for k in ((20, 20), (50, 20), (100, 20), (200, 20))]
    assert column == sorted(column)
    # shape: the best pool size grows with the instance size
    assert table.best_column((200, 20)) >= 65536
    assert table.best_column((20, 20)) <= 32768


def test_table2_row_200x20(benchmark, protocol):
    """The headline row: up to ~x77 for 200x20 with global memory only."""
    table = benchmark(table2, instances=((200, 20),), protocol=protocol)
    attach_table(benchmark, table, {(200, 20): PAPER_TABLE2[(200, 20)]})
    peak = max(table.row_values((200, 20)))
    assert 60 <= peak <= 95
