"""Benchmark / regeneration of Figure 4 (global vs shared placement).

Reproduces the two curves of Figure 4 (speed-up per instance class at pool
size 262144 for the all-global and shared-PTM-JM placements) and checks the
figure's two qualitative claims: the shared placement always wins, and its
advantage grows with the instance size.
"""

from __future__ import annotations

from _bench_utils import attach_series

from repro.experiments import PAPER_FIGURE4, figure4


def test_figure4_series(benchmark, protocol):
    series = benchmark(figure4, protocol=protocol)
    attach_series(benchmark, series, PAPER_FIGURE4)

    shared = series["shared_ptm_jm"]
    global_ = series["all_global"]

    # claim 1: shared placement dominates for every instance class
    for x in shared.points:
        assert shared.points[x] > global_.points[x]

    # claim 2: both curves increase with the instance size, and the gap widens
    assert shared.values() == sorted(shared.values())
    assert global_.values() == sorted(global_.values())
    gaps = [shared.points[x] - global_.points[x] for x in sorted(shared.points)]
    assert gaps[-1] > gaps[0]

    # magnitude: the largest class reaches ~x100 with the shared placement
    assert 85 <= shared.points[200] <= 115
