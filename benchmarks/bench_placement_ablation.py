"""Ablation: every candidate data placement, not just the paper's two.

DESIGN.md calls out the data placement as a key design choice; this ablation
ranks all candidate placements (all-global, PTM+JM, JM only, PTM only, LM
only, PTM+LM, JM+LM) by the speed-up they yield on the largest instance
class and checks that the paper's recommendation is the best *feasible* one.
"""

from __future__ import annotations

from repro.core.mapping import default_candidates
from repro.experiments.protocol import ExperimentProtocol
from repro.experiments.table2 import speedup_table
from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.placement import DataPlacement

INSTANCE = (200, 20)
POOL = 262144


def test_placement_ablation_200x20(benchmark, protocol: ExperimentProtocol):
    complexity = DataStructureComplexity(n=INSTANCE[0], m=INSTANCE[1])

    def sweep():
        results = {}
        for placement in default_candidates():
            hierarchy = MemoryHierarchy(protocol.device, placement.cache_config)
            if not placement.fits(complexity, hierarchy):
                continue
            table = speedup_table(
                placement,
                f"ablation {placement.name}",
                instances=(INSTANCE,),
                pool_sizes=(POOL,),
                protocol=protocol,
                add_average=False,
            )
            results[placement.name] = table.get(INSTANCE, POOL)
        return results

    results = benchmark(sweep)
    benchmark.extra_info["speedups"] = results

    assert "shared-PTM-JM" in results
    assert "all-global" in results
    best = max(results, key=lambda name: results[name])
    assert best == "shared-PTM-JM"
    # placements that waste shared memory on LM (lower access frequency) are
    # never better than the paper's choice
    for name, value in results.items():
        if "LM" in name:
            assert value <= results["shared-PTM-JM"]


def test_cache_config_matters_for_all_global(benchmark, protocol: ExperimentProtocol):
    """Keeping 48 KB of L1 (PREFER_L1) is the right call for the all-global
    placement — flipping the Fermi split to 48 KB shared hurts it."""
    complexity = DataStructureComplexity(n=INSTANCE[0], m=INSTANCE[1])

    def sweep():
        from repro.gpu.memory import FermiCacheConfig
        from repro.gpu.simulator import GpuSimulator

        out = {}
        for config in (FermiCacheConfig.PREFER_L1, FermiCacheConfig.PREFER_SHARED):
            placement = DataPlacement(
                assignment={}, cache_config=config, name=f"global-{config.value}"
            )
            sim = GpuSimulator(
                device=protocol.device, placement=placement, cost_model=protocol.cost_model
            )
            out[config.value] = sim.evaluate_pool(complexity, POOL).total_s
        return out

    times = benchmark(sweep)
    benchmark.extra_info["pool_times_s"] = times
    assert times["prefer_l1"] <= times["prefer_shared"]
