"""Kernel v2 vs v1: launch throughput and end-to-end engine wall-clock.

The v1 batched kernel vectorises the pool axis only, leaving a
``n_couples * n_jobs`` Python loop per launch (3 800 interpreter round
trips on an ``m = 20`` Taillard instance).  Kernel v2 vectorises the
machine-couple axis as well (closed-form BLAS evaluation for small ``n``,
``(B, n_couples)`` scan tensors otherwise) and returns bit-identical
bounds.  This module measures both:

* launch throughput of one batched evaluation at the paper's pool sizes
  (the acceptance bar is a >= 5x improvement at pool >= 4096 on a
  20-machine instance);
* end-to-end wall-clock of the sequential and GPU-simulator engines, which
  route every bounding call through the selected kernel.

Runable two ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_v2.py --benchmark-only
    PYTHONPATH=src python benchmarks/bench_kernel_v2.py   # self-checking report
"""

from __future__ import annotations

import time

import numpy as np

from repro.bb.sequential import SequentialBranchAndBound
from repro.core.config import GpuBBConfig
from repro.core.gpu_bb import GpuBranchAndBound
from repro.experiments.protocol import synthetic_pool
from repro.flowshop import random_instance, taillard_instance
from repro.flowshop.bounds import LowerBoundData, lower_bound_batch, lower_bound_batch_v2

POOL_SIZE = 4096
SPEEDUP_FLOOR = 5.0


def _launch_inputs(n_jobs=20, n_machines=20, pool_size=POOL_SIZE):
    instance = taillard_instance(n_jobs, n_machines, index=1)
    data = LowerBoundData(instance)
    mask, release = synthetic_pool(instance, pool_size, seed=1)
    return data, mask, release


def test_kernel_v1_launch_20x20(benchmark):
    data, mask, release = _launch_inputs()
    values = benchmark(lower_bound_batch, data, mask, release)
    assert values.shape == (POOL_SIZE,)


def test_kernel_v2_launch_20x20(benchmark):
    data, mask, release = _launch_inputs()
    lower_bound_batch_v2(data, mask, release)  # build the cached tensors
    values = benchmark(lower_bound_batch_v2, data, mask, release)
    assert values.shape == (POOL_SIZE,)


def test_kernel_v2_matches_v1_on_large_pool(benchmark):
    data, mask, release = _launch_inputs(pool_size=8192)
    v2 = benchmark(lower_bound_batch_v2, data, mask, release)
    assert np.array_equal(v2, lower_bound_batch(data, mask, release))


def test_kernel_v2_scan_strategy_launch(benchmark):
    """The scan strategy (used for very large n_jobs) on the same pool."""
    data, mask, release = _launch_inputs()
    values = benchmark(lower_bound_batch_v2, data, mask, release, strategy="scan")
    assert np.array_equal(values, lower_bound_batch(data, mask, release))


def test_sequential_engine_v2_end_to_end(benchmark):
    instance = random_instance(11, 10, seed=3)
    result = benchmark(lambda: SequentialBranchAndBound(instance, kernel="v2").solve())
    assert result.proved_optimal


def test_gpu_engine_v2_end_to_end(benchmark):
    instance = random_instance(10, 10, seed=5)
    config = GpuBBConfig(pool_size=256, kernel="v2")
    result = benchmark(lambda: GpuBranchAndBound(instance, config).solve())
    assert result.proved_optimal


# --------------------------------------------------------------------- #
# Script mode: self-checking speedup report
# --------------------------------------------------------------------- #
def _time_launch(fn, *args, reps=5, **kwargs):
    fn(*args, **kwargs)  # warm up caches / workspaces
    start = time.perf_counter()
    for _ in range(reps):
        fn(*args, **kwargs)
    return (time.perf_counter() - start) / reps


def main() -> int:
    print(f"kernel v1 vs v2 launch throughput (pool = {POOL_SIZE}, ta 20x20)")
    data, mask, release = _launch_inputs()
    reference = lower_bound_batch(data, mask, release)
    for strategy in (None, "gemm", "scan"):
        out = lower_bound_batch_v2(data, mask, release, strategy=strategy)
        assert np.array_equal(out, reference), f"strategy {strategy} diverged"
    t_v1 = _time_launch(lower_bound_batch, data, mask, release)
    t_v2 = _time_launch(lower_bound_batch_v2, data, mask, release)
    t_scan = _time_launch(lower_bound_batch_v2, data, mask, release, strategy="scan")
    speedup = t_v1 / t_v2
    throughput = POOL_SIZE / t_v2
    print(f"  v1        : {t_v1 * 1e3:8.1f} ms/launch  ({POOL_SIZE / t_v1:10.0f} bounds/s)")
    print(f"  v2 (auto) : {t_v2 * 1e3:8.1f} ms/launch  ({throughput:10.0f} bounds/s)")
    print(f"  v2 (scan) : {t_scan * 1e3:8.1f} ms/launch  ({POOL_SIZE / t_scan:10.0f} bounds/s)")
    print(f"  launch speedup v2/v1: {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)")

    print("end-to-end engine wall-clock (same tree either kernel)")
    instance = random_instance(11, 10, seed=3)
    for kernel in ("v1", "v2"):
        start = time.perf_counter()
        seq = SequentialBranchAndBound(instance, kernel=kernel).solve()
        seq_s = time.perf_counter() - start
        start = time.perf_counter()
        gpu = GpuBranchAndBound(instance, GpuBBConfig(pool_size=256, kernel=kernel)).solve()
        gpu_s = time.perf_counter() - start
        assert seq.best_makespan == gpu.best_makespan
        print(f"  kernel {kernel}: sequential {seq_s * 1e3:.1f} ms, gpu-sim {gpu_s * 1e3:.1f} ms")

    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: v2 launch speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:.0f}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
