"""Wall-clock timing utilities for the measured benchmarks.

The experiment harness reports two kinds of numbers: *modelled* times from
the simulator/cost models and *measured* times of the actual Python
implementations (scalar vs vectorised bounding, serial vs process-parallel
search).  These helpers keep the measured side honest: a monotonic timer, a
context-manager :class:`Timer`, and a small repeat-and-take-best measurement
routine in the spirit of :mod:`timeit`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

__all__ = ["Timer", "measure_callable", "estimate_timer_resolution"]

T = TypeVar("T")


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock time.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_s >= 0.0
    True
    """

    label: str = ""
    elapsed_s: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        if self._running:
            raise RuntimeError("timer already running")
        self._running = True
        self._start = time.perf_counter()

    def stop(self) -> float:
        if not self._running:
            raise RuntimeError("timer is not running")
        self.elapsed_s += time.perf_counter() - self._start
        self._running = False
        return self.elapsed_s

    def reset(self) -> None:
        self.elapsed_s = 0.0
        self._running = False


@dataclass(frozen=True)
class Measurement:
    """Result of :func:`measure_callable`."""

    best_s: float
    mean_s: float
    repeats: int
    result: object = None


def measure_callable(
    func: Callable[[], T],
    repeats: int = 3,
    warmup: int = 1,
) -> Measurement:
    """Measure ``func`` a few times and keep the best / mean wall-clock time.

    A small number of warm-up calls is executed first so one-time costs
    (lazy imports, NumPy buffer allocation) do not pollute the measurement.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    result: object = None
    for _ in range(warmup):
        result = func()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        times.append(time.perf_counter() - start)
    return Measurement(
        best_s=min(times), mean_s=sum(times) / len(times), repeats=repeats, result=result
    )


def estimate_timer_resolution(samples: int = 200) -> float:
    """Estimate the resolution of :func:`time.perf_counter` on this host."""
    if samples < 2:
        raise ValueError("samples must be >= 2")
    deltas = []
    previous = time.perf_counter()
    for _ in range(samples):
        current = time.perf_counter()
        if current != previous:
            deltas.append(current - previous)
            previous = current
    return min(deltas) if deltas else 0.0
