"""CPU-side cost models.

Two models live here:

* :class:`CpuCostModel` — the per-lower-bound cost of the *serial* B&B on
  one CPU core.  This is the ``T_cpu`` side of every speed-up ratio in the
  paper (Tables II, III, IV and Figures 4, 5).
* :class:`MulticoreScalingModel` — the scaling behaviour of the
  multi-threaded B&B of Section V.  The paper observes a clearly sub-linear
  speed-up (×4 with 3 threads up to only ×9–×11 with 9–11 threads) and
  attributes the flattening to "additional page faults and context switches"
  — i.e. a per-thread contention overhead that grows with the thread count,
  plus a serial fraction (pool management) that cannot be parallelised.
  The model combines both mechanisms (Amdahl + linear contention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.flowshop.bounds import DataStructureComplexity
from repro.gpu.device import CpuSpec, XEON_E5520, CORE_I7_970, KIB

__all__ = ["CpuCostModel", "MulticoreScalingModel"]


@dataclass(frozen=True)
class CpuCostModel:
    """Per-lower-bound execution cost of the serial B&B on one CPU core.

    The lower bound performs ``m(m-1)/2 * n`` inner iterations (Johnson scan
    over every machine couple).  On a CPU each iteration costs a handful of
    cycles; when the instance matrices (stored as 4-byte ``int`` on the
    host) overflow the per-core cache the cost per iteration rises — this is
    why, in the paper, the serial bound becomes relatively *more* expensive
    on the big 200x20 instances, which in turn is part of why the GPU
    speed-up keeps growing with the instance size.

    Parameters
    ----------
    cpu:
        The CPU executing the serial reference (default: the paper's
        Xeon E5520 host).
    cycles_per_iteration:
        Cost of one inner iteration when the working set is cache resident.
    cache_penalty_cycles:
        Additional cycles per iteration when the working set completely
        overflows the cache (scaled linearly in between).
    cache_bytes:
        Effective per-core cache capacity (L2 on Nehalem-class CPUs).
    host_element_bytes:
        Size of one matrix element on the host (the C implementation uses
        ``int``).
    """

    cpu: CpuSpec = XEON_E5520
    cycles_per_iteration: float = 8.0
    cache_penalty_cycles: float = 3.0
    cache_bytes: int = 256 * KIB
    host_element_bytes: int = 4
    #: fixed cost per machine couple (loop setup, the min() reductions of
    #: lines 06-07/18 of the pseudo-code, branch mispredictions); it is
    #: amortised over ``n`` inner iterations so it only matters for small
    #: instances — which is why the serial bound is relatively more
    #: expensive per iteration on 20x20 than on 200x20
    per_couple_overhead_cycles: float = 25.0

    # ------------------------------------------------------------------ #
    def working_set_bytes(self, complexity: DataStructureComplexity) -> int:
        """Bytes touched per bound evaluation on the host (PTM + LM + JM)."""
        sizes = complexity.sizes()
        return (sizes["PTM"] + sizes["LM"] + sizes["JM"]) * self.host_element_bytes

    def cycles_per_iteration_effective(self, complexity: DataStructureComplexity) -> float:
        """Per-iteration cycles including the cache-pressure penalty."""
        pressure = min(1.0, self.working_set_bytes(complexity) / self.cache_bytes)
        return self.cycles_per_iteration + self.cache_penalty_cycles * pressure

    def lower_bound_cycles(
        self, complexity: DataStructureComplexity, n_remaining: int | None = None
    ) -> float:
        """Cycles of one lower-bound evaluation."""
        n = complexity.n if n_remaining is None else int(n_remaining)
        iterations = complexity.n_couples * complexity.n
        # already-scheduled jobs are skipped cheaply: charge them 1 cycle
        useful = complexity.n_couples * n
        skipped = iterations - useful
        per_iter = self.cycles_per_iteration_effective(complexity)
        overhead = complexity.n_couples * self.per_couple_overhead_cycles
        return useful * per_iter + skipped * 1.0 + overhead

    def lower_bound_seconds(
        self, complexity: DataStructureComplexity, n_remaining: int | None = None
    ) -> float:
        """Seconds of one lower-bound evaluation on one core."""
        return self.lower_bound_cycles(complexity, n_remaining) / (self.cpu.clock_ghz * 1e9)

    def pool_seconds(
        self,
        complexity: DataStructureComplexity,
        pool_size: int,
        n_remaining: int | None = None,
        bounding_fraction: float = 0.985,
    ) -> float:
        """Serial time to bound a pool of ``pool_size`` sub-problems.

        ``bounding_fraction`` is the share of the total B&B time spent in
        the bounding operator (the paper measures ~98.5 %); the remaining
        1.5 % (selection, branching, elimination) is added on top so the
        serial reference reflects a full B&B iteration, not just the kernel.
        """
        if pool_size < 0:
            raise ValueError("pool_size must be non-negative")
        if not 0.0 < bounding_fraction <= 1.0:
            raise ValueError("bounding_fraction must be in (0, 1]")
        bounding = pool_size * self.lower_bound_seconds(complexity, n_remaining)
        return bounding / bounding_fraction


@dataclass(frozen=True)
class MulticoreScalingModel:
    """Scaling model of the multi-threaded (pthread) B&B of Section V.

    ``speedup(t) = t_eff / (serial_fraction * t_eff + (1 - serial_fraction))``
    with ``t_eff = t / (1 + contention_per_thread * (t - 1))`` — an Amdahl
    law whose parallel part is degraded by a per-thread contention term
    (page faults, context switches, shared work-pool locking).

    Default constants are chosen so the modelled speed-ups land in the
    ranges of Table IV (×4–×4.4 with 3 threads, ×9–×11 with 9–11 threads on
    a 6-core / 12-thread i7-970); they are documented calibration constants,
    not per-row fits.
    """

    cpu: CpuSpec = CORE_I7_970
    #: the CPU running the *serial* reference the speed-ups are computed
    #: against (the paper normalises both the GPU and the multi-threaded
    #: runs to a single core of the Xeon E5520 host)
    reference_cpu: CpuSpec = XEON_E5520
    #: fraction of the serial runtime that cannot be parallelised (pool management)
    serial_fraction: float = 0.005
    #: relative throughput loss added by every extra thread
    contention_per_thread: float = 0.02
    #: additional efficiency loss per thread beyond the physical core count
    #: (hyper-threads share execution resources)
    smt_efficiency: float = 0.6
    #: instance-size sensitivity: larger instances stress the shared caches
    #: slightly more, which is why the paper's Table IV rows decrease a
    #: little from 20x20 to 200x20
    cache_sharing_penalty: float = 0.04

    @property
    def per_core_performance_ratio(self) -> float:
        """Single-core performance of :attr:`cpu` relative to the reference.

        The i7-970 runs at 3.20 GHz vs the reference Xeon's 2.27 GHz, which
        is why Table IV reports speed-ups slightly above the thread count
        for small thread counts.
        """
        return self.cpu.clock_ghz / self.reference_cpu.clock_ghz

    def effective_parallelism(self, n_threads: int) -> float:
        """Useful parallelism extracted by ``n_threads`` software threads."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        physical = min(n_threads, self.cpu.n_cores)
        extra = max(0, n_threads - self.cpu.n_cores)
        raw = physical + self.smt_efficiency * extra
        contention = 1.0 + self.contention_per_thread * (n_threads - 1)
        return raw / contention

    def speedup(self, n_threads: int, complexity: DataStructureComplexity | None = None) -> float:
        """Speed-up over the serial B&B with ``n_threads`` worker threads."""
        parallel = self.effective_parallelism(n_threads)
        amdahl = 1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / parallel)
        base = amdahl * self.per_core_performance_ratio
        if complexity is None:
            return base
        # mild instance-size degradation (shared LLC pressure)
        size_factor = 1.0 - self.cache_sharing_penalty * math.log10(max(complexity.n, 10) / 10.0)
        return base * size_factor

    def speedup_for_gflops(
        self, gflops: float, complexity: DataStructureComplexity | None = None
    ) -> float:
        """Speed-up of the multi-threaded B&B given an aggregate GFLOPS budget.

        Section V compares the GPU and the multi-threaded CPU at equal
        theoretical peak; this translates a GFLOPS budget into a thread
        count on the reference CPU and evaluates the scaling model there.
        """
        threads = max(1, int(round(self.cpu.cores_for_gflops(gflops))))
        return self.speedup(threads, complexity)
