"""Performance modelling and measurement helpers.

* :mod:`~repro.perf.model` — the CPU-side cost models (per-lower-bound cost
  of the serial B&B, contention model of the multi-threaded B&B) that pair
  with the GPU simulator to produce the paper's speed-up tables.
* :mod:`~repro.perf.flops` — theoretical GFLOPS peaks used by the
  "equal computational power" comparison of Section V.
* :mod:`~repro.perf.speedup` — speed-up / efficiency arithmetic.
* :mod:`~repro.perf.timing` — wall-clock timers and calibration utilities
  for the measured benchmarks.
"""

from repro.perf.model import CpuCostModel, MulticoreScalingModel
from repro.perf.flops import (
    theoretical_gflops,
    cores_for_equal_gflops,
    FlopsBudget,
)
from repro.perf.speedup import speedup, efficiency, SpeedupSeries
from repro.perf.timing import Timer, measure_callable, estimate_timer_resolution

__all__ = [
    "CpuCostModel",
    "MulticoreScalingModel",
    "theoretical_gflops",
    "cores_for_equal_gflops",
    "FlopsBudget",
    "speedup",
    "efficiency",
    "SpeedupSeries",
    "Timer",
    "measure_callable",
    "estimate_timer_resolution",
]
