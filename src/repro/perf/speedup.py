"""Speed-up and parallel-efficiency arithmetic.

The paper's "parallel efficiency" is the ratio ``T_cpu / T_gpu`` (it is a
speed-up, not an efficiency in the classical sense); these helpers keep that
definition in one place and provide a small container for speed-up series
(one value per pool size / thread count) used by the experiment harness and
the report formatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["speedup", "efficiency", "SpeedupSeries"]


def speedup(serial_time: float, parallel_time: float) -> float:
    """``T_serial / T_parallel`` (the paper's "parallel efficiency")."""
    if serial_time < 0 or parallel_time <= 0:
        raise ValueError("times must be positive (serial may be zero)")
    return serial_time / parallel_time


def efficiency(serial_time: float, parallel_time: float, n_workers: int) -> float:
    """Classical parallel efficiency: speed-up divided by the worker count."""
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    return speedup(serial_time, parallel_time) / n_workers


@dataclass
class SpeedupSeries:
    """A labelled series of speed-ups, e.g. one table row of the paper.

    ``points`` maps the x-value (pool size, thread count, ...) to the
    speed-up achieved there.
    """

    label: str
    points: dict[float, float] = field(default_factory=dict)

    def add(self, x: float, value: float) -> None:
        if value <= 0:
            raise ValueError("speed-ups must be positive")
        self.points[float(x)] = float(value)

    def xs(self) -> list[float]:
        return sorted(self.points)

    def values(self) -> list[float]:
        return [self.points[x] for x in self.xs()]

    @property
    def best(self) -> tuple[float, float]:
        """``(x, speedup)`` of the best point."""
        if not self.points:
            raise ValueError("empty series")
        x = max(self.points, key=lambda key: self.points[key])
        return x, self.points[x]

    @property
    def mean(self) -> float:
        if not self.points:
            raise ValueError("empty series")
        return sum(self.points.values()) / len(self.points)

    def relative_to(self, other: "SpeedupSeries") -> "SpeedupSeries":
        """Point-wise ratio of two series (e.g. shared-memory vs all-global)."""
        common = sorted(set(self.points) & set(other.points))
        ratio = SpeedupSeries(label=f"{self.label} / {other.label}")
        for x in common:
            ratio.add(x, self.points[x] / other.points[x])
        return ratio

    @classmethod
    def from_mapping(cls, label: str, mapping: Mapping[float, float]) -> "SpeedupSeries":
        series = cls(label=label)
        for x, value in mapping.items():
            series.add(x, value)
        return series

    @classmethod
    def from_pairs(cls, label: str, pairs: Iterable[tuple[float, float]]) -> "SpeedupSeries":
        series = cls(label=label)
        for x, value in pairs:
            series.add(x, value)
        return series
