"""Theoretical GFLOPS accounting (Section V's "equal computational power").

The paper compares the GPU-accelerated B&B against a multi-threaded CPU B&B
*at equal theoretical peak*: the Tesla C2050 peaks at ~515 double-precision
GFLOPS, which matches roughly 7 cores of the i7-970 (76.8 GFLOPS / 6 cores =
12.8 GFLOPS per core, 7 x 12.8 ~ 90... the paper's Table IV uses the chip's
aggregate 537.6 GFLOPS figure for 7 threads).  These helpers centralise that
arithmetic so the Figure 5 harness and the tests agree on the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import CpuSpec, DeviceSpec

__all__ = ["theoretical_gflops", "cores_for_equal_gflops", "FlopsBudget", "TABLE_IV_GFLOPS"]


#: The "Theoretical Peak of GFLOPS" row of Table IV (3/5/7/9/11 threads).
#: The paper scales the i7-970 per-thread peak of 76.8 GFLOPS linearly with
#: the thread count (76.8 x t), i.e. it treats each of the 11 threads as a
#: full 76.8-GFLOPS core; we keep the published numbers verbatim here.
TABLE_IV_GFLOPS: dict[int, float] = {3: 230.4, 5: 384.0, 7: 537.6, 9: 691.2, 11: 844.8}


def theoretical_gflops(spec: DeviceSpec | CpuSpec, n_cores: int | None = None) -> float:
    """Theoretical double-precision peak of a device or of ``n_cores`` of a CPU."""
    if isinstance(spec, DeviceSpec):
        if n_cores is not None:
            raise ValueError("n_cores only applies to CPU specifications")
        return spec.peak_gflops_double
    if n_cores is None:
        n_cores = spec.n_cores
    return spec.gflops_for_cores(n_cores)


def cores_for_equal_gflops(cpu: CpuSpec, device: DeviceSpec) -> float:
    """How many CPU cores match the device's theoretical peak (may be fractional)."""
    return cpu.cores_for_gflops(device.peak_gflops_double)


@dataclass(frozen=True)
class FlopsBudget:
    """A fixed computational-power budget shared by two platforms.

    Used by the Figure 5 harness: pick a budget (~500 GFLOPS, the C2050
    peak), express it as a CPU thread count, and compare the two speed-ups.
    """

    gflops: float

    def __post_init__(self) -> None:
        if self.gflops <= 0:
            raise ValueError("gflops must be positive")

    def cpu_threads(self, cpu: CpuSpec, per_thread_gflops: float | None = None) -> int:
        """Thread count whose aggregate theoretical peak reaches the budget.

        The paper's accounting gives every thread the per-core peak
        (Table IV's GFLOPS row); ``per_thread_gflops`` can override that.
        """
        per_thread = (
            per_thread_gflops if per_thread_gflops is not None else cpu.peak_gflops_per_core
        )
        if per_thread <= 0:
            raise ValueError("per-thread GFLOPS must be positive")
        threads = int(round(self.gflops / per_thread))
        return max(1, threads)

    def matches_device(self, device: DeviceSpec, tolerance: float = 0.2) -> bool:
        """Whether the budget is within ``tolerance`` of the device peak."""
        peak = device.peak_gflops_double
        if peak <= 0:
            return False
        return abs(self.gflops - peak) / peak <= tolerance
