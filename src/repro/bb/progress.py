"""Incumbent / optimality-gap tracking during a Branch-and-Bound run.

Long B&B runs (the paper's protocol runs for minutes to hours) are usually
monitored through two curves: the incumbent (best makespan found so far) and
the best pending lower bound, whose difference is the proven optimality gap.
:class:`ProgressTracker` records both against wall-clock time and node
counts, and can be attached to any engine via its callback hooks or fed
manually by a driver loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ProgressEvent", "ProgressTracker"]


@dataclass(frozen=True)
class ProgressEvent:
    """One sample of the search state."""

    elapsed_s: float
    nodes_explored: int
    incumbent: Optional[float]
    best_lower_bound: Optional[float]

    @property
    def gap(self) -> Optional[float]:
        """Relative optimality gap ``(UB - LB) / UB`` (``None`` when unknown)."""
        if self.incumbent is None or self.best_lower_bound is None:
            return None
        if self.incumbent <= 0:
            return None
        return max(0.0, (self.incumbent - self.best_lower_bound) / self.incumbent)


@dataclass
class ProgressTracker:
    """Record incumbent / bound updates over the lifetime of a search."""

    events: list[ProgressEvent] = field(default_factory=list)
    _start: float = field(default_factory=time.perf_counter, repr=False)
    _incumbent: Optional[float] = field(default=None, repr=False)
    _best_bound: Optional[float] = field(default=None, repr=False)
    _nodes: int = field(default=0, repr=False)

    # ------------------------------------------------------------------ #
    def record_incumbent(self, value: float, nodes_explored: Optional[int] = None) -> None:
        """Record an improved incumbent (upper bound)."""
        if self._incumbent is not None and value > self._incumbent:
            raise ValueError("the incumbent can only improve (decrease)")
        self._incumbent = float(value)
        self._sample(nodes_explored)

    def record_bound(self, value: float, nodes_explored: Optional[int] = None) -> None:
        """Record the best pending lower bound (may move up as the tree shrinks)."""
        self._best_bound = float(value)
        self._sample(nodes_explored)

    def record_nodes(self, nodes_explored: int) -> None:
        """Update the explored-node counter without taking a sample."""
        if nodes_explored < self._nodes:
            raise ValueError("nodes_explored must be non-decreasing")
        self._nodes = int(nodes_explored)

    def _sample(self, nodes_explored: Optional[int]) -> None:
        if nodes_explored is not None:
            self.record_nodes(nodes_explored)
        self.events.append(
            ProgressEvent(
                elapsed_s=time.perf_counter() - self._start,
                nodes_explored=self._nodes,
                incumbent=self._incumbent,
                best_lower_bound=self._best_bound,
            )
        )

    # ------------------------------------------------------------------ #
    @property
    def incumbent(self) -> Optional[float]:
        """Best makespan observed so far (``None`` before the first one)."""
        return self._incumbent

    @property
    def best_lower_bound(self) -> Optional[float]:
        """Tightest global lower bound observed so far."""
        return self._best_bound

    @property
    def current_gap(self) -> Optional[float]:
        """Relative incumbent/bound gap of the latest event."""
        if not self.events:
            return None
        return self.events[-1].gap

    def incumbent_trajectory(self) -> list[tuple[float, float]]:
        """``(elapsed_s, incumbent)`` samples, one per incumbent improvement."""
        trajectory = []
        last = None
        for event in self.events:
            if event.incumbent is not None and event.incumbent != last:
                trajectory.append((event.elapsed_s, event.incumbent))
                last = event.incumbent
        return trajectory

    def is_proved_optimal(self, tolerance: float = 0.0) -> bool:
        """True when the recorded gap has closed to ``tolerance``."""
        gap = self.current_gap
        return gap is not None and gap <= tolerance

    def attach_to_engine(self, engine) -> "ProgressTracker":
        """Attach to a :class:`~repro.bb.sequential.SequentialBranchAndBound`.

        The engine's ``on_incumbent`` callback is redirected to this tracker
        (the previous callback, if any, is still invoked).
        """
        previous = getattr(engine, "on_incumbent", None)

        def hook(value: int, order: tuple[int, ...]) -> None:
            self.record_incumbent(value)
            if previous is not None:
                previous(value, order)

        engine.on_incumbent = hook
        return self
