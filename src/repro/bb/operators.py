"""The four Branch-and-Bound operators as composable functions.

The paper (Section II-A) describes B&B in terms of four operators —
*selection*, *branching*, *bounding* and *elimination* — and its
contribution is precisely to move the bounding operator to the GPU while the
other three stay on the CPU.  Keeping the operators as standalone functions
lets the sequential, multi-core and GPU engines share the exact same
semantics and makes the operators individually testable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bb.node import Node
from repro.bb.pool import NodePool
from repro.flowshop.bounds import LowerBoundData, get_batch_kernel, lower_bound
from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "branch",
    "bound_node",
    "bound_nodes_batch",
    "bound_children_batch",
    "eliminate",
    "select_batch",
    "encode_pool",
]


def branch(node: Node, instance: FlowShopInstance) -> list[Node]:
    """Branching operator: decompose ``node`` into its one-job extensions.

    Child ``i`` schedules unscheduled job ``i`` in the next position on all
    machines (permutation flow shop).  Children that are complete schedules
    get their makespan (and hence exact bound) filled in immediately.
    """
    if node.is_leaf:
        return []
    return node.children(instance.processing_times)


def bound_node(node: Node, data: LowerBoundData, include_one_machine: bool = False) -> int:
    """Bounding operator (scalar): evaluate and store the node's lower bound."""
    if node.lower_bound is not None:
        return node.lower_bound
    value = lower_bound(
        data, node.prefix, release=node.release, include_one_machine=include_one_machine
    )
    node.lower_bound = int(value)
    return node.lower_bound


def encode_pool(
    nodes: Sequence[Node], n_jobs: int, n_machines: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pack a pool of nodes into the arrays the batched kernel consumes.

    Returns ``(scheduled_mask, release)`` of shapes ``(B, n_jobs)`` and
    ``(B, n_machines)``.  This is the host-side "pool to evaluate" buffer of
    the paper's Figure 3.
    """
    batch = len(nodes)
    mask = np.zeros((batch, n_jobs), dtype=bool)
    release = np.zeros((batch, n_machines), dtype=np.int64)
    for i, node in enumerate(nodes):
        if node.prefix:
            mask[i, np.asarray(node.prefix, dtype=np.int64)] = True
        release[i] = node.release
    return mask, release


def bound_nodes_batch(
    nodes: Sequence[Node],
    data: LowerBoundData,
    include_one_machine: bool = False,
    kernel: str = "v2",
) -> np.ndarray:
    """Bounding operator (batched): evaluate a whole pool at once.

    The values are bit-identical to calling :func:`bound_node` on every
    node — whichever ``kernel`` revision (``"v1"`` / ``"v2"``) does the
    evaluation; the bounds are also written back onto the nodes.
    """
    if not nodes:
        return np.zeros(0, dtype=np.int64)
    mask, release = encode_pool(nodes, data.n_jobs, data.n_machines)
    values = get_batch_kernel(kernel)(data, mask, release, include_one_machine=include_one_machine)
    for node, value in zip(nodes, values):
        node.lower_bound = int(value)
    return values


def bound_children_batch(
    children: Sequence[Node],
    data: LowerBoundData,
    include_one_machine: bool = False,
    kernel: str = "v2",
) -> np.ndarray:
    """Bound all children of one branched node in a single batched call.

    The CPU engines historically bounded children one scalar call at a
    time; evaluating the whole sibling set at once amortises the kernel's
    per-launch cost exactly like the GPU off-load does (one branching step
    produces up to ``n_jobs`` siblings).  Children whose bound is already
    known (complete schedules get theirs at construction) are skipped.

    Returns the bounds of *all* children, in order.
    """
    pending = [child for child in children if child.lower_bound is None]
    if pending:
        bound_nodes_batch(pending, data, include_one_machine=include_one_machine, kernel=kernel)
    return np.asarray([child.lower_bound for child in children], dtype=np.int64)


def eliminate(nodes: Iterable[Node], upper_bound: float) -> tuple[list[Node], int]:
    """Elimination operator: drop nodes whose bound cannot improve the incumbent.

    A node survives only when ``lower_bound < upper_bound`` (the paper prunes
    nodes with ``LB > UB``; using strict improvement also discards ties,
    which is correct when one incumbent achieving ``UB`` is already known).

    Returns ``(survivors, n_pruned)``.
    """
    survivors: list[Node] = []
    pruned = 0
    for node in nodes:
        if node.lower_bound is None:
            raise ValueError("eliminate() requires bounded nodes")
        if node.lower_bound < upper_bound:
            survivors.append(node)
        else:
            pruned += 1
    return survivors, pruned


def select_batch(
    pool: NodePool, max_nodes: int, upper_bound: float | None = None
) -> tuple[list[Node], int]:
    """Selection operator: take up to ``max_nodes`` nodes from the pool.

    Nodes whose stored bound already meets the current incumbent are
    discarded on the fly (they were inserted before the incumbent improved);
    this "lazy pruning" keeps the pool implementation simple while remaining
    exact.

    Returns ``(selected, n_pruned)`` so callers can credit the lazily
    discarded nodes to their pruning statistics.
    """
    selected: list[Node] = []
    n_pruned = 0
    # Not a solve loop: this IS the selection operator SearchDriver calls
    # from its single loop — it only pops/filters, never branches or bounds.
    while pool and len(selected) < max_nodes:  # repro-lint: ignore[single-loop] -- selection operator invoked BY the driver loop
        node = pool.pop()
        if (
            upper_bound is not None
            and node.lower_bound is not None
            and node.lower_bound >= upper_bound
        ):
            n_pruned += 1
            continue
        selected.append(node)
    return selected, n_pruned
