"""Work-stealing, shared-incumbent parallel Branch-and-Bound.

The paper's multi-threaded baseline (Section V) is a pthread B&B whose
workers explore disjoint parts of the tree while *sharing the incumbent*.
The historical static-split engine reproduced only the disjointness: every
worker searched its launch-time sub-tree from the launch-time NEH bound,
with no incumbent exchange and no load balancing.  This module supplies the
faithful dynamic engine:

* **oversubscribed decomposition** — the root is expanded to a prefix
  frontier (depth 2 by default), producing far more sub-tree chunks than
  workers;
* **work stealing** — the chunks sit in one shared queue and every idle
  worker steals the next one, so the load balances dynamically instead of
  being capped by the slowest static sub-tree;
* **shared incumbent** — a lock-protected bound (a ``multiprocessing.Value``
  in shared memory for the process backend) that workers compare-and-swap
  on improvement; each stolen chunk starts from the freshest bound, and
  workers poll the shared bound every ``poll_interval`` pops, re-pruning
  their open pool (:meth:`~repro.bb.pool.NodePool.prune_to`) when a peer
  tightened it.

The engine is exact — it proves the same optimum as
:class:`~repro.bb.sequential.SequentialBranchAndBound` — while exploring
fewer nodes than the static split, because pruning information propagates
between workers instead of staying private (see
``benchmarks/bench_worksteal.py``).

Each worker's exploration is the single-step shape of
:class:`~repro.bb.driver.SearchDriver` (via
:class:`~repro.bb.multicore._SubtreeSolver`): the shared-bound polling and
CAS publication are the driver's ``poll_bound`` / ``on_improve_incumbent``
hooks, and best-first workers batch ``(lb, depth)`` ties into one bounding
launch exactly like the sequential engine.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from typing import Optional

from repro.bb.sequential import BBResult
from repro.bb.stats import SearchStats
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic

__all__ = [
    "SharedIncumbent",
    "WorkStealingBranchAndBound",
    "frontier_prefixes",
    "initial_incumbent",
]


def frontier_prefixes(n_jobs: int, depth: int) -> list[tuple[int, ...]]:
    """All job prefixes of length ``depth`` (the decomposition frontier)."""
    prefixes: list[tuple[int, ...]] = [()]
    for _ in range(depth):
        extended: list[tuple[int, ...]] = []
        for prefix in prefixes:
            used = set(prefix)
            for job in range(n_jobs):
                if job not in used:
                    extended.append(prefix + (job,))
        prefixes = extended
    return prefixes


def initial_incumbent(
    instance: FlowShopInstance, initial_upper_bound: Optional[float]
) -> tuple[float, tuple[int, ...]]:
    """Launch-time incumbent: the caller's bound, or the NEH heuristic."""
    if initial_upper_bound is not None:
        return float(initial_upper_bound), ()
    heuristic = neh_heuristic(instance)
    return float(heuristic.makespan), tuple(heuristic.order)


class SharedIncumbent:
    """Incumbent bound shared by workers in one process (threads / serial).

    ``try_update`` is the compare-and-swap of the paper's pthread baseline:
    the bound only ever tightens, and a worker learns whether its candidate
    actually improved on the global state.
    """

    def __init__(self, bound: float):
        self._value = float(bound)  # guarded-by: _lock
        self._lock = threading.Lock()

    def get(self) -> float:
        """Current shared bound (a stale read is safe: bounds only tighten)."""
        # Deliberate lock-free read: floats assign atomically under the GIL
        # and the bound only ever tightens, so a stale value merely delays
        # one pruning pass — it can never prune a node that must be kept.
        return self._value  # repro-lint: ignore[guarded-by] -- documented-safe stale read, see comment above

    def try_update(self, candidate: float) -> bool:
        """Tighten the bound to ``candidate`` if it strictly improves it."""
        candidate = float(candidate)
        with self._lock:
            if candidate < self._value:
                self._value = candidate
                return True
        return False


class _ProcessSharedIncumbent:
    """Incumbent backed by a ``multiprocessing.Value`` in shared memory."""

    def __init__(self, value):
        # The mp.Value carries its own lock; every access goes through it.
        self._value = value  # guarded-by: _value

    def get(self) -> float:
        """Current shared incumbent value (lock-protected read)."""
        with self._value.get_lock():
            return self._value.value

    def try_update(self, candidate: float) -> bool:
        """Compare-and-swap: install ``candidate`` if strictly better."""
        candidate = float(candidate)
        with self._value.get_lock():
            if candidate < self._value.value:
                self._value.value = candidate
                return True
        return False


class _TaskBoard:
    """Task queue with outstanding-work termination (threads / serial).

    The historical scheme — sentinels pre-queued *behind* the chunks — only
    works while the task set is fixed at launch.  Rebalancing re-enqueues
    the live remainder of budget-cut chunks, so shutdown instead keys off
    an outstanding-task count: the worker that finishes the last task (and
    re-enqueued nothing) broadcasts one ``None`` sentinel per worker.
    ``put`` increments *before* the item is visible and workers re-enqueue
    before calling :meth:`task_done`, so the count can never reach zero
    while work remains.
    """

    def __init__(self, n_workers: int):
        self._queue: queue_module.SimpleQueue = queue_module.SimpleQueue()
        self._lock = threading.Lock()
        self._outstanding = 0  # guarded-by: _lock
        self._n_workers = n_workers

    def put(self, task) -> None:
        with self._lock:
            self._outstanding += 1
        self._queue.put(task)

    def get(self):
        return self._queue.get()

    def task_done(self) -> None:
        with self._lock:
            self._outstanding -= 1
            drained = self._outstanding == 0
        if drained:
            for _ in range(self._n_workers):
                self._queue.put(None)


class _ProcessTaskBoard:
    """Cross-process twin of :class:`_TaskBoard` (mp.Queue + mp.Value)."""

    def __init__(self, task_queue, outstanding, n_workers: int):
        self._queue = task_queue
        # The mp.Value carries its own lock; every access goes through it.
        self._outstanding = outstanding  # guarded-by: _outstanding
        self._n_workers = n_workers

    def put(self, task) -> None:
        with self._outstanding.get_lock():
            self._outstanding.value += 1
        self._queue.put(task)

    def get(self):
        return self._queue.get()

    def task_done(self) -> None:
        with self._outstanding.get_lock():
            self._outstanding.value -= 1
            drained = self._outstanding.value == 0
        if drained:
            for _ in range(self._n_workers):
                self._queue.put(None)


def _run_tasks(instance: FlowShopInstance, board, incumbent, opts: dict) -> dict:
    """One worker's lifetime: steal chunks until a sentinel arrives.

    Tasks are either prefix tuples (seed a sub-tree) or ``("resume", blob)``
    pairs (continue a captured chunk remainder, rebalancing mode only).
    Returns the worker's merged statistics and its locally best schedule;
    the coordinator merges those across workers.
    """
    from repro.bb.multicore import _SubtreeSolver  # deferred: avoids an import cycle

    rebalance = bool(opts.get("rebalance"))
    stats = SearchStats()
    best_makespan: Optional[int] = None
    best_order: tuple[int, ...] = ()
    completed = True
    tasks_run = 0
    rebalanced = 0
    while True:
        task = board.get()
        if task is None:  # sentinel: no chunks left to steal
            break
        if task and task[0] == "resume":
            seed = {"prefix": (), "resume_from": task[1]}
        else:
            seed = {"prefix": task}
        solver = _SubtreeSolver(
            instance,
            upper_bound=opts["upper_bound"],
            selection=opts["selection"],
            max_nodes=opts["max_nodes_per_task"],
            deadline=opts["deadline"],
            kernel=opts["kernel"],
            incumbent=incumbent,
            poll_interval=opts["poll_interval"],
            layout=opts["layout"],
            max_frontier_nodes=opts.get("max_frontier_nodes"),
            frontier_index=opts.get("frontier_index", "segmented"),
            capture_incomplete=rebalance,
            **seed,
        )
        makespan, order, task_stats, task_completed = solver.run()
        stats = stats.merge(task_stats)
        tasks_run += 1
        if rebalance and solver.resume_blob is not None:
            # The unfinished remainder goes back on the board (before
            # task_done, so the outstanding count cannot hit zero while it
            # is in flight); the cut no longer truncates the search.
            board.put(("resume", solver.resume_blob))
            rebalanced += 1
            task_completed = True
        completed = completed and task_completed
        if makespan is not None and (best_makespan is None or makespan < best_makespan):
            best_makespan = makespan
            best_order = order
        board.task_done()
    return {
        "best_makespan": best_makespan,
        "best_order": best_order,
        "stats": stats,
        "completed": completed,
        "tasks_run": tasks_run,
        "rebalanced": rebalanced,
    }


def _process_worker(
    instance_payload: dict, task_queue, outstanding, result_queue, bound_value, opts: dict
):
    """Process-backend worker entry point (module level: picklable)."""
    instance = FlowShopInstance.from_dict(instance_payload)
    incumbent = _ProcessSharedIncumbent(bound_value)
    board = _ProcessTaskBoard(task_queue, outstanding, opts["n_workers"])
    result_queue.put(_run_tasks(instance, board, incumbent, opts))


def _collect_process_results(procs, result_queue) -> list[dict]:
    """Drain one result per worker, failing loudly if a worker died."""
    results: list[dict] = []
    pending = len(procs)
    while pending:
        try:
            results.append(result_queue.get(timeout=1.0))
            pending -= 1
        except queue_module.Empty:
            if not any(p.is_alive() for p in procs):
                try:
                    while pending:
                        results.append(result_queue.get(timeout=1.0))
                        pending -= 1
                except queue_module.Empty:
                    raise RuntimeError(
                        f"{pending} work-stealing worker(s) exited without reporting results"
                    ) from None
    return results


class WorkStealingBranchAndBound:
    """Dynamic parallel tree exploration with a shared incumbent.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    n_workers:
        Number of workers (defaults to the CPU count); clamped to the number
        of decomposition chunks.
    backend:
        ``"process"`` (true parallelism, default), ``"thread"`` (GIL-bound
        but still cooperative — useful in tests), or ``"serial"`` (one
        worker draining the queue in the calling thread; the incumbent still
        flows between chunks, which is what makes even the serial mode
        explore fewer nodes than the static split).
    decomposition_depth:
        Depth of the prefix frontier.  The default of 2 yields ``n(n-1)``
        chunks — an oversubscription that keeps every worker busy until the
        queue drains.
    selection:
        Selection strategy inside each worker.
    initial_upper_bound:
        Starting incumbent; ``None`` seeds it with the NEH heuristic.
    poll_interval:
        Pops between two reads of the shared bound inside a worker.
    max_nodes_per_task / max_time_s:
        Optional per-chunk exploration budgets.
    rebalance:
        When ``True``, a chunk cut by ``max_nodes_per_task`` serializes its
        live frontier (an in-memory :mod:`repro.bb.snapshot` blob) and
        re-enqueues it as a fresh task instead of truncating the search —
        ``max_nodes_per_task`` then acts as a *time-slice* that keeps the
        queue full of steal-able work rather than a hard budget, and the
        search stays exact.  Deadline-cut chunks are never re-enqueued, so
        ``max_time_s`` remains a hard stop.  Default ``False``.
    max_frontier_nodes:
        Block layout only: per-worker high-water frontier cap (see
        :class:`~repro.bb.frontier.BlockFrontier`); best-first workers fall
        back to a depth-first-restricted regime once over it, re-engaging
        best-first only below the 0.8×cap hysteresis low-water mark.
    frontier_index:
        Block layout only: per-worker frontier selection index —
        ``"segmented"`` (default) or ``"linear"`` (full-scan ablation).
    kernel:
        Batched bounding-kernel revision used by the workers.
    layout:
        Per-worker node representation: ``"block"`` (default) runs each
        worker's exploration on the structure-of-arrays frontier
        (:mod:`repro.bb.frontier`); ``"object"`` keeps the historical
        one-``Node``-per-sub-problem pipeline.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        n_workers: Optional[int] = None,
        backend: str = "process",
        decomposition_depth: int = 2,
        selection: str = "depth-first",
        initial_upper_bound: Optional[float] = None,
        max_nodes_per_task: Optional[int] = None,
        max_time_s: Optional[float] = None,
        kernel: str = "v2",
        poll_interval: int = 64,
        layout: str = "block",
        max_frontier_nodes: Optional[int] = None,
        frontier_index: str = "segmented",
        rebalance: bool = False,
    ):
        if backend not in ("process", "thread", "serial"):
            raise ValueError("backend must be 'process', 'thread' or 'serial'")
        if decomposition_depth < 1:
            raise ValueError("decomposition_depth must be >= 1")
        if poll_interval < 1:
            raise ValueError("poll_interval must be >= 1")
        if kernel not in ("v1", "v2"):
            raise ValueError(f"kernel must be 'v1' or 'v2', got {kernel!r}")
        if layout not in ("block", "object"):
            raise ValueError(f"layout must be 'block' or 'object', got {layout!r}")
        self.instance = instance
        self.n_workers = n_workers or os.cpu_count() or 1
        self.backend = backend
        self.decomposition_depth = min(decomposition_depth, instance.n_jobs)
        self.selection = selection
        self.initial_upper_bound = initial_upper_bound
        self.max_nodes_per_task = max_nodes_per_task
        self.max_time_s = max_time_s
        self.kernel = kernel
        self.poll_interval = poll_interval
        self.layout = layout
        self.max_frontier_nodes = max_frontier_nodes
        if frontier_index not in ("segmented", "linear"):
            raise ValueError(
                f"frontier_index must be 'segmented' or 'linear', got {frontier_index!r}"
            )
        self.frontier_index = frontier_index
        self.rebalance = rebalance
        #: observability: chunks whose remainders were re-enqueued by the
        #: last :meth:`solve` call (0 unless ``rebalance=True`` and some
        #: chunk hit its node budget)
        self.rebalanced_chunks = 0

    # ------------------------------------------------------------------ #
    def _opts(self, upper_bound: float) -> dict:
        # The time budget is global, not per chunk: one shared wall-clock
        # deadline (time.time() is comparable across worker processes).
        deadline = time.time() + self.max_time_s if self.max_time_s is not None else None
        return {
            "upper_bound": upper_bound,
            "selection": self.selection,
            "max_nodes_per_task": self.max_nodes_per_task,
            "deadline": deadline,
            "kernel": self.kernel,
            "poll_interval": self.poll_interval,
            "layout": self.layout,
            "max_frontier_nodes": self.max_frontier_nodes,
            "frontier_index": self.frontier_index,
            "rebalance": self.rebalance,
        }

    # ------------------------------------------------------------------ #
    def _solve_in_process(self, prefixes, n_workers: int, opts: dict) -> list[dict]:
        """Thread / serial backends: in-process board and incumbent."""
        incumbent = SharedIncumbent(opts["upper_bound"])
        board = _TaskBoard(n_workers)
        for prefix in prefixes:
            board.put(prefix)
        if self.backend == "serial" or n_workers == 1:
            return [_run_tasks(self.instance, board, incumbent, opts)]
        results: list[Optional[dict]] = [None] * n_workers
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                results[slot] = _run_tasks(self.instance, board, incumbent, opts)
            except BaseException as exc:  # noqa: BLE001 - re-raised in the caller
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(n_workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise RuntimeError(
                f"{len(errors)} work-stealing worker thread(s) failed"
            ) from errors[0]
        return [result for result in results if result is not None]

    def _solve_multiprocess(self, prefixes, n_workers: int, opts: dict) -> list[dict]:
        """Process backend: shared-memory incumbent, queue-based stealing."""
        ctx = multiprocessing.get_context()
        bound_value = ctx.Value("d", opts["upper_bound"])
        task_queue = ctx.Queue()
        outstanding = ctx.Value("i", 0)
        result_queue = ctx.Queue()
        # Shutdown keys off the shared outstanding-task count: the worker
        # that drains the board broadcasts one sentinel per worker (see
        # _TaskBoard).  A fixed behind-the-chunks sentinel row would lose
        # any remainder re-enqueued by rebalancing.
        board = _ProcessTaskBoard(task_queue, outstanding, n_workers)
        for prefix in prefixes:
            board.put(prefix)
        payload = self.instance.to_dict()
        procs = [
            ctx.Process(
                target=_process_worker,
                args=(payload, task_queue, outstanding, result_queue, bound_value, opts),
            )
            for _ in range(n_workers)
        ]
        for proc in procs:
            proc.start()
        try:
            results = _collect_process_results(procs, result_queue)
        finally:
            for proc in procs:
                proc.join(timeout=30.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
        return results

    # ------------------------------------------------------------------ #
    def solve(self) -> BBResult:
        """Run the work-stealing search and merge the workers' results."""
        start = time.perf_counter()
        upper_bound, seed_order = initial_incumbent(self.instance, self.initial_upper_bound)
        prefixes = frontier_prefixes(self.instance.n_jobs, self.decomposition_depth)
        n_workers = max(1, min(self.n_workers, len(prefixes)))
        opts = self._opts(upper_bound)
        opts["n_workers"] = n_workers

        if self.backend == "process" and n_workers > 1:
            outcomes = self._solve_multiprocess(prefixes, n_workers, opts)
        else:
            outcomes = self._solve_in_process(prefixes, n_workers, opts)

        stats = SearchStats()
        completed = True
        best_makespan: Optional[int] = None
        best_order: tuple[int, ...] = ()
        self.rebalanced_chunks = sum(int(outcome.get("rebalanced", 0)) for outcome in outcomes)
        for outcome in outcomes:
            stats = stats.merge(outcome["stats"])
            completed = completed and bool(outcome["completed"])
            makespan = outcome["best_makespan"]
            if makespan is not None and (best_makespan is None or makespan < best_makespan):
                best_makespan = int(makespan)
                best_order = tuple(outcome["best_order"])

        stats.time_total_s = time.perf_counter() - start
        if best_makespan is None:
            # No worker could strictly improve the initial bound, so the
            # bound itself is the result: proven when the search completed
            # (e.g. the caller passed the known optimum), otherwise returned
            # with ``proved_optimal=False`` like any truncated run.
            if upper_bound == float("inf"):
                raise RuntimeError(
                    "parallel search terminated without an incumbent; provide "
                    "a finite initial upper bound or let NEH seed the search"
                )
            best_makespan = int(upper_bound)
            best_order = seed_order
        return BBResult(
            instance=self.instance,
            best_makespan=best_makespan,
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
        )
