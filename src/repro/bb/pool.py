"""Pools of pending (generated but not yet examined) sub-problems.

The B&B keeps the generated-and-not-yet-branched nodes in a pool; the
*selection* operator picks which nodes to examine next.  The paper selects
nodes with the best-first strategy (smallest lower bound first) and ships
them to the GPU in large batches, so pools expose both single-node ``pop``
and batched ``pop_batch`` operations.

Three strategies are provided:

* :class:`BestFirstPool` — a binary heap keyed by the node's
  ``(lower bound, depth, creation index)``; the paper's choice.
* :class:`DepthFirstPool` — a LIFO stack; memory-frugal, used by the
  ablation benchmarks.
* :class:`FifoPool` — breadth-first, mostly useful in tests.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque
from typing import Iterable, Iterator

from repro.bb.node import Node

__all__ = ["NodePool", "BestFirstPool", "DepthFirstPool", "FifoPool", "make_pool"]


class NodePool(ABC):
    """Interface shared by every selection strategy."""

    #: human-readable strategy name
    strategy: str = "abstract"

    def __init__(self) -> None:
        self._max_size = 0

    # -- core operations ------------------------------------------------ #
    @abstractmethod
    def push(self, node: Node) -> None:
        """Insert one node."""

    @abstractmethod
    def pop(self) -> Node:
        """Remove and return the next node according to the strategy."""

    @abstractmethod
    def __len__(self) -> int:
        ...

    @abstractmethod
    def prune_to(self, upper_bound: float) -> int:
        """Drop pending nodes whose bound cannot improve ``upper_bound``.

        Called when the incumbent tightens (e.g. a peer worker of the
        work-stealing engine broadcast a better bound) so the open pool is
        re-pruned eagerly instead of node by node at selection time.
        Returns the number of nodes removed; the relative order of the
        survivors is preserved.
        """

    # -- derived operations --------------------------------------------- #
    def push_many(self, nodes: Iterable[Node]) -> None:
        """Push every node of ``nodes`` (convenience over :meth:`push`)."""
        for node in nodes:
            self.push(node)

    def pop_batch(self, max_nodes: int) -> list[Node]:
        """Remove up to ``max_nodes`` nodes (the GPU off-load batch)."""
        if max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        batch: list[Node] = []
        while len(self) and len(batch) < max_nodes:
            batch.append(self.pop())
        return batch

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def max_size_seen(self) -> int:
        """Largest number of pending nodes observed (memory high-water mark)."""
        return self._max_size

    def _record_size(self) -> None:
        if len(self) > self._max_size:
            self._max_size = len(self)

    def drain(self) -> Iterator[Node]:
        """Yield and remove every pending node."""
        while len(self):
            yield self.pop()


class BestFirstPool(NodePool):
    """Heap-based pool returning the node with the smallest lower bound first."""

    strategy = "best-first"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[tuple[int, int, int], Node]] = []

    def push(self, node: Node) -> None:
        """Insert by ``(lower bound, depth, order)`` heap key."""
        heapq.heappush(self._heap, (node.sort_key(), node))
        self._record_size()

    def pop(self) -> Node:
        """Remove and return the node with the smallest key."""
        if not self._heap:
            raise IndexError("pop from an empty pool")
        return heapq.heappop(self._heap)[1]

    def peek(self) -> Node:
        """The best pending node, without removing it."""
        if not self._heap:
            raise IndexError("peek at an empty pool")
        return self._heap[0][1]

    def best_lower_bound(self) -> int | None:
        """Smallest lower bound among pending nodes (``None`` when empty)."""
        if not self._heap:
            return None
        node = self._heap[0][1]
        return node.lower_bound

    def prune_to(self, upper_bound: float) -> int:
        """Drop every pending node with ``lower_bound >= upper_bound``."""
        kept = [
            entry
            for entry in self._heap
            if entry[1].lower_bound is None or entry[1].lower_bound < upper_bound
        ]
        removed = len(self._heap) - len(kept)
        if removed:
            self._heap = kept
            heapq.heapify(self._heap)
        return removed

    def __len__(self) -> int:
        return len(self._heap)


class DepthFirstPool(NodePool):
    """LIFO pool (depth-first exploration)."""

    strategy = "depth-first"

    def __init__(self) -> None:
        super().__init__()
        self._stack: list[Node] = []

    def push(self, node: Node) -> None:
        """Append to the stack top."""
        self._stack.append(node)
        self._record_size()

    def pop(self) -> Node:
        """Remove and return the most recently pushed node."""
        if not self._stack:
            raise IndexError("pop from an empty pool")
        return self._stack.pop()

    def prune_to(self, upper_bound: float) -> int:
        """Drop every pending node with ``lower_bound >= upper_bound``."""
        kept = [
            node
            for node in self._stack
            if node.lower_bound is None or node.lower_bound < upper_bound
        ]
        removed = len(self._stack) - len(kept)
        self._stack = kept
        return removed

    def __len__(self) -> int:
        return len(self._stack)


class FifoPool(NodePool):
    """FIFO pool (breadth-first exploration)."""

    strategy = "breadth-first"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[Node] = deque()

    def push(self, node: Node) -> None:
        """Append to the queue tail."""
        self._queue.append(node)
        self._record_size()

    def pop(self) -> Node:
        """Remove and return the oldest pending node."""
        if not self._queue:
            raise IndexError("pop from an empty pool")
        return self._queue.popleft()

    def prune_to(self, upper_bound: float) -> int:
        """Drop every pending node with ``lower_bound >= upper_bound``."""
        kept = deque(
            node
            for node in self._queue
            if node.lower_bound is None or node.lower_bound < upper_bound
        )
        removed = len(self._queue) - len(kept)
        self._queue = kept
        return removed

    def __len__(self) -> int:
        return len(self._queue)


_POOL_FACTORIES = {
    "best-first": BestFirstPool,
    "best": BestFirstPool,
    "depth-first": DepthFirstPool,
    "depth": DepthFirstPool,
    "fifo": FifoPool,
    "breadth-first": FifoPool,
}


def make_pool(strategy: str = "best-first") -> NodePool:
    """Create a pool implementing the named selection strategy."""
    key = strategy.lower()
    if key not in _POOL_FACTORIES:
        raise ValueError(
            f"unknown selection strategy {strategy!r}; choose from "
            f"{sorted(set(_POOL_FACTORIES))}"
        )
    return _POOL_FACTORIES[key]()
