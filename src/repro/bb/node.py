"""Branch-and-Bound node (sub-problem) representation.

A node of the B&B tree is a partial permutation: the jobs scheduled so far,
in order.  To keep branching cheap the node also carries

* the per-machine release times of its prefix (the ``RM`` vector), updated
  incrementally when a child is created — an ``O(m)`` operation instead of
  recomputing the prefix in ``O(depth * m)``;
* the set of scheduled jobs as a Python ``frozenset`` (fast membership) and
  lazily as a NumPy boolean mask (what the batched kernel consumes);
* the lower bound once it has been evaluated (None until then).

Nodes are ordered by ``(lower_bound, depth, creation index)`` so that a heap
of nodes directly implements the paper's best-first selection strategy with
deterministic tie-breaking.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.flowshop.instance import FlowShopInstance

__all__ = ["Node", "root_node", "advance_release"]


def advance_release(release: np.ndarray, times: np.ndarray) -> np.ndarray:
    """Release times after appending one job: the max-plus machine scan.

    Appending a job with per-machine times ``t`` turns the front ``F`` into
    ``F'[k] = max(F[k], F'[k-1]) + t[k]``, whose closed form is
    ``F' = csum + cummax(F - (csum - t))`` with ``csum`` the inclusive
    cumulative times of the job — no per-machine Python loop.  Broadcasts
    over leading axes, so one call advances a single ``(m,)`` front or a
    whole ``(B, m)`` batch of (front, job) pairs.  This is the one home of
    the recurrence shared by the object and block layouts.

    The result follows the dtype of ``release``: the object layout's int64
    ``Node.release`` vectors stay int64, while the block layout's int32
    columns (:mod:`repro.bb.frontier`) advance without leaving int32.
    """
    dtype = release.dtype if isinstance(release, np.ndarray) else np.int64
    csum = np.cumsum(times, axis=-1, dtype=dtype)
    front = release - csum
    front += times
    np.maximum.accumulate(front, axis=-1, out=front)
    front += csum
    return front

#: Fallback for nodes constructed directly (tests, ad-hoc tooling).  Search
#: engines never use it: :func:`root_node` attaches a fresh per-search
#: counter that children inherit, so creation indices — and therefore
#: selection tie-breaks and traces — are reproducible regardless of what
#: ran earlier in the process.
_node_counter = itertools.count()


@dataclass
class Node:
    """One sub-problem of the B&B tree."""

    #: jobs scheduled so far, in order
    prefix: tuple[int, ...]
    #: per-machine completion times of the prefix (the ``RM`` vector)
    release: np.ndarray
    #: number of jobs of the instance (kept to derive the unscheduled set)
    n_jobs: int
    #: lower bound of the sub-problem; ``None`` until bounded
    lower_bound: Optional[int] = None
    #: makespan when the node is a complete schedule, else ``None``
    makespan: Optional[int] = None
    #: monotonically increasing creation index (deterministic tie-break);
    #: drawn from the search's own counter when the node descends from
    #: :func:`root_node`, from the module fallback otherwise
    order_index: int = field(default_factory=lambda: next(_node_counter))
    #: per-search creation counter, inherited by every child (``None`` for
    #: nodes constructed outside a search)
    counter: Optional[Iterator[int]] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.release = np.asarray(self.release, dtype=np.int64)
        if len(self.prefix) > self.n_jobs:
            raise ValueError("prefix longer than the number of jobs")

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Number of scheduled jobs."""
        return len(self.prefix)

    @property
    def is_leaf(self) -> bool:
        """True when every job is scheduled (the node is a complete schedule)."""
        return self.depth == self.n_jobs

    @property
    def n_remaining(self) -> int:
        """Number of jobs still to schedule."""
        return self.n_jobs - self.depth

    @property
    def scheduled_set(self) -> frozenset[int]:
        """The scheduled prefix as a set (membership tests in branching)."""
        return frozenset(self.prefix)

    def unscheduled(self) -> list[int]:
        """Unscheduled jobs in increasing index order."""
        fixed = set(self.prefix)
        return [j for j in range(self.n_jobs) if j not in fixed]

    def scheduled_mask(self) -> np.ndarray:
        """Boolean mask of scheduled jobs (length ``n_jobs``)."""
        mask = np.zeros(self.n_jobs, dtype=bool)
        if self.prefix:
            mask[np.asarray(self.prefix, dtype=np.int64)] = True
        return mask

    # ------------------------------------------------------------------ #
    def child(self, job: int, processing_times: np.ndarray) -> "Node":
        """Create the child obtained by scheduling ``job`` next.

        The child's release times are derived incrementally from the
        parent's in ``O(m)``.
        """
        if job in self.prefix:
            raise ValueError(f"job {job} already scheduled in this node")
        if not 0 <= job < self.n_jobs:
            raise ValueError(f"job index {job} out of range")
        release = advance_release(self.release, processing_times[job])
        child = Node(
            prefix=self.prefix + (int(job),),
            release=release,
            n_jobs=self.n_jobs,
            order_index=(
                next(self.counter) if self.counter is not None else next(_node_counter)
            ),
            counter=self.counter,
        )
        if child.is_leaf:
            child.makespan = int(release[-1])
            child.lower_bound = child.makespan
        return child

    def children(self, processing_times: np.ndarray) -> list["Node"]:
        """All one-job extensions (the branching operator)."""
        return [self.child(job, processing_times) for job in self.unscheduled()]

    # ------------------------------------------------------------------ #
    def sort_key(self) -> tuple[int, int, int]:
        """Best-first ordering key: ``(lower bound, depth, creation index)``."""
        lb = self.lower_bound if self.lower_bound is not None else 0
        return (int(lb), self.depth, self.order_index)

    def __lt__(self, other: "Node") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node(depth={self.depth}, lb={self.lower_bound}, "
            f"prefix={self.prefix})"
        )


def root_node(instance: FlowShopInstance) -> Node:
    """The root of the B&B tree: the empty schedule, creation index 0.

    The root carries a fresh per-search counter, so the creation indices of
    every node descending from it (via :meth:`Node.child`) start at 1 and
    are identical from one run to the next — tie-breaks and traces do not
    depend on how many searches ran earlier in the process.
    """
    return Node(
        prefix=(),
        release=np.zeros(instance.n_machines, dtype=np.int64),
        n_jobs=instance.n_jobs,
        order_index=0,
        counter=itertools.count(1),
    )
