"""Asynchronous offload: the two-slot host-thread pipeline of the driver.

The paper's GPU architecture hides offload latency by double buffering:
the host prepares pool N+1 while the device bounds pool N.  Until this
module existed the repo only *modeled* that overlap (the driver's
``double_buffer`` simulated-time credit); here the overlap is real.  A
:class:`SlotWorker` owns one dedicated worker thread fed through a
bounded hand-off queue of depth 1 — two slots total: the launch the
worker is executing plus at most one more parked in the queue.  A third
``submit`` blocks the caller, which is exactly the back-pressure a
two-slot pipeline wants (the driver can run at most one batch ahead).

:class:`AsyncOffload` adapts any :class:`~repro.bb.driver.OffloadBackend`
to that worker: ``bound_nodes`` / ``bound_block`` become ``submit_nodes``
/ ``submit_block`` returning an :class:`OffloadTicket` join handle.  The
driver joins tickets **in submission order**, so eliminations apply in
the same order as the synchronous path and the explored tree stays
bit-identical (pinned by ``tests/test_driver.py`` and the sync/async
property tests in ``tests/test_overlap.py``).

The wall-clock win is real on the host backend because the fused kernel
v2 path spends its time inside BLAS GEMM calls with the GIL released;
the worker bounds while the driver thread selects and branches.

Thread-safety contract (enforced by ``tools/repro_lint``'s guarded-by
rule): counters shared between the submitting thread and the worker are
annotated ``guarded-by: _lock``; ticket payload fields are written by
the worker and read by the joiner strictly across the ticket's ``Event``
(annotated ``confined-to:`` the writer/reader pair), which provides the
happens-before edge.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.bb.frontier import NodeBlock
from repro.bb.node import Node

__all__ = ["OffloadTicket", "SlotWorker", "AsyncOffload"]

#: sentinel shutting the worker thread down (queue item, never a launch)
_STOP = object()


class OffloadTicket:
    """Join handle of one in-flight launch.

    The worker fills in the payload and then sets the event; the joining
    thread waits on the event and then reads the payload.  ``Event.set``
    / ``Event.wait`` give the happens-before edge, so the payload fields
    need no lock of their own.
    """

    __slots__ = ("_done", "_value", "_error", "worker_wall_s")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value: Any = None  # confined-to: _finish, result
        self._error: Optional[BaseException] = None  # confined-to: _finish, result
        #: wall seconds the worker spent inside the backend call (valid
        #: once :meth:`result` has returned)
        self.worker_wall_s: float = 0.0  # confined-to: _finish, result

    def _finish(
        self, value: Any, error: Optional[BaseException], worker_wall_s: float
    ) -> None:
        """Worker side: publish the outcome, then release joiners."""
        self._value = value
        self._error = error
        self.worker_wall_s = worker_wall_s
        self._done.set()

    @property
    def done(self) -> bool:
        """True once the launch has finished (success or error)."""
        return self._done.is_set()

    def result(self) -> Any:
        """Block until the launch finishes; return its value or re-raise."""
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._value


class SlotWorker:
    """A single worker thread behind a bounded queue of depth 1.

    Two slots: one launch executing on the worker plus one parked in the
    queue.  ``submit`` of a third launch blocks until the worker frees a
    slot.  ``idle`` is True only when every submitted launch has been
    joined-fetchable *and* accounted — the driver asserts it before
    taking a checkpoint so snapshots can never race an in-flight launch.
    """

    def __init__(self, name: str = "bound-offload"):
        self._queue: queue.Queue = queue.Queue(maxsize=1)
        self._lock = threading.Lock()
        self._inflight = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def submit(self, fn: Callable[[], Any]) -> OffloadTicket:
        """Queue ``fn`` for the worker; blocks while both slots are busy."""
        with self._lock:
            if self._closed:
                raise RuntimeError("SlotWorker is closed")
            self._inflight += 1
        ticket = OffloadTicket()
        self._queue.put((fn, ticket))
        return ticket

    def _run(self) -> None:
        while True:  # repro-lint: ignore[single-loop] -- worker drain loop, not a solve loop
            item = self._queue.get()
            if item is _STOP:
                return
            fn, ticket = item
            t0 = time.perf_counter()
            try:
                value, error = fn(), None
            except BaseException as exc:  # noqa: BLE001 - re-raised at join
                value, error = None, exc
            wall = time.perf_counter() - t0
            with self._lock:
                self._inflight -= 1
            # decrement precedes _finish: once result() returns, idle is
            # already observable as True when nothing else was submitted
            ticket._finish(value, error, wall)

    @property
    def idle(self) -> bool:
        """True when no launch is queued, executing, or unaccounted."""
        with self._lock:
            return self._inflight == 0

    def close(self) -> None:
        """Stop accepting launches, drain the queue, join the thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # The put may wait for the worker to free a slot; the worker never
        # blocks on anything but the queue, so this always completes.
        self._queue.put(_STOP)
        self._thread.join()

    def __enter__(self) -> "SlotWorker":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class AsyncOffload:
    """Run any ``OffloadBackend`` call on a dedicated slot worker.

    The wrapper does **not** implement the backend protocol itself: its
    submit methods return :class:`OffloadTicket` handles instead of
    results, making the asynchrony explicit at the call site.  The driver
    keeps determinism by joining tickets in submission order.
    """

    def __init__(self, backend: Any, name: str = "bound-offload"):
        self.backend = backend
        self._worker = SlotWorker(name=name)

    def submit_nodes(self, nodes: Sequence[Node]) -> OffloadTicket:
        """Asynchronous ``backend.bound_nodes(nodes)``."""
        return self._worker.submit(lambda: self.backend.bound_nodes(nodes))

    def submit_block(self, block: NodeBlock, siblings: bool = False) -> OffloadTicket:
        """Asynchronous ``backend.bound_block(block, siblings=...)``."""
        return self._worker.submit(
            lambda: self.backend.bound_block(block, siblings=siblings)
        )

    @property
    def idle(self) -> bool:
        """True when no launch is in flight (checkpoint-safety predicate)."""
        return self._worker.idle

    def close(self) -> None:
        self._worker.close()

    def __enter__(self) -> "AsyncOffload":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
