"""Structure-of-arrays frontier: columnar nodes for vectorized search.

The object-based pipeline (:mod:`repro.bb.node` + :mod:`repro.bb.pool`)
pays Python-interpreter cost *per node*: one dataclass per child, one heap
entry per push, and a row-by-row re-pack (``encode_pool``) every time a
batch is shipped to the bounding kernel.  After the kernel itself was
vectorized (PR 1), those per-node costs dominate the host side of the
search — Amdahl's law moved the bottleneck out of the bounding operator.

This module stores a *batch* of nodes as a :class:`NodeBlock` of parallel
arrays — exactly the ``(scheduled_mask, release)`` layout the batched
kernels consume — so the four B&B operators become array programs:

* :func:`branch_block` — all children of a batch of parents in one shot.
  The release-time recurrence is evaluated in closed form (one
  ``cumsum`` + one ``maximum.accumulate`` over the machine axis for
  *every* (parent, child-job) pair at once), masks are copied and bit-set
  in bulk, and the child count never touches a Python loop.
* :func:`bound_block` — bounding straight off the block's arrays with
  **zero re-packing**; small sibling batches additionally take a fused
  single-GEMM evaluation of the kernel-v2 closed form (bit-identical to
  every other kernel revision).
* :func:`eliminate_block` — elimination as one boolean mask.
* :class:`BlockFrontier` — the pending pool as growable arrays whose
  ``pop_batch`` / ``prune_to`` use ``argpartition``-style selection and
  mask compaction instead of per-node heap operations.  A segmented
  min-key index (fixed 4096-row segments with cached per-segment key
  minima, maintained incrementally and refreshed lazily) makes the
  best-first selection scans sublinear at 10^5–10^6 pending nodes; the
  ``frontier_index="linear"`` ablation keeps the full-scan paths.

Prefixes are *not* carried per node.  Each node stores one ``trail_id``
into a shared :class:`Trail` of ``(parent_slot, job)`` pairs, and the full
permutation is materialized lazily — only for incumbents and trace events.

Node identity (``order_index``) and the selection key
``(lower_bound, depth, order_index)`` match the object layout exactly, so
a block-layout engine explores bit-for-bit the same tree, in the same
order, as its object-layout twin (verified by
``tests/test_layout_equivalence.py``).

All block/frontier integer columns are stored as **int32**: Taillard-class
magnitudes (release times, bounds, depths, creation indices) sit far below
``2**31``, and halving the frontier's memory traffic raises the cache
residency of the selection scans.  The bounding kernels stay int64
internally — their entry points coerce ``release`` with
``np.asarray(..., dtype=np.int64)`` and :func:`bound_block` writes the
int64 results back into the int32 column in place, which is the one
explicit int32↔int64 boundary of the layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bb.node import advance_release
from repro.flowshop.bounds import (
    LowerBoundData,
    _V2_GEMM_MAX_JOBS,
    _v2_gemm_data,
    _v2_value_bound,
    get_batch_kernel,
)
from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "NO_BOUND",
    "Trail",
    "NodeBlock",
    "root_block",
    "seed_block",
    "branch_block",
    "bound_block",
    "eliminate_block",
    "BlockFrontier",
    "make_frontier",
]

#: Sentinel stored in :attr:`NodeBlock.lower_bound` until a node is bounded.
#: Bounds are always non-negative, so ``-1`` can never collide with a real
#: value — and it still satisfies ``NO_BOUND < upper_bound``, matching the
#: object pools' rule that un-bounded nodes survive :meth:`prune_to`.
NO_BOUND = -1

#: Largest batch evaluated by the fused single-GEMM path of
#: :func:`bound_block`; larger pools go through the chunked v2 kernel so the
#: ``(B, n_jobs * n_couples)`` candidate tensor stays cache-sized.
_FUSED_MAX_BATCH = 512

#: Segment width of the segmented min-key index, as a shift: segments hold
#: ``2**12 == 4096`` rows.  Small enough that the one in-segment rescan a
#: refresh pays stays cache-resident, large enough that a million-node
#: frontier has only ~244 segment minima to reduce over.
_SEG_SHIFT = 12

#: Cache value of a segment with no valid cached minimum.  Never consulted
#: (dirty segments are refreshed before any query), but keeps stale reads
#: loud: the sentinel loses every ``argmin``.
_KEY_SENTINEL = np.iinfo(np.int64).max

#: Low-water fraction of the ``max_pending`` cap hysteresis: once the cap
#: trips, best-first selection stays in the depth-first-restricted regime
#: until the store drains below ``0.8 * cap`` — instead of flapping between
#: regimes one push/pop around the boundary.
CAP_LOW_WATER_FRACTION = 0.8

_ARANGE = np.arange(256, dtype=np.int64)


def _arange(count: int) -> np.ndarray:
    """A read-only ``arange(count)`` view from a grow-only module cache."""
    global _ARANGE
    if count > _ARANGE.shape[0]:
        _ARANGE = np.arange(max(count, 2 * _ARANGE.shape[0]), dtype=np.int64)
    return _ARANGE[:count]


#: int32 node-id ceiling of the block layout (trail slots, order indices).
#: A search would need >2**31 nodes — hundreds of GB of frontier — to reach
#: it, but growing past it must fail loudly, not wrap.
_INT32_ID_LIMIT = np.iinfo(np.int32).max


class Trail:
    """Compact ancestry store: one ``(parent_slot, job)`` pair per node.

    Every node ever created appends one entry; the scheduled prefix of a
    node is materialized lazily by walking parent slots up to the root
    (``parent == -1``).  Two int32 cells per node replace the per-node
    Python tuple of the object layout; creating more than ``2**31 - 1``
    nodes raises :class:`OverflowError` (ids — and the creation indices
    that advance in lockstep with them — would otherwise wrap).
    """

    __slots__ = ("_parent", "_job", "_size")

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._parent = np.empty(capacity, dtype=np.int32)
        self._job = np.empty(capacity, dtype=np.int32)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _ensure(self, extra: int) -> None:
        need = self._size + extra
        if need > _INT32_ID_LIMIT:
            raise OverflowError(
                f"search created more than {_INT32_ID_LIMIT} nodes; the int32 "
                "block layout cannot address them — re-run with layout='object'"
            )
        if need > self._parent.shape[0]:
            capacity = max(need, 2 * self._parent.shape[0])
            for name in ("_parent", "_job"):
                old = getattr(self, name)
                new = np.empty(capacity, dtype=np.int32)
                new[: self._size] = old[: self._size]
                setattr(self, name, new)

    def append_root(self) -> int:
        """Register the empty-prefix root; returns its trail id."""
        return self.append(-1, -1)

    def append(self, parent: int, job: int) -> int:
        """Register one node; returns its trail id."""
        self._ensure(1)
        slot = self._size
        self._parent[slot] = parent
        self._job[slot] = job
        self._size += 1
        return slot

    def append_batch(self, parents, jobs: np.ndarray) -> np.ndarray:
        """Register a batch of nodes; returns their trail ids, in order.

        ``parents`` may be an array (one parent per job) or a scalar (all
        jobs extend the same parent).
        """
        count = len(jobs)
        self._ensure(count)
        ids = np.arange(self._size, self._size + count, dtype=np.int32)
        self._parent[self._size : self._size + count] = parents
        self._job[self._size : self._size + count] = jobs
        self._size += count
        return ids

    def prefix(self, trail_id: int) -> tuple[int, ...]:
        """Materialize the scheduled prefix of one node (root-first order)."""
        jobs: list[int] = []
        slot = int(trail_id)
        while slot >= 0:
            job = int(self._job[slot])
            if job >= 0:
                jobs.append(job)
            slot = int(self._parent[slot])
        return tuple(reversed(jobs))

    def jobs_of(self, trail_ids: np.ndarray) -> np.ndarray:
        """The job scheduled last by each of the given nodes (bulk gather)."""
        return self._job[trail_ids]


@dataclass
class NodeBlock:
    """A batch of B&B nodes stored as parallel arrays (structure of arrays).

    The ``(scheduled_mask, release)`` pair is byte-for-byte the layout the
    batched bounding kernels consume, so bounding a block never re-packs
    anything.  ``lower_bound`` holds :data:`NO_BOUND` until the node is
    bounded.  ``order_index`` is the per-search creation index that makes
    selection tie-breaks deterministic and identical to the object layout.
    """

    #: ``(B, n_jobs)`` boolean matrix of already-scheduled jobs
    scheduled_mask: np.ndarray
    #: ``(B, n_machines)`` per-machine release times (the ``RM`` vectors)
    release: np.ndarray
    #: ``(B,)`` lower bounds (:data:`NO_BOUND` until evaluated)
    lower_bound: np.ndarray
    #: ``(B,)`` number of scheduled jobs
    depth: np.ndarray
    #: ``(B,)`` per-search creation indices (deterministic tie-break)
    order_index: np.ndarray
    #: ``(B,)`` ids into :attr:`trail` (lazy prefix materialization)
    trail_id: np.ndarray
    #: shared ancestry store of the search
    trail: Trail
    #: ``(B,)`` job scheduled last by each row (set by :func:`branch_block`;
    #: lets the sibling bounding path skip a trail gather)
    jobs: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.scheduled_mask.shape[0])

    @property
    def n_jobs(self) -> int:
        """Number of jobs of the underlying instance (mask width)."""
        return int(self.scheduled_mask.shape[1])

    @property
    def n_machines(self) -> int:
        """Number of machines of the underlying instance (release width)."""
        return int(self.release.shape[1])

    @property
    def is_leaf_mask(self) -> np.ndarray:
        """``(B,)`` True where the node is a complete schedule."""
        return self.depth == self.n_jobs

    @property
    def makespans(self) -> np.ndarray:
        """``(B,)`` last-machine release times (makespan for leaf rows)."""
        return self.release[:, -1]

    def prefix(self, row: int) -> tuple[int, ...]:
        """Materialize the scheduled prefix of one row (lazy, via the trail)."""
        return self.trail.prefix(int(self.trail_id[row]))

    def prefixes(self) -> list[tuple[int, ...]]:
        """Materialize every row's prefix (tests / trace tooling only)."""
        return [self.prefix(i) for i in range(len(self))]

    def take(self, rows: np.ndarray) -> "NodeBlock":
        """A new block holding copies of ``rows``, in the given order."""
        rows = np.asarray(rows, dtype=np.int64)
        return NodeBlock(
            scheduled_mask=self.scheduled_mask[rows],
            release=self.release[rows],
            lower_bound=self.lower_bound[rows],
            depth=self.depth[rows],
            order_index=self.order_index[rows],
            trail_id=self.trail_id[rows],
            trail=self.trail,
            jobs=self.jobs[rows] if self.jobs is not None else None,
        )

    @classmethod
    def empty(cls, n_jobs: int, n_machines: int, trail: Trail) -> "NodeBlock":
        """A zero-row block with correctly shaped/typed columns."""
        return cls(
            scheduled_mask=np.zeros((0, n_jobs), dtype=bool),
            release=np.zeros((0, n_machines), dtype=np.int32),
            lower_bound=np.zeros(0, dtype=np.int32),
            depth=np.zeros(0, dtype=np.int32),
            order_index=np.zeros(0, dtype=np.int32),
            trail_id=np.zeros(0, dtype=np.int32),
            trail=trail,
        )


def root_block(instance: FlowShopInstance, trail: Trail) -> NodeBlock:
    """A one-row block holding the root (empty schedule), order index 0."""
    return NodeBlock(
        scheduled_mask=np.zeros((1, instance.n_jobs), dtype=bool),
        release=np.zeros((1, instance.n_machines), dtype=np.int32),
        lower_bound=np.full(1, NO_BOUND, dtype=np.int32),
        depth=np.zeros(1, dtype=np.int32),
        order_index=np.zeros(1, dtype=np.int32),
        trail_id=np.array([trail.append_root()], dtype=np.int32),
        trail=trail,
    )


def seed_block(
    instance: FlowShopInstance, prefix: tuple[int, ...], trail: Trail
) -> NodeBlock:
    """A one-row block for the node reached by scheduling ``prefix``.

    Mirrors the object layout's root-to-seed ``child`` chain: the chain
    nodes are registered on the trail (so the seed's prefix materializes)
    and the seed's order index is ``len(prefix)`` — exactly what a
    per-search counter would have assigned after creating the chain.
    """
    pt = instance.processing_times
    n, m = instance.n_jobs, instance.n_machines
    mask = np.zeros((1, n), dtype=bool)
    release = np.zeros(m, dtype=np.int32)
    trail_id = trail.append_root()
    for job in prefix:
        job = int(job)
        if not 0 <= job < n:
            raise ValueError(f"job index {job} out of range")
        if mask[0, job]:
            raise ValueError(f"job {job} scheduled twice in the prefix")
        release = advance_release(release, pt[job])
        mask[0, job] = True
        trail_id = trail.append(trail_id, job)
    depth = len(prefix)
    lower = release[-1] if depth == n else NO_BOUND
    return NodeBlock(
        scheduled_mask=mask,
        release=release[None, :],
        lower_bound=np.array([lower], dtype=np.int32),
        depth=np.array([depth], dtype=np.int32),
        order_index=np.array([depth], dtype=np.int32),
        trail_id=np.array([trail_id], dtype=np.int32),
        trail=trail,
    )


def branch_block(
    parents: NodeBlock, processing_times: np.ndarray, order_start: int
) -> NodeBlock:
    """Branching operator: all one-job extensions of every parent row.

    Children are produced parent-major, jobs in increasing index order —
    the exact creation order of the object layout's ``branch`` over a
    pop-ordered parent list — and get consecutive order indices starting
    at ``order_start``.  Leaf rows contribute no children; complete-child
    rows get their makespan as an exact bound immediately, like
    :meth:`repro.bb.node.Node.child` does.
    """
    n_jobs = parents.n_jobs
    mask = parents.scheduled_mask
    single = len(parents) == 1
    if single:
        jobs = np.flatnonzero(~mask[0])
        count = jobs.shape[0]
    else:
        parent_rows, jobs = np.nonzero(~mask)
        count = jobs.shape[0]
    if count == 0:
        return NodeBlock.empty(n_jobs, parents.n_machines, parents.trail)

    # One closed-form max-plus scan advances every (parent, job) pair at
    # once (see :func:`repro.bb.node.advance_release`).
    pt_j = processing_times[jobs]
    parent_release = parents.release if single else parents.release[parent_rows]
    release = advance_release(parent_release, pt_j)

    if single:
        child_mask = np.repeat(mask, count, axis=0)
        depth = np.full(count, int(parents.depth[0]) + 1, dtype=np.int32)
        parent_tids = np.broadcast_to(parents.trail_id, (count,))
    else:
        child_mask = mask[parent_rows]  # advanced indexing: already a copy
        depth = (parents.depth[parent_rows] + 1).astype(np.int32, copy=False)
        parent_tids = parents.trail_id[parent_rows]
    child_mask[_arange(count), jobs] = True

    if single:
        is_leaf = int(parents.depth[0]) + 1 == n_jobs
        lower = (
            release[:, -1].copy()
            if is_leaf
            else np.full(count, NO_BOUND, dtype=np.int32)
        )
    else:
        lower = np.full(count, NO_BOUND, dtype=np.int32)
        leaves = depth == n_jobs
        if leaves.any():
            lower[leaves] = release[leaves, -1]

    return NodeBlock(
        scheduled_mask=child_mask,
        release=release,
        lower_bound=lower,
        depth=depth,
        order_index=np.arange(order_start, order_start + count, dtype=np.int32),
        trail_id=parents.trail.append_batch(parent_tids, jobs),
        trail=parents.trail,
        jobs=jobs,
    )


def branch_row(
    mask_row: np.ndarray,
    release_row: np.ndarray,
    depth: int,
    trail_id: int,
    trail: Trail,
    processing_times: np.ndarray,
    order_start: int,
) -> NodeBlock:
    """All one-job extensions of a single node given as raw rows.

    The hot-loop variant of :func:`branch_block` for engines that pop one
    node per step: it takes (views of) the node's mask and release rows
    directly, so no intermediate one-row block is materialized.  The rows
    are fully consumed before this function returns.
    """
    n_jobs = mask_row.shape[0]
    jobs = np.flatnonzero(~mask_row)
    count = jobs.shape[0]
    if count == 0:
        return NodeBlock.empty(n_jobs, release_row.shape[0], trail)

    pt_j = processing_times[jobs]
    release = advance_release(release_row, pt_j)

    child_mask = np.repeat(mask_row[None, :], count, axis=0)
    child_mask[_arange(count), jobs] = True

    child_depth = depth + 1
    lower = (
        release[:, -1].copy()
        if child_depth == n_jobs
        else np.full(count, NO_BOUND, dtype=np.int32)
    )
    return NodeBlock(
        scheduled_mask=child_mask,
        release=release,
        lower_bound=lower,
        depth=np.full(count, child_depth, dtype=np.int32),
        order_index=np.arange(order_start, order_start + count, dtype=np.int32),
        trail_id=trail.append_batch(trail_id, jobs),
        trail=trail,
        jobs=jobs,
    )


class _FusedData:
    """Per-instance tensors of the fused (single-GEMM) block bounding.

    Derived once from :class:`~repro.flowshop.bounds._V2GemmData`.  The
    stacked weight matrix keeps the kernel's ``(n * C, n + 1)`` layout so
    the candidate maximum reduces over the OUTERMOST axis of the
    ``(n, C, B)`` product — the orientation where the reduction runs over
    long contiguous spans (the middle-axis reduction of the row-major
    alternative costs more than its faster GEMM saves).
    """

    __slots__ = ("ftype", "stacked", "bf", "tails_f", "ptm_t", "m1", "m2", "inf")

    def __init__(self, data: LowerBoundData, ftype):
        gd = _v2_gemm_data(data, ftype)
        n, n_couples = data.n_jobs, data.n_couples
        self.ftype = gd.ftype
        # kj rows are (job, couple) pairs, job-major — the (n, C, B)
        # reshape of the product below relies on exactly that order
        self.stacked = np.ascontiguousarray(gd.kj.reshape(n * n_couples, n + 1))
        self.bf = gd.bf  # (C, n + 1)
        self.tails_f = np.ascontiguousarray(gd.tails_t.T)  # (n, m)
        self.ptm_t = gd.ptm_t  # (m, n)
        self.m1 = data.mm[:, 0]
        self.m2 = data.mm[:, 1]
        self.inf = np.asarray(np.inf, dtype=gd.ftype)


def _fused_data(data: LowerBoundData, ftype) -> _FusedData:
    cache = data._v2_gemm_cache
    fd = cache.get(ftype)
    if fd is None:
        fd = cache[ftype] = _FusedData(data, ftype)
    return fd


def _cached_value_bound(data: LowerBoundData, release: np.ndarray) -> int:
    """:func:`_v2_value_bound` with the instance-constant sentinel cached."""
    cache = data._v2_gemm_cache
    big = cache.get("__big__")
    if big is None:
        big = _v2_value_bound(data, np.zeros(0, dtype=np.int64)) - 1
        cache["__big__"] = big
    release_max = int(release.max()) if release.size else 0
    return release_max + big + 1


def _sibling_qm(data: LowerBoundData, jobs: np.ndarray, fd: _FusedData) -> np.ndarray:
    """``(B, m)`` per-child minimal tails for the full sibling set of a parent.

    The children's jobs ARE the parent's unscheduled set, and each child's
    unscheduled set is that set minus its own job — so the per-child
    masked column-min over the tails collapses to the parent's (min,
    second-min) pair per machine: a child sees the second minimum exactly
    when its own tail attains the minimum (on ties both values coincide,
    so the comparison is safe).  One partition replaces B masked
    reductions.
    """
    tails_u = fd.tails_f[jobs]  # (B, m) ftype — rows follow the children
    part = np.partition(tails_u, 1, axis=0)
    return np.where(tails_u == part[0], part[1], part[0])  # (B, m)


def _bound_block_fused(
    data: LowerBoundData,
    mask_a: np.ndarray,
    rel_a: np.ndarray,
    include_one_machine: bool,
    ftype,
    qm_b: np.ndarray | None = None,
) -> np.ndarray:
    """Fused single-GEMM kernel-v2 evaluation of a small active batch.

    Identical math to ``_lower_bound_batch_v2_gemm`` (same precomputed
    weight tensors, same dtype guard, exact integer arithmetic in floats),
    but the per-Johnson-position ``np.dot`` loop collapses into ONE matrix
    product against the ``(n + 1, n_jobs * n_couples)`` stacked weights —
    a handful of array ops per launch instead of ~3·n, which is what makes
    bounding a sibling block cheaper than the object layout's per-launch
    overhead.  ``qm_b`` optionally supplies the ``(B, m)`` per-node
    minimal tails (e.g. from :func:`_sibling_qm`); it is computed by a
    masked reduction otherwise.
    """
    n = mask_a.shape[1]
    n_couples = data.n_couples
    fd = _fused_data(data, ftype)
    batch = mask_a.shape[0]

    u = np.empty((n + 1, batch), dtype=fd.ftype)
    u[:n] = ~mask_a.T
    u[n] = 1.0

    cand_max = np.dot(fd.stacked, u).reshape(n, n_couples, batch).max(axis=0)
    work_b = np.dot(fd.bf, u)  # (C, B): total second-machine work B_N

    rel_t = rel_a.T.astype(fd.ftype)
    if qm_b is None:
        qm_b = np.where(mask_a[:, :, None], fd.inf, fd.tails_f[None, :, :]).min(axis=1)

    front1 = rel_t[fd.m1]
    front1 += cand_max
    front2 = rel_t[fd.m2]
    front2 += work_b
    np.maximum(front2, front1, out=front2)
    front2 += qm_b[:, fd.m2].T
    best = front2.max(axis=0)

    if include_one_machine:
        loads = np.dot(fd.ptm_t, u[:n])
        loads += rel_t
        loads += qm_b.T
        best = np.maximum(best, loads.max(axis=0))
    return best.astype(np.int64)


def bound_block(
    data: LowerBoundData,
    block: NodeBlock,
    include_one_machine: bool = False,
    kernel: str = "v2",
    siblings: bool = False,
) -> np.ndarray:
    """Bounding operator: evaluate a block in place, with zero re-packing.

    The block's ``(scheduled_mask, release)`` arrays are handed to the
    kernels directly — ``encode_pool`` does not exist on this path.  Small
    batches of the v2 kernel take the fused single-GEMM evaluation
    (:func:`_bound_block_fused`); everything else routes through the
    standard chunked kernels.  Values are bit-identical to
    :func:`repro.flowshop.bounds.lower_bound` on every row, and are also
    written back into ``block.lower_bound``.

    ``siblings=True`` asserts that the block is the COMPLETE child set of
    one parent (exactly what :func:`branch_block` / :func:`branch_row`
    produce for a single popped node): sibling batches share their
    parent's unscheduled set, so the per-node ``QM`` tails reduce to the
    parent's (min, second-min) pair (:func:`_sibling_qm`) — the dominant
    per-launch cost of small batches disappears while the values stay
    exactly the same.
    """
    batch = len(block)
    if batch == 0:
        return np.zeros(0, dtype=np.int64)
    mask, release = block.scheduled_mask, block.release
    n_jobs = mask.shape[1]

    if siblings:
        # siblings share one depth: either every child is complete or none
        if int(block.depth[0]) == n_jobs:
            bounds = block.lower_bound  # set at branch time (leaf makespans)
            return bounds

    fused = (
        kernel == "v2"
        and 0 < data.n_couples
        and n_jobs <= _V2_GEMM_MAX_JOBS
        and batch <= _FUSED_MAX_BATCH
    )
    if fused:
        # engine-built release rows are non-decreasing along machines, so
        # the last column carries each row's maximum
        value_bound = _cached_value_bound(data, release[:, -1] if siblings else release)
        if value_bound < 2**24:
            ftype = np.float32
        elif value_bound < 2**53:
            ftype = np.float64
        else:  # pragma: no cover - pathological magnitudes
            fused = False

    if not fused:
        # the batched kernels are int64 internally (their entry coerces
        # ``release``); writing through the slice casts the int64 results
        # back into the block's int32 column — the explicit dtype boundary
        bounds = get_batch_kernel(kernel)(
            data, mask, release, include_one_machine=include_one_machine
        )
        block.lower_bound[:] = bounds
        return block.lower_bound

    if siblings and batch > 1:
        jobs = block.jobs if block.jobs is not None else block.trail.jobs_of(block.trail_id)
        fd = _fused_data(data, ftype)
        qm_b = _sibling_qm(data, jobs, fd)
        bounds = _bound_block_fused(
            data, mask, release, include_one_machine, ftype, qm_b=qm_b
        )
        block.lower_bound[:] = bounds
        return block.lower_bound

    complete = block.depth == n_jobs
    if complete.any():
        bounds = np.empty(batch, dtype=np.int64)
        bounds[complete] = release[complete, -1]
        active = ~complete
        if active.any():
            bounds[active] = _bound_block_fused(
                data, mask[active], release[active], include_one_machine, ftype
            )
    else:
        bounds = _bound_block_fused(data, mask, release, include_one_machine, ftype)
    block.lower_bound[:] = bounds
    return block.lower_bound


def leaf_improvements(
    upper_bound: float, makespans: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Progressive incumbent improvements over an ordered leaf batch.

    Replicates the one-at-a-time engines' semantics: leaf ``i`` improves
    iff its makespan beats the incumbent as of leaf ``i`` (the original
    bound tightened by every earlier improving leaf).  Returns
    ``(improving_indices, running)`` where ``running[i]`` is the incumbent
    in force when leaf ``i`` is examined; the caller walks the (typically
    empty or tiny) index list to update its incumbent state in order.
    """
    running = np.minimum.accumulate(np.concatenate(([upper_bound], makespans)))[:-1]
    return np.flatnonzero(makespans < running), running


def eliminate_block(block: NodeBlock, upper_bound: float) -> tuple[NodeBlock, int]:
    """Elimination operator: one boolean mask instead of a Python loop.

    Rows survive only when ``lower_bound < upper_bound`` (strict, like
    :func:`repro.bb.operators.eliminate`).  Returns ``(survivors,
    n_pruned)``; the survivors keep their relative order.
    """
    if len(block) == 0:
        return block, 0
    lower = block.lower_bound
    if (lower == NO_BOUND).any():
        raise ValueError("eliminate_block() requires bounded nodes")
    keep = lower < upper_bound
    pruned = int(len(block) - np.count_nonzero(keep))
    if pruned == 0:
        return block, 0
    return block.take(np.flatnonzero(keep)), pruned


class BlockFrontier:
    """The pending pool as growable parallel arrays.

    Selection works on the same keys as the object pools — best-first by
    ``(lower_bound, depth, order_index)``, depth-first by most recent
    ``order_index``, FIFO by earliest — but pops are array reductions and
    batch selection uses ``argpartition`` / one sort, not per-node heap
    operations.  When the key fields fit their bit budgets (bounds below
    ``2**22``, depths below ``2**9``, creation indices below ``2**32`` —
    true for every realistic search), the triple collapses into one
    packed int64 whose numeric order IS the lexicographic pop order, so a
    best-first pop is a single ``argmin`` scan.  Removal is
    swap-compaction (tail rows move into the holes), which is valid
    because selection never depends on storage order.  Columns are stored
    int32 (the packed key stays int64), halving the scan traffic.

    ``frontier_index`` selects the selection data structure.  The default
    ``"segmented"`` partitions the store into fixed 4096-row segments and
    caches each segment's minimum packed key + its row (plus the maximum
    creation index, for depth-first/restricted pops).  Mutations only
    *mark* the touched segments dirty; the next selection query refreshes
    the dirty segments and then reduces over ~n/4096 cached minima instead
    of scanning all n rows.  Because the packed keys are unique (the
    creation index is), the indexed argmin is exactly the linear-scan
    argmin — selection stays bit-identical, which the golden fixtures and
    ``tests/test_frontier_index.py`` property tests pin.  ``"linear"`` is
    the full-scan ablation (and the small-store fast path: stores within
    one segment always scan directly).

    ``max_pending`` is an optional high-water memory cap: once the store
    reaches that many nodes, best-first selection switches to a
    depth-first-restricted regime — the deepest pending node is popped
    instead of the best-bound one, which plunges toward leaves and stops
    the exhaustive best-first frontier from growing without bound.  The
    search stays exact (no node is dropped).  Regime switching is
    hysteretic: selection re-engages best-first only after elimination
    drains the store below the low-water mark
    (:data:`CAP_LOW_WATER_FRACTION` × cap), not one pop below the cap —
    see :attr:`restricted` and :attr:`regime_switches`.
    """

    _STRATEGIES = {
        "best-first": "best",
        "best": "best",
        "depth-first": "depth",
        "depth": "depth",
        "fifo": "fifo",
        "breadth-first": "fifo",
    }

    def __init__(
        self,
        n_jobs: int,
        n_machines: int,
        trail: Trail,
        strategy: str = "best-first",
        capacity: int = 64,
        max_pending: int | None = None,
        frontier_index: str = "segmented",
        segment_shift: int = _SEG_SHIFT,
    ):
        key = self._STRATEGIES.get(strategy.lower())
        if key is None:
            raise ValueError(
                f"unknown selection strategy {strategy!r}; choose from "
                f"{sorted(set(self._STRATEGIES))}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 when given")
        if frontier_index not in ("segmented", "linear"):
            raise ValueError(
                f"unknown frontier index {frontier_index!r}; "
                "choose 'segmented' or 'linear'"
            )
        if not 1 <= segment_shift <= 24:
            raise ValueError("segment_shift must be in [1, 24]")
        self.strategy = strategy
        self.frontier_index = frontier_index
        self._kind = key
        self._cap = max_pending
        #: hysteresis low-water mark: once restricted, stay restricted
        #: until the store drains strictly below this size
        self._low_water = (
            None
            if max_pending is None
            else max(1, int(CAP_LOW_WATER_FRACTION * max_pending))
        )
        self._restricted_now = False
        #: number of regime transitions (best-first <-> restricted) so far
        self.regime_switches = 0
        self._trail = trail
        self._mask = np.zeros((capacity, n_jobs), dtype=bool)
        self._release = np.zeros((capacity, n_machines), dtype=np.int32)
        self._lb = np.zeros(capacity, dtype=np.int32)
        self._depth = np.zeros(capacity, dtype=np.int32)
        self._order = np.zeros(capacity, dtype=np.int32)
        self._tid = np.zeros(capacity, dtype=np.int32)
        #: packed ``(lb << 41) | (depth << 32) | order`` selection key
        self._key = np.zeros(capacity, dtype=np.int64)
        self._packed = n_jobs < (1 << 9)
        self._size = 0
        self._max_size = 0
        self._segmented = frontier_index == "segmented"
        self._seg_shift = segment_shift
        self._seg_size = 1 << segment_shift
        self._seg_mask = self._seg_size - 1
        #: maintain the creation-index caches only when a depth-ordered pop
        #: is reachable (depth strategy, or best-first under a cap whose
        #: restricted regime pops deepest) — best-first without a cap never
        #: consults them, and skipping them halves the refresh scans
        self._seg_track_order = key == "depth" or (
            key == "best" and max_pending is not None
        )
        if self._segmented:
            seg_cap = max(1, (capacity + self._seg_mask) >> segment_shift)
            #: per-segment minimum packed key (int64, like the key column)
            self._seg_key = np.full(seg_cap, _KEY_SENTINEL, dtype=np.int64)
            #: row holding each segment's minimum key (int32 row ids)
            self._seg_krow = np.zeros(seg_cap, dtype=np.int32)
            #: per-segment maximum creation index (depth/restricted pops)
            self._seg_omax = np.zeros(seg_cap, dtype=np.int32)
            #: row holding each segment's maximum creation index
            self._seg_orow = np.zeros(seg_cap, dtype=np.int32)
            #: segments whose caches must be recomputed before the next query
            self._seg_dirty = np.ones(seg_cap, dtype=bool)
            self._seg_any_dirty = True
        else:
            self._seg_key = None
            self._seg_krow = None
            self._seg_omax = None
            self._seg_orow = None
            self._seg_dirty = None
            self._seg_any_dirty = False

    _ARRAYS = ("_mask", "_release", "_lb", "_depth", "_order", "_tid", "_key")
    _SEG_ARRAYS = ("_seg_key", "_seg_krow", "_seg_omax", "_seg_orow", "_seg_dirty")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def max_size_seen(self) -> int:
        """Largest number of pending nodes observed (memory high-water mark)."""
        return self._max_size

    @property
    def capped(self) -> bool:
        """True when a ``max_pending`` memory cap was configured.

        Unlike :attr:`restricted` this is pure static configuration — no
        regime transition, no counter side effect — so callers that only
        need to know whether the hysteretic regime *can* engage (e.g. the
        async driver deciding whether micro-chunked selection is safe)
        can read it freely without perturbing :attr:`regime_switches`.
        """
        return self._cap is not None

    @property
    def restricted(self) -> bool:
        """True while the ``max_pending`` cap holds best-first selection in
        its depth-first-restricted regime.

        The regime is hysteretic: it engages when the store reaches the
        cap and — instead of flapping back the moment one pop dips below
        it — stays engaged until the store drains strictly below the
        low-water mark (:data:`CAP_LOW_WATER_FRACTION` × cap).  Each
        transition increments :attr:`regime_switches`.
        """
        if self._cap is None or self._kind != "best":
            return False
        if self._restricted_now:
            if self._size < self._low_water:
                self._restricted_now = False
                self.regime_switches += 1
        elif self._size >= self._cap:
            self._restricted_now = True
            self.regime_switches += 1
        return self._restricted_now

    def record_size_hint(self, size: int) -> None:
        """Raise the high-water mark to a size the pool logically reached.

        Batched engines remove several nodes at once and insert all of
        their surviving children in one append; this lets them credit the
        intermediate sizes a one-node-at-a-time pool would have passed
        through, keeping ``max_pool_size`` identical across layouts.
        """
        if size > self._max_size:
            self._max_size = size

    def _ensure(self, extra: int) -> None:
        need = self._size + extra
        if need > self._lb.shape[0]:
            capacity = max(need, 2 * self._lb.shape[0])
            for name in self._ARRAYS:
                old = getattr(self, name)
                new = np.zeros((capacity,) + old.shape[1:], dtype=old.dtype)
                new[: self._size] = old[: self._size]
                setattr(self, name, new)
            if self._segmented:
                seg_cap = max(1, (capacity + self._seg_mask) >> self._seg_shift)
                old_n = self._seg_dirty.shape[0]
                if seg_cap > old_n:
                    for name in self._SEG_ARRAYS:
                        old = getattr(self, name)
                        new = np.zeros(seg_cap, dtype=old.dtype)
                        new[:old_n] = old
                        setattr(self, name, new)
                    # caches of live segments stay valid across growth; the
                    # new segments only become live via a push, which marks
                    # them — but mark defensively anyway
                    self._seg_dirty[old_n:] = True
                    self._seg_any_dirty = True

    # ------------------------------------------------------------------ #
    def push_block(self, block: NodeBlock, keep: np.ndarray | None = None) -> None:
        """Insert a block of nodes (bulk append).

        ``keep`` optionally selects a boolean subset of the block's rows —
        a fused elimination + insertion that avoids materializing the
        survivor block.
        """
        if keep is None:
            count = len(block)
            if count == 0:
                return
            self._ensure(count)
            lo, hi = self._size, self._size + count
            self._mask[lo:hi] = block.scheduled_mask
            self._release[lo:hi] = block.release
            lb = self._lb[lo:hi] = block.lower_bound
            depth = self._depth[lo:hi] = block.depth
            order = self._order[lo:hi] = block.order_index
            self._tid[lo:hi] = block.trail_id
        else:
            rows = np.flatnonzero(keep)
            count = rows.shape[0]
            if count == 0:
                return
            self._ensure(count)
            lo, hi = self._size, self._size + count
            self._mask[lo:hi] = block.scheduled_mask[rows]
            self._release[lo:hi] = block.release[rows]
            lb = self._lb[lo:hi] = block.lower_bound[rows]
            depth = self._depth[lo:hi] = block.depth[rows]
            order = self._order[lo:hi] = block.order_index[rows]
            self._tid[lo:hi] = block.trail_id[rows]
        if self._packed:
            # order indices are int32 and guarded by the Trail's id limit,
            # so (unlike the historical int64 columns) a negative value —
            # not a value past 2**32 — is the wrap signal to check for
            if (
                int(lb.min()) < 0
                or int(lb.max()) >= (1 << 22)
                or int(order[-1]) < 0
            ):
                self._packed = False
            else:
                self._key[lo:hi] = (
                    (lb.astype(np.int64) << 41)
                    | (depth.astype(np.int64) << 32)
                    | order
                )
        if self._segmented:
            shift = self._seg_shift
            self._seg_dirty[lo >> shift : ((hi - 1) >> shift) + 1] = True
            self._seg_any_dirty = True
        self._size = hi
        if hi > self._max_size:
            self._max_size = hi

    # ------------------------------------------------------------------ #
    # Segmented min-key index.  Mutations mark touched segments dirty (see
    # push_block/discard/_remove/prune_to); queries call _seg_refresh()
    # first and then reduce over the per-segment caches.  Key caches are
    # only maintained while the packed key is valid; the creation-index
    # caches are always maintained (depth/restricted pops use them).

    def _n_segments(self) -> int:
        return (self._size + self._seg_mask) >> self._seg_shift

    def _seg_active(self) -> bool:
        """True when selection should consult the segment caches.

        Stores within a single segment scan directly: the cache reduces
        nothing there, and skipping it keeps tiny searches on the exact
        legacy code path.
        """
        return self._segmented and self._size > self._seg_size

    def _seg_refresh(self) -> None:
        """Recompute the caches of every dirty segment (lazy, pre-query)."""
        if not self._seg_any_dirty:
            return
        size = self._size
        n_seg = (size + self._seg_mask) >> self._seg_shift
        dirty = self._seg_dirty[:n_seg].nonzero()[0]
        if dirty.shape[0]:
            if dirty.shape[0] > max(8, n_seg >> 2):
                self._seg_rebuild(size, n_seg)
            else:
                shift, seg_size = self._seg_shift, self._seg_size
                packed, key, order = self._packed, self._key, self._order
                track = self._seg_track_order
                seg_key, seg_krow = self._seg_key, self._seg_krow
                seg_omax, seg_orow = self._seg_omax, self._seg_orow
                for s in dirty.tolist():
                    lo = s << shift
                    hi = lo + seg_size
                    if hi > size:
                        hi = size
                    if track:
                        oseg = order[lo:hi]
                        j = oseg.argmax()
                        seg_omax[s] = oseg[j]
                        seg_orow[s] = lo + j
                    if packed:
                        kseg = key[lo:hi]
                        i = kseg.argmin()
                        seg_key[s] = kseg[i]
                        seg_krow[s] = lo + i
            self._seg_dirty[:n_seg] = False
        # dirty flags past n_seg stay set: those segments are not live, and
        # the push that re-grows the store re-marks everything it touches
        self._seg_any_dirty = False

    def _seg_rebuild(self, size: int, n_seg: int) -> None:
        """Vectorized full rebuild (cheaper than many per-segment passes)."""
        shift, seg_size = self._seg_shift, self._seg_size
        nf = size >> shift  # fully-populated segments
        if nf:
            span = nf << shift
            idx = np.arange(nf, dtype=np.int64)
            if self._seg_track_order:
                oview = self._order[:span].reshape(nf, seg_size)
                j = np.argmax(oview, axis=1)
                self._seg_omax[:nf] = oview[idx, j]
                self._seg_orow[:nf] = (idx << shift) + j
            if self._packed:
                kview = self._key[:span].reshape(nf, seg_size)
                i = np.argmin(kview, axis=1)
                self._seg_key[:nf] = kview[idx, i]
                self._seg_krow[:nf] = (idx << shift) + i
        if nf < n_seg:  # ragged tail segment
            lo = nf << shift
            if self._seg_track_order:
                oseg = self._order[lo:size]
                j = int(np.argmax(oseg))
                self._seg_omax[nf] = oseg[j]
                self._seg_orow[nf] = lo + j
            if self._packed:
                kseg = self._key[lo:size]
                i = int(np.argmin(kseg))
                self._seg_key[nf] = kseg[i]
                self._seg_krow[nf] = lo + i

    def _seg_rows(self, segs: np.ndarray, size: int) -> np.ndarray:
        """Concatenated row indices of the given segments (clipped to size)."""
        shift, seg_size = self._seg_shift, self._seg_size
        parts = [
            np.arange(lo, min(lo + seg_size, size), dtype=np.int64)
            for lo in (np.asarray(segs, dtype=np.int64) << shift)
        ]
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    # ------------------------------------------------------------------ #
    def _pop_one_index(self) -> int:
        """Row index of the single next node according to the strategy."""
        size = self._size
        if self._kind == "depth" or self.restricted:
            if self._seg_active():
                self._seg_refresh()
                s = int(self._seg_omax[: self._n_segments()].argmax())
                return int(self._seg_orow[s])
            return int(np.argmax(self._order[:size]))
        if self._kind == "fifo":
            return int(np.argmin(self._order[:size]))
        if self._packed:
            # the packed key's numeric order IS the heap's lexicographic
            # (lb, depth, order) order: one argmin — over ~n/4096 cached
            # segment minima when the segmented index is live (keys are
            # unique, so the indexed argmin IS the linear argmin), over
            # all n rows otherwise
            if self._seg_active():
                self._seg_refresh()
                s = int(self._seg_key[: self._n_segments()].argmin())
                return int(self._seg_krow[s])
            return int(np.argmin(self._key[:size]))
        lbs = self._lb[:size]
        best = lbs.min()
        candidates = np.flatnonzero(lbs == best)
        if candidates.shape[0] == 1:
            return int(candidates[0])
        # resolve ties by (depth, order_index), exactly like the heap key
        sub = np.lexsort((self._order[candidates], self._depth[candidates]))
        return int(candidates[sub[0]])

    def _pop_order(self) -> np.ndarray:
        """All pending rows, sorted in the strategy's pop order."""
        size = self._size
        if self._kind == "depth" or self.restricted:
            return np.argsort(self._order[:size], kind="stable")[::-1]
        if self._kind == "fifo":
            return np.argsort(self._order[:size], kind="stable")
        if self._packed:
            return np.argsort(self._key[:size])
        return np.lexsort((self._order[:size], self._depth[:size], self._lb[:size]))

    def _best_prefix(self, count: int) -> np.ndarray:
        """The first ``count`` rows in best-first pop order.

        Packed stores use ``argpartition`` over the key column; with the
        segmented index live, only the segments that can contribute to the
        ``count`` smallest keys are gathered: segments are drained in
        cached-minimum order until ``count`` candidate rows are on hand,
        the running ``count``-th smallest candidate key bounds which other
        segments could still matter (a segment whose cached minimum
        exceeds it cannot hold any of the ``count`` smallest), and the
        partition runs over that candidate set only.  Keys are unique, so
        the result is bit-identical to partitioning the whole store.
        """
        size = self._size
        if count >= size:
            return self._pop_order()
        if self._packed:
            if self._seg_active():
                self._seg_refresh()
                n_seg = self._n_segments()
                shift = self._seg_shift
                seg_min = self._seg_key[:n_seg]
                by_min = np.argsort(seg_min)
                sizes = np.full(n_seg, self._seg_size, dtype=np.int64)
                sizes[n_seg - 1] = size - ((n_seg - 1) << shift)
                cum = np.cumsum(sizes[by_min])
                take = int(np.searchsorted(cum, count)) + 1
                rows = self._seg_rows(by_min[:take], size)
                keys = self._key[rows]
                kth = np.partition(keys, count - 1)[count - 1]
                # candidate kth key only shrinks as segments are added, so
                # every segment whose minimum exceeds it is out for good
                reach = int(np.searchsorted(seg_min[by_min], kth, side="right"))
                if reach > take:
                    rows = np.concatenate(
                        [rows, self._seg_rows(by_min[take:reach], size)]
                    )
                    keys = self._key[rows]
                part = np.argpartition(keys, count - 1)[:count]
                return rows[part[np.argsort(keys[part])]]
            keys = self._key[:size]
            part = np.argpartition(keys, count - 1)[:count]
            return part[np.argsort(keys[part])]
        order = self._pop_order()
        return order[:count]

    def pop_min_tie_batch(self, budget_remaining: int | None = None) -> NodeBlock | None:
        """Pop every node sharing the minimal ``(lower_bound, depth)`` pair.

        In best-first order those nodes are popped consecutively no matter
        what happens in between: any child generated from one of them has
        either a larger bound or — at an equal bound — a larger depth, so
        its key can never preempt the remaining tie members.  Batching
        them lets the engine branch and bound all of their children in a
        single launch while exploring exactly the object layout's tree.

        ``budget_remaining`` is the caller's ``max_nodes`` headroom: a
        processed node can add up to ``1 + n_unscheduled`` to the explored
        count (itself plus all of its children pruned), so the batch is
        capped at the size that provably cannot cross the budget between
        member pops.  One node is always safe — the one-at-a-time engine
        also re-checks its budget only between pops.

        Only valid for the best-first strategy with packed keys; returns
        ``None`` when unavailable (caller falls back to single pops) —
        including while a ``max_pending`` cap holds selection in its
        depth-first-restricted regime (check :attr:`restricted` first to
        distinguish a pause from permanent unavailability).
        """
        if self._kind != "best" or not self._packed or self._size == 0 or self.restricted:
            return None
        size = self._size
        if self._seg_active():
            # only segments whose cached minimum sits below the tie
            # threshold can hold tie members — gather those rows only
            self._seg_refresh()
            seg_min = self._seg_key[: self._n_segments()]
            min_key = seg_min.min()
            threshold = ((min_key >> 32) + 1) << 32
            rows = self._seg_rows(np.flatnonzero(seg_min < threshold), size)
            candidates = rows[self._key[rows] < threshold]
        else:
            keys = self._key[:size]
            min_key = keys.min()
            candidates = np.flatnonzero(keys < ((min_key >> 32) + 1) << 32)
        if candidates.shape[0] > 1:
            candidates = candidates[np.argsort(self._key[candidates])]
            if budget_remaining is not None:
                depth = int(min_key >> 32) & 0x1FF
                worst_per_node = 1 + self._mask.shape[1] - depth
                cap = max(1, budget_remaining // worst_per_node)
                if candidates.shape[0] > cap:
                    candidates = candidates[:cap]
        block = self._extract(candidates)
        self._remove(np.sort(candidates))
        return block

    def peek_best(self) -> int:
        """Row index of the next node to pop (no removal).

        With :meth:`row_view` and :meth:`discard` this forms the zero-copy
        pop used by one-node-per-step engines: read the row in place,
        branch from the views, then discard the row — no one-row block is
        ever materialized.
        """
        if self._size == 0:
            raise IndexError("peek at an empty frontier")
        return self._pop_one_index()

    def row_view(self, row: int) -> tuple[int, int, int, int, np.ndarray, np.ndarray]:
        """``(lb, depth, order, trail_id, mask_view, release_view)`` of a row.

        The two array views alias the frontier's storage: they are valid
        only until the next :meth:`discard` / :meth:`push_block` call.
        """
        return (
            int(self._lb[row]),
            int(self._depth[row]),
            int(self._order[row]),
            int(self._tid[row]),
            self._mask[row],
            self._release[row],
        )

    def discard(self, row: int) -> None:
        """Remove one row (swap-compaction with the last row)."""
        last = self._size - 1
        if row != last:
            for name in self._ARRAYS:
                array = getattr(self, name)
                array[row] = array[last]
        if self._segmented:
            shift = self._seg_shift
            hole_seg = row >> shift
            self._seg_dirty[hole_seg] = True
            tail_seg = last >> shift
            if tail_seg != hole_seg and (
                not self._packed
                or self._seg_krow[tail_seg] == last
                or (self._seg_track_order and self._seg_orow[tail_seg] == last)
            ):
                # the tail row moved out of its segment; a fresh cache only
                # breaks when that row WAS the cached extremum — removing
                # any other row leaves the cached minimum/maximum attained
                self._seg_dirty[tail_seg] = True
            self._seg_any_dirty = True
        self._size = last

    def _extract(self, rows: np.ndarray) -> NodeBlock:
        return NodeBlock(
            scheduled_mask=self._mask[rows],
            release=self._release[rows],
            lower_bound=self._lb[rows],
            depth=self._depth[rows],
            order_index=self._order[rows],
            trail_id=self._tid[rows],
            trail=self._trail,
        )

    def _remove(self, rows: np.ndarray) -> None:
        """Swap-compact the given rows out of the store."""
        size, count = self._size, rows.shape[0]
        tail_start = size - count
        in_tail = rows >= tail_start
        holes = rows[~in_tail]
        if holes.shape[0]:
            tail_keep = np.setdiff1d(
                np.arange(tail_start, size, dtype=np.int64), rows[in_tail]
            )
            for name in self._ARRAYS:
                array = getattr(self, name)
                array[holes] = array[tail_keep]
        if self._segmented and count:
            shift = self._seg_shift
            self._seg_dirty[rows >> shift] = True
            self._seg_dirty[tail_start >> shift : ((size - 1) >> shift) + 1] = True
            self._seg_any_dirty = True
        self._size = tail_start

    # ------------------------------------------------------------------ #
    def pop_batch(
        self, max_nodes: int, upper_bound: float | None = None
    ) -> tuple[NodeBlock, int]:
        """Selection operator: remove up to ``max_nodes`` nodes, in pop order.

        With ``upper_bound`` given, nodes whose stored bound already meets
        the incumbent are discarded on the fly and counted — the lazy
        pruning of :func:`repro.bb.operators.select_batch`, with identical
        semantics: stale nodes met while filling the batch are dropped,
        and draining the pool without filling the batch drops every
        remaining stale node.

        Returns ``(selected, n_pruned)``.
        """
        if max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        size = self._size
        if size == 0:
            return (
                NodeBlock.empty(self._mask.shape[1], self._release.shape[1], self._trail),
                0,
            )
        if max_nodes == 1 and upper_bound is None:
            rows = np.array([self._pop_one_index()], dtype=np.int64)
            block = self._extract(rows)
            self._remove(rows)
            return block, 0

        if self._kind == "best" and not self.restricted:
            # Best-first pop order is non-decreasing in lb, so the fresh
            # nodes form a prefix: either the batch fills from it (no
            # pruning), or the pool drains and every stale node is dropped.
            # Whether the batch fills is read off the selected prefix
            # itself — the common nothing-pruned case costs exactly one
            # selection pass, no pre-counting scan.
            popped = self._best_prefix(max_nodes)
            if upper_bound is None or self._lb[popped[-1]] < upper_bound:
                selected = popped
            elif self._lb[popped[0]] >= upper_bound:
                # even the best pending bound is stale: the pool drains
                popped = np.arange(size, dtype=np.int64)
                selected = popped[:0]
            else:
                # the batch cannot fill: the pool drains, dropping every
                # stale node; the fresh rows key-sorted ARE the fresh
                # prefix of the pop order (keys are unique)
                fresh_rows = np.flatnonzero(self._lb[:size] < upper_bound)
                if self._packed:
                    selected = fresh_rows[np.argsort(self._key[fresh_rows])]
                else:
                    selected = fresh_rows[
                        np.lexsort(
                            (
                                self._order[fresh_rows],
                                self._depth[fresh_rows],
                                self._lb[fresh_rows],
                            )
                        )
                    ]
                popped = np.arange(size, dtype=np.int64)
        else:
            order = self._pop_order()
            if upper_bound is None:
                popped = order[:max_nodes]
                selected = popped
            else:
                fresh = self._lb[order] < upper_bound
                n_fresh = int(np.count_nonzero(fresh))
                if n_fresh >= max_nodes:
                    cut = int(np.searchsorted(np.cumsum(fresh), max_nodes)) + 1
                    popped = order[:cut]
                    selected = popped[fresh[:cut]]
                else:
                    popped = order
                    selected = popped[fresh]
        block = self._extract(selected)
        self._remove(np.sort(popped))
        return block, int(popped.shape[0] - selected.shape[0])

    def prune_to(self, upper_bound: float) -> int:
        """Drop pending nodes whose bound cannot improve ``upper_bound``.

        Mask compaction over the whole store; returns the number removed.
        """
        size = self._size
        if size == 0:
            return 0
        keep = self._lb[:size] < upper_bound
        kept = int(np.count_nonzero(keep))
        removed = size - kept
        if removed:
            rows = np.flatnonzero(keep)
            for name in self._ARRAYS:
                array = getattr(self, name)
                array[:kept] = array[rows]
            self._size = kept
            if self._segmented:
                # mask compaction moves every surviving row: rebuild the
                # caches of all surviving segments on the next query
                self._seg_dirty[: ((size - 1) >> self._seg_shift) + 1] = True
                self._seg_any_dirty = True
        return removed

    def best_lower_bound(self) -> int | None:
        """Smallest pending lower bound (``None`` when empty)."""
        if self._size == 0:
            return None
        if self._packed and self._seg_active():
            self._seg_refresh()
            # lb occupies the key's top bits, so the minimal key carries it
            return int(self._seg_key[: self._n_segments()].min() >> 41)
        return int(self._lb[: self._size].min())


def make_frontier(
    instance: FlowShopInstance,
    trail: Trail,
    strategy: str = "best-first",
    max_pending: int | None = None,
    frontier_index: str = "segmented",
) -> BlockFrontier:
    """Create a :class:`BlockFrontier` sized for ``instance``."""
    return BlockFrontier(
        instance.n_jobs,
        instance.n_machines,
        trail,
        strategy=strategy,
        max_pending=max_pending,
        frontier_index=frontier_index,
    )
