"""Versioned, checksummed serialization of complete search state.

The ROADMAP's "frontier persistence" item observes that the block layout
already keeps the entire search in a handful of int32 arrays — this module
turns that observation into fault tolerance.  A **snapshot** captures
everything a resumed solve needs to continue bit-identically to the run
that wrote it:

* the pending frontier — the first ``size`` rows of every
  :class:`~repro.bb.frontier.BlockFrontier` column plus the shared
  :class:`~repro.bb.frontier.Trail` (block layout), or the serialized
  node list of a :class:`~repro.bb.pool.NodePool` (object layout);
* the incumbent (``upper_bound`` + permutation) and every
  :class:`~repro.bb.stats.SearchStats` counter;
* the RNG-free tie state: ``next_order``, the creation index the next
  branched node will receive (selection ties break on creation index, so
  this is the only "random state" of the search);
* the instance itself (``processing_times`` travels in the payload, so a
  snapshot file is self-describing) and the engine configuration that
  produced it.

Container format (see the table in ``docs/ARCHITECTURE.md``)::

    magic b"RPBB" | header length (4 bytes BE) | JSON header | npz payload

The header carries the format version, the instance/engine fingerprints
and the payload's SHA-256 + length; :func:`loads_snapshot` re-hashes the
payload and rejects corrupt or truncated files with a typed error —
truncation at *any* byte offset fails loudly (``tests/test_chaos.py``
checks every offset).  :func:`save_snapshot` writes through a temp file in
the destination directory followed by ``os.replace``, so a crash
mid-checkpoint never destroys the previous good snapshot.

:class:`CheckpointPolicy` and :class:`CheckpointState` are the driver-side
half: :class:`~repro.bb.driver.SearchDriver` fires
``SearchHooks.on_checkpoint`` with a :class:`CheckpointState` whenever the
policy is due, and the engine (sequential CLI solve, service session)
turns the state into a snapshot file.  Checkpointing reads the live
arrays without mutating them, so firing at any step cannot perturb the
explored tree.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.bb.frontier import BlockFrontier, Trail
from repro.bb.node import Node
from repro.bb.pool import BestFirstPool, DepthFirstPool, FifoPool, NodePool, make_pool
from repro.bb.stats import SearchStats
from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "SnapshotCorrupt",
    "SnapshotVersionError",
    "SnapshotMismatch",
    "CheckpointPolicy",
    "CheckpointState",
    "Snapshot",
    "instance_fingerprint",
    "config_fingerprint",
    "dumps_snapshot",
    "loads_snapshot",
    "loads_header",
    "save_snapshot",
    "load_snapshot",
    "load_header",
]

#: Version of the container format; bumped on any incompatible change.
SNAPSHOT_FORMAT_VERSION = 1

#: First four bytes of every snapshot file.
MAGIC = b"RPBB"

#: ``SearchStats`` fields serialized into the header (explicit list — the
#: derived ``as_dict`` keys like ``nodes_explored`` are recomputed, never
#: stored).
_STATS_FIELDS = (
    "nodes_bounded",
    "nodes_branched",
    "nodes_pruned",
    "leaves_evaluated",
    "incumbent_updates",
    "pools_evaluated",
    "max_pool_size",
    "time_total_s",
    "time_bounding_s",
    "time_branching_s",
    "time_pool_s",
    "simulated_device_time_s",
)

#: Sentinel standing in for ``None`` bounds/makespans in the object-layout
#: node arrays (real values are always non-negative).
_NONE_SENTINEL = -1


class SnapshotError(Exception):
    """Base class of every snapshot load/save failure."""


class SnapshotCorrupt(SnapshotError):
    """The file is truncated, fails its checksum, or does not parse."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an unsupported format version."""


class SnapshotMismatch(SnapshotError):
    """The snapshot does not belong to the instance/engine resuming it."""


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the driver fires ``on_checkpoint``: every N steps / T seconds.

    ``every_steps`` fires deterministically (step counts are identical
    across runs); ``every_seconds`` fires on wall clock and is checked at
    a coarse cadence so an idle policy costs one integer comparison per
    step.  At least one trigger must be set.
    """

    every_steps: Optional[int] = None
    every_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_steps is None and self.every_seconds is None:
            raise ValueError("set every_steps and/or every_seconds")
        if self.every_steps is not None and self.every_steps < 1:
            raise ValueError("every_steps must be >= 1")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError("every_seconds must be > 0")


@dataclass
class CheckpointState:
    """Live search state handed to ``SearchHooks.on_checkpoint``.

    Everything is a *reference* to the driver's working state — valid only
    for the duration of the hook call.  ``best_order_supplier`` lazily
    materializes the incumbent permutation (block-layout prefixes are only
    walked when a checkpoint is actually written); ``next_order`` is the
    creation index of the next node (``0`` in the object layout, where the
    counter lives inside the nodes and is recovered from the pool).
    """

    frontier: Union[NodePool, BlockFrontier]
    trail: Optional[Trail]
    upper_bound: float
    best_order_supplier: Callable[[], tuple[int, ...]]
    next_order: int
    stats: SearchStats
    steps: int


# --------------------------------------------------------------------- #
#  fingerprints
# --------------------------------------------------------------------- #
def instance_fingerprint(instance: FlowShopInstance) -> str:
    """SHA-256 over the instance's dimensions and processing times."""
    digest = hashlib.sha256()
    digest.update(struct.pack(">II", instance.n_jobs, instance.n_machines))
    digest.update(np.ascontiguousarray(instance.processing_times, dtype=np.int64).tobytes())
    return digest.hexdigest()


def config_fingerprint(engine: dict) -> str:
    """SHA-256 of the canonical JSON form of an engine-config dict."""
    canonical = json.dumps(engine, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
#  capture
# --------------------------------------------------------------------- #
def _stats_dict(stats: SearchStats) -> dict:
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def _stats_from_dict(payload: dict) -> SearchStats:
    stats = SearchStats()
    for name in _STATS_FIELDS:
        if name in payload:
            setattr(stats, name, type(getattr(stats, name))(payload[name]))
    return stats


def _capture_block(
    frontier: BlockFrontier, trail: Trail, arrays: dict, header: dict
) -> None:
    size = len(frontier)
    trail_size = len(trail)
    arrays["trail_parent"] = trail._parent[:trail_size].copy()
    arrays["trail_job"] = trail._job[:trail_size].copy()
    arrays["f_mask"] = frontier._mask[:size].copy()
    arrays["f_release"] = frontier._release[:size].copy()
    arrays["f_lb"] = frontier._lb[:size].copy()
    arrays["f_depth"] = frontier._depth[:size].copy()
    arrays["f_order"] = frontier._order[:size].copy()
    arrays["f_tid"] = frontier._tid[:size].copy()
    header["frontier"] = {
        "size": size,
        "trail_size": trail_size,
        "strategy": frontier.strategy,
        "max_pending": frontier._cap,
        "max_size": frontier._max_size,
        "packed": bool(frontier._packed),
        # cap-hysteresis state: a resumed capped run must re-enter the
        # exact selection regime the interrupted run was in, or the
        # concatenated segments stop being bit-identical to a golden run
        "restricted": bool(frontier._restricted_now),
        "regime_switches": int(frontier.regime_switches),
    }


def _pool_nodes(pool: NodePool) -> list[Node]:
    """Pending nodes in an order whose re-push rebuilds an equivalent pool.

    Pop order depends only on the totally ordered sort keys (creation
    indices are unique), so re-pushing a heap's backing array in storage
    order reproduces the identical pop sequence; stacks serialize
    bottom-to-top and FIFO queues front-to-back so appends restore them
    verbatim.
    """
    if isinstance(pool, BestFirstPool):
        return [node for _, node in pool._heap]
    if isinstance(pool, DepthFirstPool):
        return list(pool._stack)
    if isinstance(pool, FifoPool):
        return list(pool._queue)
    raise SnapshotError(f"cannot snapshot pool type {type(pool).__name__}")


def _capture_object(pool: NodePool, n_machines: int, arrays: dict, header: dict) -> None:
    nodes = _pool_nodes(pool)
    count = len(nodes)
    lens = np.array([len(node.prefix) for node in nodes], dtype=np.int32)
    flat = np.array(
        [job for node in nodes for job in node.prefix], dtype=np.int32
    )
    release = np.zeros((count, n_machines), dtype=np.int64)
    lower = np.full(count, _NONE_SENTINEL, dtype=np.int64)
    makespan = np.full(count, _NONE_SENTINEL, dtype=np.int64)
    order = np.zeros(count, dtype=np.int64)
    for i, node in enumerate(nodes):
        release[i] = node.release
        if node.lower_bound is not None:
            lower[i] = node.lower_bound
        if node.makespan is not None:
            makespan[i] = node.makespan
        order[i] = node.order_index
    arrays["p_prefix_flat"] = flat
    arrays["p_prefix_lens"] = lens
    arrays["p_release"] = release
    arrays["p_lower"] = lower
    arrays["p_makespan"] = makespan
    arrays["p_order"] = order
    header["pool"] = {
        "size": count,
        "strategy": pool.strategy,
        "max_size": pool.max_size_seen,
    }


def dumps_snapshot(
    instance: FlowShopInstance,
    *,
    layout: str,
    frontier: Union[NodePool, BlockFrontier],
    upper_bound: float,
    best_order: tuple[int, ...],
    stats: SearchStats,
    trail: Optional[Trail] = None,
    next_order: int = 0,
    engine: Optional[dict] = None,
) -> bytes:
    """Serialize complete search state into one snapshot blob.

    The inverse of :func:`loads_snapshot`.  ``engine`` is the engine's
    configuration dict; it travels verbatim in the header (plus its
    fingerprint) so ``repro resume`` can rebuild the exact solver.
    """
    if layout not in ("block", "object"):
        raise ValueError(f"layout must be 'block' or 'object', got {layout!r}")
    engine = dict(engine or {})
    arrays: dict = {
        "processing_times": np.ascontiguousarray(
            instance.processing_times, dtype=np.int64
        )
    }
    header: dict = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "layout": layout,
        "instance": {
            "name": instance.name,
            "n_jobs": instance.n_jobs,
            "n_machines": instance.n_machines,
            "fingerprint": instance_fingerprint(instance),
        },
        "engine": engine,
        "engine_fingerprint": config_fingerprint(engine),
        "upper_bound": None if upper_bound == float("inf") else float(upper_bound),
        "best_order": [int(j) for j in best_order],
        "next_order": int(next_order),
        "stats": _stats_dict(stats),
    }
    if layout == "block":
        if not isinstance(frontier, BlockFrontier) or trail is None:
            raise ValueError("the block layout requires a BlockFrontier and its Trail")
        _capture_block(frontier, trail, arrays, header)
    else:
        if not isinstance(frontier, NodePool):
            raise ValueError("the object layout requires a NodePool")
        _capture_object(frontier, instance.n_machines, arrays, header)

    # Raw concatenated buffers, not npz: snapshots are written on the
    # search's hot path (every checkpoint interval) and read once after a
    # crash, so write latency beats container convenience — the zip
    # wrapper alone costs ~6x the memcpy.  The manifest in the header
    # (name, dtype, shape per array) is what np.load would have stored,
    # and the sha256 below is the integrity check.
    chunks = []
    manifest = []
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        chunks.append(contiguous.tobytes())
        manifest.append([name, contiguous.dtype.str, list(contiguous.shape)])
    payload = b"".join(chunks)
    header["payload"] = {
        "sha256": hashlib.sha256(payload).hexdigest(),
        "length": len(payload),
        "format": "raw",
        "arrays": manifest,
    }
    header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return MAGIC + struct.pack(">I", len(header_bytes)) + header_bytes + payload


# --------------------------------------------------------------------- #
#  restore
# --------------------------------------------------------------------- #
@dataclass
class Snapshot:
    """A fully materialized snapshot: ready-to-run search state.

    ``frontier``/``trail`` are freshly rebuilt objects — pushing the
    result of :func:`loads_snapshot` straight into
    :meth:`~repro.bb.driver.SearchDriver.run` continues the interrupted
    search bit-identically.
    """

    header: dict
    instance: FlowShopInstance
    layout: str
    frontier: Union[NodePool, BlockFrontier]
    trail: Optional[Trail]
    upper_bound: float
    best_order: tuple[int, ...]
    next_order: int
    stats: SearchStats

    @property
    def engine(self) -> dict:
        """The engine-configuration dict stored at capture time."""
        return self.header.get("engine", {})


def loads_header(blob: bytes) -> dict:
    """Parse and validate the JSON header of a snapshot blob.

    Verifies the magic, the declared lengths and the payload checksum;
    raises :class:`SnapshotCorrupt` on any truncation or corruption and
    :class:`SnapshotVersionError` for unsupported format versions.
    """
    if len(blob) < len(MAGIC) + 4:
        raise SnapshotCorrupt("snapshot truncated before the header length")
    if blob[: len(MAGIC)] != MAGIC:
        raise SnapshotCorrupt("bad magic: not a snapshot file")
    (header_len,) = struct.unpack(">I", blob[len(MAGIC) : len(MAGIC) + 4])
    header_start = len(MAGIC) + 4
    if len(blob) < header_start + header_len:
        raise SnapshotCorrupt("snapshot truncated inside the header")
    try:
        header = json.loads(blob[header_start : header_start + header_len])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotCorrupt(f"snapshot header does not parse: {exc}") from exc
    if not isinstance(header, dict):
        raise SnapshotCorrupt("snapshot header is not a JSON object")
    version = header.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotVersionError(
            f"unsupported snapshot format version {version!r} "
            f"(supported: {SNAPSHOT_FORMAT_VERSION})"
        )
    payload = blob[header_start + header_len :]
    declared = header.get("payload", {})
    if len(payload) != declared.get("length"):
        raise SnapshotCorrupt(
            f"snapshot payload truncated: {len(payload)} bytes, "
            f"header declares {declared.get('length')}"
        )
    if hashlib.sha256(payload).hexdigest() != declared.get("sha256"):
        raise SnapshotCorrupt("snapshot payload fails its checksum")
    return header


def _restore_block(header: dict, arrays, instance: FlowShopInstance):
    meta = header["frontier"]
    size = int(meta["size"])
    trail_size = int(meta["trail_size"])
    trail = Trail(capacity=max(trail_size, 1))
    trail._ensure(trail_size)
    trail._parent[:trail_size] = arrays["trail_parent"]
    trail._job[:trail_size] = arrays["trail_job"]
    trail._size = trail_size
    # The selection index is derived state: it is rebuilt from the engine
    # config (older snapshots default to "segmented"), never serialized —
    # the container format is unchanged and a snapshot written under one
    # index resumes bit-identically under the other.
    engine = header.get("engine", {})
    frontier = BlockFrontier(
        instance.n_jobs,
        instance.n_machines,
        trail,
        strategy=meta["strategy"],
        capacity=max(size, 64),
        max_pending=meta["max_pending"],
        frontier_index=str(engine.get("frontier_index", "segmented")),
    )
    frontier._mask[:size] = arrays["f_mask"]
    frontier._release[:size] = arrays["f_release"]
    frontier._lb[:size] = arrays["f_lb"]
    frontier._depth[:size] = arrays["f_depth"]
    frontier._order[:size] = arrays["f_order"]
    frontier._tid[:size] = arrays["f_tid"]
    frontier._packed = bool(meta["packed"])
    if frontier._packed and size:
        frontier._key[:size] = (
            (frontier._lb[:size].astype(np.int64) << 41)
            | (frontier._depth[:size].astype(np.int64) << 32)
            | frontier._order[:size]
        )
    frontier._size = size
    frontier._max_size = int(meta["max_size"])
    if frontier._segmented:
        # rows were written behind push_block's back: every segment is stale
        frontier._seg_dirty[:] = True
        frontier._seg_any_dirty = True
    if frontier._cap is not None:
        # pre-hysteresis snapshots carry no regime state: fall back to the
        # stateless rule (restricted iff at/above the cap)
        frontier._restricted_now = bool(
            meta.get("restricted", size >= frontier._cap)
        )
        frontier.regime_switches = int(meta.get("regime_switches", 0))
    return frontier, trail


def _restore_object(header: dict, arrays, instance: FlowShopInstance):
    import itertools

    meta = header["pool"]
    count = int(meta["size"])
    pool = make_pool(meta["strategy"])
    lens = arrays["p_prefix_lens"]
    flat = arrays["p_prefix_flat"]
    release = arrays["p_release"]
    lower = arrays["p_lower"]
    makespan = arrays["p_makespan"]
    order = arrays["p_order"]
    next_order = int(order.max()) + 1 if count else int(header.get("next_order", 0))
    counter = itertools.count(next_order)
    offsets = np.concatenate(([0], np.cumsum(lens)))
    for i in range(count):
        prefix = tuple(int(j) for j in flat[offsets[i] : offsets[i + 1]])
        node = Node(
            prefix=prefix,
            release=release[i],
            n_jobs=instance.n_jobs,
            lower_bound=None if lower[i] == _NONE_SENTINEL else int(lower[i]),
            makespan=None if makespan[i] == _NONE_SENTINEL else int(makespan[i]),
            order_index=int(order[i]),
            counter=counter,
        )
        pool.push(node)
    pool._max_size = max(int(meta["max_size"]), pool.max_size_seen)
    return pool, next_order


def _parse_raw_payload(manifest, payload: bytes) -> dict:
    """Slice the raw concatenated payload back into named arrays.

    Views over ``payload`` (no copy): every consumer either reads the
    arrays or assigns them *into* freshly allocated search structures.
    """
    arrays: dict = {}
    offset = 0
    for name, dtype_str, shape in manifest:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = dtype.itemsize * count
        if offset + nbytes > len(payload):
            raise SnapshotCorrupt(
                f"snapshot payload truncated inside array {name!r}"
            )
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
        offset += nbytes
    if offset != len(payload):
        raise SnapshotCorrupt(
            f"snapshot payload has {len(payload) - offset} trailing bytes"
        )
    return arrays


def loads_snapshot(blob: bytes) -> Snapshot:
    """Rebuild complete search state from a snapshot blob.

    Raises :class:`SnapshotCorrupt` / :class:`SnapshotVersionError` for
    bad blobs (see :func:`loads_header`); the returned state continues
    the interrupted search bit-identically.
    """
    header = loads_header(blob)
    header_start = len(MAGIC) + 4
    (header_len,) = struct.unpack(">I", blob[len(MAGIC) : header_start])
    payload = blob[header_start + header_len :]
    try:
        if header.get("payload", {}).get("format") == "raw":
            arrays = _parse_raw_payload(header["payload"]["arrays"], payload)
        else:
            # pre-manifest blobs carried an npz container
            arrays = np.load(io.BytesIO(payload), allow_pickle=False)
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotCorrupt(f"snapshot payload does not parse: {exc}") from exc
    try:
        instance_meta = header["instance"]
        instance = FlowShopInstance(
            arrays["processing_times"], name=instance_meta.get("name")
        )
        if instance_fingerprint(instance) != instance_meta.get("fingerprint"):
            raise SnapshotCorrupt("instance payload does not match its fingerprint")
        layout = header["layout"]
        upper_bound = header["upper_bound"]
        stats = _stats_from_dict(header.get("stats", {}))
        if layout == "block":
            frontier, trail = _restore_block(header, arrays, instance)
            next_order = int(header["next_order"])
        else:
            pool, next_order = _restore_object(header, arrays, instance)
            frontier, trail = pool, None
    except SnapshotError:
        raise
    except (KeyError, IndexError, ValueError, TypeError) as exc:
        raise SnapshotCorrupt(f"snapshot is missing or mangles a field: {exc}") from exc
    return Snapshot(
        header=header,
        instance=instance,
        layout=layout,
        frontier=frontier,
        trail=trail,
        upper_bound=float("inf") if upper_bound is None else float(upper_bound),
        best_order=tuple(int(j) for j in header.get("best_order", [])),
        next_order=next_order,
        stats=stats,
    )


# --------------------------------------------------------------------- #
#  file wrappers (atomic write)
# --------------------------------------------------------------------- #
def save_snapshot(path: Union[str, Path], blob: bytes) -> Path:
    """Write a snapshot blob atomically: temp file + fsync + ``os.replace``.

    A crash at any point leaves either the previous snapshot or the new
    one — never a torn file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_snapshot(path: Union[str, Path]) -> Snapshot:
    """Load and fully materialize the snapshot at ``path``."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return loads_snapshot(blob)


def load_header(path: Union[str, Path]) -> dict:
    """Parse and checksum-verify only the header of the snapshot at ``path``."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return loads_header(blob)
