"""Serial Branch-and-Bound for the permutation flow shop.

This is the single-core reference of every speed-up reported by the paper
(``T_cpu``): selection, branching, bounding and elimination all run on the
host, one node at a time.  The engine is instrumented so the share of time
spent in the bounding operator can be measured (the paper's preliminary
experiment reports ~98.5 % on the m=20 Taillard instances).

A ``trace`` mode records every node with its bound and fate, which is how
the Figure 1 example tree (3-job instance) is regenerated in the examples
and tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.bb.node import root_node
from repro.bb.operators import bound_children_batch, bound_node, branch
from repro.bb.pool import make_pool
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.flowshop.schedule import Schedule

__all__ = ["BBResult", "TraceEvent", "SequentialBranchAndBound"]


@dataclass(frozen=True)
class TraceEvent:
    """One node as seen by the search (only recorded in trace mode)."""

    prefix: tuple[int, ...]
    lower_bound: int
    upper_bound_at_visit: float
    action: str  # "branched", "pruned", "leaf", "incumbent"


@dataclass
class BBResult:
    """Outcome of a Branch-and-Bound run."""

    instance: FlowShopInstance
    best_makespan: int
    best_order: tuple[int, ...]
    #: True when the search ran to completion (no node / time limit hit)
    proved_optimal: bool
    stats: SearchStats = field(default_factory=SearchStats)
    trace: list[TraceEvent] = field(default_factory=list)

    @property
    def best_schedule(self) -> Schedule:
        return Schedule(self.instance, self.best_order)

    def summary(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "instance": self.instance.name or f"{self.instance.n_jobs}x{self.instance.n_machines}",
            "best_makespan": self.best_makespan,
            "proved_optimal": self.proved_optimal,
        }
        payload.update(self.stats.as_dict())
        return payload


class SequentialBranchAndBound:
    """Serial best-first (or depth-first) Branch-and-Bound.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    selection:
        Selection strategy: ``"best-first"`` (paper's default),
        ``"depth-first"`` or ``"fifo"``.
    initial_upper_bound:
        Starting incumbent value.  ``None`` seeds the search with the NEH
        heuristic (recommended); ``float("inf")`` starts from scratch.
    include_one_machine_bound:
        Forwarded to the lower bound (needed only when ``m == 1``).
    max_nodes / max_time_s:
        Optional exploration budgets; when either is hit the result is
        returned with ``proved_optimal=False``.
    trace:
        Record a :class:`TraceEvent` per examined node (small instances only).
    kernel:
        Bounding kernel used for the children of a branched node:
        ``"v2"`` (default) and ``"v1"`` evaluate all siblings in one
        batched call; ``"scalar"`` keeps the paper-faithful one-call-per-
        child evaluation (used by the bounding-fraction experiment, which
        reproduces the paper's 98.5 % measurement of exactly that path).
        Bounds are bit-identical in every mode, so the explored tree does
        not depend on this choice.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        selection: str = "best-first",
        initial_upper_bound: Optional[float] = None,
        include_one_machine_bound: bool = False,
        max_nodes: Optional[int] = None,
        max_time_s: Optional[float] = None,
        trace: bool = False,
        on_incumbent: Optional[Callable[[int, tuple[int, ...]], None]] = None,
        kernel: str = "v2",
    ):
        self.instance = instance
        self.data = LowerBoundData(instance)
        self.selection = selection
        self.initial_upper_bound = initial_upper_bound
        self.include_one_machine = include_one_machine_bound or instance.n_machines == 1
        self.max_nodes = max_nodes
        self.max_time_s = max_time_s
        self.trace_enabled = trace
        self.on_incumbent = on_incumbent
        if kernel not in ("scalar", "v1", "v2"):
            raise ValueError(f"kernel must be 'scalar', 'v1' or 'v2', got {kernel!r}")
        self.kernel = kernel

    # ------------------------------------------------------------------ #
    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        if self.initial_upper_bound is not None:
            return float(self.initial_upper_bound), ()
        heuristic = neh_heuristic(self.instance)
        return float(heuristic.makespan), tuple(heuristic.order)

    # ------------------------------------------------------------------ #
    def solve(self) -> BBResult:
        """Run the search to completion (or until a budget is exhausted)."""
        instance = self.instance
        data = self.data
        stats = SearchStats()
        trace: list[TraceEvent] = []

        upper_bound, best_order = self._initial_incumbent()
        if best_order:
            stats.incumbent_updates += 1

        pool = make_pool(self.selection)
        root = root_node(instance)

        start = time.perf_counter()
        t0 = time.perf_counter()
        bound_node(root, data, self.include_one_machine)
        stats.time_bounding_s += time.perf_counter() - t0
        stats.nodes_bounded += 1
        pool.push(root)

        completed = True
        while pool:
            if self.max_nodes is not None and stats.nodes_explored >= self.max_nodes:
                completed = False
                break
            if self.max_time_s is not None and time.perf_counter() - start > self.max_time_s:
                completed = False
                break

            t0 = time.perf_counter()
            node = pool.pop()
            stats.time_pool_s += time.perf_counter() - t0

            assert node.lower_bound is not None
            if node.lower_bound >= upper_bound:
                stats.nodes_pruned += 1
                if self.trace_enabled:
                    trace.append(TraceEvent(node.prefix, node.lower_bound, upper_bound, "pruned"))
                continue

            if node.is_leaf:
                stats.leaves_evaluated += 1
                makespan = int(node.release[-1])
                if makespan < upper_bound:
                    upper_bound = float(makespan)
                    best_order = node.prefix
                    stats.incumbent_updates += 1
                    if self.on_incumbent is not None:
                        self.on_incumbent(makespan, node.prefix)
                    if self.trace_enabled:
                        trace.append(TraceEvent(node.prefix, makespan, upper_bound, "incumbent"))
                elif self.trace_enabled:
                    trace.append(TraceEvent(node.prefix, makespan, upper_bound, "leaf"))
                stats.nodes_branched += 1  # examined, produced no children
                continue

            # Branch
            t0 = time.perf_counter()
            children = branch(node, instance)
            stats.time_branching_s += time.perf_counter() - t0
            stats.nodes_branched += 1
            if self.trace_enabled:
                trace.append(TraceEvent(node.prefix, node.lower_bound, upper_bound, "branched"))

            # Bound all siblings in one batched kernel call, then eliminate.
            t0 = time.perf_counter()
            if self.kernel == "scalar":
                for child in children:
                    bound_node(child, data, self.include_one_machine)
            else:
                bound_children_batch(children, data, self.include_one_machine, kernel=self.kernel)
            stats.time_bounding_s += time.perf_counter() - t0
            stats.nodes_bounded += len(children)
            for child in children:
                assert child.lower_bound is not None

                if child.is_leaf:
                    stats.leaves_evaluated += 1
                    makespan = int(child.release[-1])
                    if makespan < upper_bound:
                        upper_bound = float(makespan)
                        best_order = child.prefix
                        stats.incumbent_updates += 1
                        if self.on_incumbent is not None:
                            self.on_incumbent(makespan, child.prefix)
                        if self.trace_enabled:
                            trace.append(
                                TraceEvent(child.prefix, makespan, upper_bound, "incumbent")
                            )
                    continue

                if child.lower_bound >= upper_bound:
                    stats.nodes_pruned += 1
                    if self.trace_enabled:
                        trace.append(
                            TraceEvent(child.prefix, child.lower_bound, upper_bound, "pruned")
                        )
                    continue

                t0 = time.perf_counter()
                pool.push(child)
                stats.time_pool_s += time.perf_counter() - t0

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = pool.max_size_seen

        if not best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; provide a finite "
                "initial upper bound or let NEH seed the search"
            )
        return BBResult(
            instance=instance,
            best_makespan=int(upper_bound),
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
            trace=trace,
        )
