"""Serial Branch-and-Bound for the permutation flow shop.

This is the single-core reference of every speed-up reported by the paper
(``T_cpu``): selection, branching, bounding and elimination all run on the
host, one node at a time.  The engine is instrumented so the share of time
spent in the bounding operator can be measured (the paper's preliminary
experiment reports ~98.5 % on the m=20 Taillard instances).

A ``trace`` mode records every node with its bound and fate, which is how
the Figure 1 example tree (3-job instance) is regenerated in the examples
and tests.

The solve loop itself lives in :class:`~repro.bb.driver.SearchDriver` —
this engine is the driver's single-step configuration with the local
(zero-simulated-charge) bounding backend; it only seeds the root and wraps
the outcome into a :class:`BBResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.bb.driver import (
    SearchDriver,
    SearchHooks,
    SearchLimits,
    TraceEvent,
)
from repro.bb.frontier import BlockFrontier, Trail, bound_block, root_block
from repro.bb.node import root_node
from repro.bb.operators import bound_node
from repro.bb.pool import NodePool, make_pool
from repro.bb.snapshot import (
    CheckpointPolicy,
    CheckpointState,
    Snapshot,
    dumps_snapshot,
    load_snapshot,
    save_snapshot,
)
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.flowshop.schedule import Schedule

__all__ = ["BBResult", "TraceEvent", "SequentialBranchAndBound"]


@dataclass
class BBResult:
    """Outcome of a Branch-and-Bound run."""

    instance: FlowShopInstance
    best_makespan: int
    best_order: tuple[int, ...]
    #: True when the search ran to completion (no node / time limit hit)
    proved_optimal: bool
    stats: SearchStats = field(default_factory=SearchStats)
    trace: list[TraceEvent] = field(default_factory=list)

    @property
    def best_schedule(self) -> Schedule:
        """The incumbent permutation as a :class:`Schedule` (recomputes timing)."""
        return Schedule(self.instance, self.best_order)

    def summary(self) -> dict[str, object]:
        """Flat JSON-friendly dict: instance, makespan, optimality + counters."""
        payload: dict[str, object] = {
            "instance": self.instance.name or f"{self.instance.n_jobs}x{self.instance.n_machines}",
            "best_makespan": self.best_makespan,
            "proved_optimal": self.proved_optimal,
        }
        payload.update(self.stats.as_dict())
        return payload


class SequentialBranchAndBound:
    """Serial best-first (or depth-first) Branch-and-Bound.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    selection:
        Selection strategy: ``"best-first"`` (paper's default),
        ``"depth-first"`` or ``"fifo"``.
    initial_upper_bound:
        Starting incumbent value.  ``None`` seeds the search with the NEH
        heuristic (recommended); ``float("inf")`` starts from scratch.
    include_one_machine_bound:
        Forwarded to the lower bound (needed only when ``m == 1``).
    max_nodes / max_time_s:
        Optional exploration budgets; when either is hit the result is
        returned with ``proved_optimal=False``.
    trace:
        Record a :class:`TraceEvent` per examined node (small instances only).
    kernel:
        Bounding kernel used for the children of a branched node:
        ``"v2"`` (default) and ``"v1"`` evaluate all siblings in one
        batched call; ``"scalar"`` keeps the paper-faithful one-call-per-
        child evaluation (used by the bounding-fraction experiment, which
        reproduces the paper's 98.5 % measurement of exactly that path).
        Bounds are bit-identical in every mode, so the explored tree does
        not depend on this choice.
    layout:
        Node representation of the search: ``"block"`` (default) keeps the
        frontier as structure-of-arrays batches
        (:mod:`repro.bb.frontier`) — branching, selection and elimination
        are array programs and bounding reads the arrays with zero
        re-packing; ``"object"`` is the paper-faithful one-``Node``-per-
        sub-problem pipeline, kept for the layout ablation.  Both layouts
        explore the identical tree and report identical results and node
        counters.  ``kernel="scalar"`` implies the object layout (the
        bounding-fraction experiment measures exactly that path).
    max_frontier_nodes:
        Block layout only: high-water memory cap of the pending frontier.
        Once the frontier reaches this many nodes, best-first selection
        switches to a depth-first-restricted regime and — hysteretically —
        stays there until elimination drains the frontier below the
        low-water mark (0.8×cap; see
        :class:`~repro.bb.frontier.BlockFrontier`), so exhaustive runs
        cannot grow the pool without bound and selection does not flap at
        the cap boundary.  ``None`` (default) disables the cap.
    frontier_index:
        Block layout only: selection index of the pending frontier —
        ``"segmented"`` (default, cached per-segment key minima for
        sublinear best-first pops) or ``"linear"`` (full-scan ablation).
        Selection is bit-identical either way.
    overlap:
        ``"sync"`` or ``"async"`` — validated, recorded in snapshot
        headers and restored by :meth:`resume`, but a no-op for this
        engine's single-step shape (each pop depends on the bound of the
        previous step, so there is nothing to overlap; the batch-shaped
        GPU/cluster/hybrid engines give the knob its effect).
    checkpoint_path / checkpoint_every / checkpoint_seconds:
        Fault tolerance (see :mod:`repro.bb.snapshot`).  With a path set,
        the engine snapshots complete search state there every
        ``checkpoint_every`` steps and/or ``checkpoint_seconds`` seconds
        (atomic replace — a crash never destroys the previous snapshot),
        and always writes a final snapshot when a budget interrupts the
        run.  :meth:`resume` continues from such a file bit-identically:
        the resumed run's makespan, permutation and all ``SearchStats``
        counters match the uninterrupted golden run exactly.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        selection: str = "best-first",
        initial_upper_bound: Optional[float] = None,
        include_one_machine_bound: bool = False,
        max_nodes: Optional[int] = None,
        max_time_s: Optional[float] = None,
        trace: bool = False,
        on_incumbent: Optional[Callable[[int, tuple[int, ...]], None]] = None,
        kernel: str = "v2",
        layout: str = "block",
        max_frontier_nodes: Optional[int] = None,
        frontier_index: str = "segmented",
        overlap: str = "sync",
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_seconds: Optional[float] = None,
    ):
        self.instance = instance
        self.data = LowerBoundData(instance)
        self.selection = selection
        self.initial_upper_bound = initial_upper_bound
        self.include_one_machine = include_one_machine_bound or instance.n_machines == 1
        self.max_nodes = max_nodes
        self.max_time_s = max_time_s
        self.trace_enabled = trace
        self.on_incumbent = on_incumbent
        if kernel not in ("scalar", "v1", "v2"):
            raise ValueError(f"kernel must be 'scalar', 'v1' or 'v2', got {kernel!r}")
        self.kernel = kernel
        if layout not in ("block", "object"):
            raise ValueError(f"layout must be 'block' or 'object', got {layout!r}")
        if kernel == "scalar":
            # the scalar kernel IS the per-node object pipeline; a columnar
            # frontier would batch the very calls the ablation measures
            layout = "object"
        self.layout = layout
        if max_frontier_nodes is not None and max_frontier_nodes < 1:
            raise ValueError("max_frontier_nodes must be >= 1 when given")
        self.max_frontier_nodes = max_frontier_nodes
        if frontier_index not in ("segmented", "linear"):
            raise ValueError(
                f"frontier_index must be 'segmented' or 'linear', got {frontier_index!r}"
            )
        self.frontier_index = frontier_index
        if overlap not in ("sync", "async"):
            raise ValueError(f"overlap must be 'sync' or 'async', got {overlap!r}")
        # single-step shape: accepted (and recorded in snapshot headers so a
        # resume restores it) but a no-op — the next pop depends on the
        # current bound, so there is nothing to overlap
        self.overlap = overlap
        if checkpoint_path is None and (
            checkpoint_every is not None or checkpoint_seconds is not None
        ):
            raise ValueError("checkpoint_every/checkpoint_seconds require checkpoint_path")
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path is not None else None
        self.checkpoint_every = checkpoint_every
        self.checkpoint_seconds = checkpoint_seconds
        #: number of snapshots written by this engine instance
        self.checkpoints_written = 0

    # ------------------------------------------------------------------ #
    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        if self.initial_upper_bound is not None:
            return float(self.initial_upper_bound), ()
        heuristic = neh_heuristic(self.instance)
        return float(heuristic.makespan), tuple(heuristic.order)

    def _engine_config(self) -> dict[str, object]:
        """Engine settings recorded in snapshot headers (see :mod:`repro.bb.snapshot`)."""
        return {
            "engine": "serial",
            "selection": self.selection,
            "kernel": self.kernel,
            "layout": self.layout,
            "include_one_machine": self.include_one_machine,
            "max_frontier_nodes": self.max_frontier_nodes,
            "frontier_index": self.frontier_index,
            "overlap": self.overlap,
            "trace": self.trace_enabled,
        }

    def _write_snapshot(
        self,
        frontier: Union[NodePool, BlockFrontier],
        trail: Optional[Trail],
        upper_bound: float,
        best_order: tuple[int, ...],
        next_order: int,
        stats: SearchStats,
    ) -> None:
        assert self.checkpoint_path is not None
        blob = dumps_snapshot(
            self.instance,
            layout=self.layout,
            frontier=frontier,
            trail=trail,
            upper_bound=upper_bound,
            best_order=best_order,
            next_order=next_order,
            stats=stats,
            engine=self._engine_config(),
        )
        save_snapshot(self.checkpoint_path, blob)
        self.checkpoints_written += 1

    def _on_checkpoint(self, state: CheckpointState) -> None:
        self._write_snapshot(
            state.frontier,
            state.trail,
            state.upper_bound,
            state.best_order_supplier(),
            state.next_order,
            state.stats,
        )

    def _driver(self) -> SearchDriver:
        hooks = SearchHooks()
        if self.on_incumbent is not None:
            user_callback = self.on_incumbent
            hooks.on_improve_incumbent = lambda makespan, order: user_callback(makespan, order())
        checkpoint: Optional[CheckpointPolicy] = None
        if self.checkpoint_path is not None and (
            self.checkpoint_every is not None or self.checkpoint_seconds is not None
        ):
            checkpoint = CheckpointPolicy(
                every_steps=self.checkpoint_every,
                every_seconds=self.checkpoint_seconds,
            )
            hooks.on_checkpoint = self._on_checkpoint
        return SearchDriver(
            self.instance,
            self.data,
            layout=self.layout,
            selection=self.selection,
            kernel=self.kernel,
            include_one_machine=self.include_one_machine,
            limits=SearchLimits(max_nodes=self.max_nodes, max_time_s=self.max_time_s),
            hooks=hooks,
            trace=self.trace_enabled,
            overlap=self.overlap,
            checkpoint=checkpoint,
        )

    # ------------------------------------------------------------------ #
    def solve(self) -> BBResult:
        """Run the search to completion (or until a budget is exhausted)."""
        instance = self.instance
        stats = SearchStats()

        upper_bound, best_order = self._initial_incumbent()
        if best_order:
            stats.incumbent_updates += 1

        driver = self._driver()
        start = time.perf_counter()
        if self.layout == "block":
            trail = Trail()
            frontier = BlockFrontier(
                instance.n_jobs,
                instance.n_machines,
                trail,
                strategy=self.selection,
                max_pending=self.max_frontier_nodes,
                frontier_index=self.frontier_index,
            )
            root = root_block(instance, trail)
            t0 = time.perf_counter()
            bound_block(self.data, root, self.include_one_machine, kernel=self.kernel)
            stats.time_bounding_s += time.perf_counter() - t0
            stats.nodes_bounded += 1
            frontier.push_block(root)
            outcome = driver.run(
                frontier,
                upper_bound=upper_bound,
                best_order=best_order,
                stats=stats,
                trail=trail,
                next_order=1,
                start=start,
            )
            max_pool_size = frontier.max_size_seen
        else:
            pool = make_pool(self.selection)
            root = root_node(instance)
            t0 = time.perf_counter()
            bound_node(root, self.data, self.include_one_machine)
            stats.time_bounding_s += time.perf_counter() - t0
            stats.nodes_bounded += 1
            pool.push(root)
            outcome = driver.run(
                pool,
                upper_bound=upper_bound,
                best_order=best_order,
                stats=stats,
                start=start,
            )
            max_pool_size = pool.max_size_seen

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = max_pool_size

        if not outcome.completed and self.checkpoint_path is not None:
            # budget interrupted the run: persist the live frontier so
            # `resume` can pick up exactly where this segment stopped
            self._write_snapshot(
                frontier if self.layout == "block" else pool,
                trail if self.layout == "block" else None,
                outcome.upper_bound,
                tuple(outcome.best_order),
                outcome.next_order,
                stats,
            )

        if not outcome.best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; provide a finite "
                "initial upper bound or let NEH seed the search"
            )
        return BBResult(
            instance=instance,
            best_makespan=int(outcome.upper_bound),
            best_order=tuple(outcome.best_order),
            proved_optimal=outcome.completed,
            stats=stats,
            trace=outcome.trace,
        )

    # ------------------------------------------------------------------ #
    def _resume_solve(self, snapshot: Snapshot) -> BBResult:
        """Continue the search captured in ``snapshot`` (see :meth:`resume`)."""
        instance = self.instance
        stats = snapshot.stats
        carried_time = stats.time_total_s

        driver = self._driver()
        start = time.perf_counter()
        if self.layout == "block":
            frontier = snapshot.frontier
            assert isinstance(frontier, BlockFrontier)
            trail = snapshot.trail
            assert trail is not None
            outcome = driver.run(
                frontier,
                upper_bound=snapshot.upper_bound,
                best_order=snapshot.best_order,
                stats=stats,
                trail=trail,
                next_order=snapshot.next_order,
                start=start,
            )
            live: Union[NodePool, BlockFrontier] = frontier
        else:
            pool = snapshot.frontier
            assert isinstance(pool, NodePool)
            trail = None
            outcome = driver.run(
                pool,
                upper_bound=snapshot.upper_bound,
                best_order=snapshot.best_order,
                stats=stats,
                start=start,
            )
            live = pool

        stats.time_total_s = carried_time + (time.perf_counter() - start)
        stats.max_pool_size = live.max_size_seen

        if not outcome.completed and self.checkpoint_path is not None:
            self._write_snapshot(
                live,
                trail,
                outcome.upper_bound,
                tuple(outcome.best_order),
                outcome.next_order,
                stats,
            )

        if not outcome.best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; provide a finite "
                "initial upper bound or let NEH seed the search"
            )
        return BBResult(
            instance=instance,
            best_makespan=int(outcome.upper_bound),
            best_order=tuple(outcome.best_order),
            proved_optimal=outcome.completed,
            stats=stats,
            trace=outcome.trace,
        )

    @classmethod
    def resume(
        cls,
        path: Union[str, Path],
        *,
        max_nodes: Optional[int] = None,
        max_time_s: Optional[float] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_seconds: Optional[float] = None,
        on_incumbent: Optional[Callable[[int, tuple[int, ...]], None]] = None,
    ) -> BBResult:
        """Continue a checkpointed solve from a snapshot file.

        The engine (selection, kernel, layout, bound options) is rebuilt
        from the snapshot header, the frontier/trail/incumbent/counters are
        restored exactly, and the search resumes without re-seeding NEH or
        re-bounding the root.  The concatenation of the interrupted
        segments is bit-identical (makespan, permutation, every counter,
        and the trace) to one uninterrupted run.

        Budgets are cumulative: ``max_nodes`` counts nodes explored across
        *all* segments, so resuming with a larger budget continues where
        the previous segment's budget cut the search.  By default the
        resumed run keeps checkpointing to the same file; pass
        ``checkpoint_path`` to redirect it.

        Returns the :class:`BBResult` of the resumed segment; its ``trace``
        covers only this segment.
        """
        snapshot = load_snapshot(path)
        engine_conf = snapshot.engine
        max_frontier = engine_conf.get("max_frontier_nodes")
        engine = cls(
            snapshot.instance,
            selection=str(engine_conf.get("selection", "best-first")),
            include_one_machine_bound=bool(engine_conf.get("include_one_machine", False)),
            max_nodes=max_nodes,
            max_time_s=max_time_s,
            trace=bool(engine_conf.get("trace", False)),
            on_incumbent=on_incumbent,
            kernel=str(engine_conf.get("kernel", "v2")),
            layout=snapshot.layout,
            max_frontier_nodes=int(max_frontier) if max_frontier is not None else None,
            frontier_index=str(engine_conf.get("frontier_index", "segmented")),
            overlap=str(engine_conf.get("overlap", "sync")),
            checkpoint_path=checkpoint_path if checkpoint_path is not None else path,
            checkpoint_every=checkpoint_every,
            checkpoint_seconds=checkpoint_seconds,
        )
        return engine._resume_solve(snapshot)
