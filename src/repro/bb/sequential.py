"""Serial Branch-and-Bound for the permutation flow shop.

This is the single-core reference of every speed-up reported by the paper
(``T_cpu``): selection, branching, bounding and elimination all run on the
host, one node at a time.  The engine is instrumented so the share of time
spent in the bounding operator can be measured (the paper's preliminary
experiment reports ~98.5 % on the m=20 Taillard instances).

A ``trace`` mode records every node with its bound and fate, which is how
the Figure 1 example tree (3-job instance) is regenerated in the examples
and tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.bb.frontier import (
    BlockFrontier,
    Trail,
    bound_block,
    branch_block,
    branch_row,
    leaf_improvements,
    root_block,
)
from repro.bb.node import root_node
from repro.bb.operators import bound_children_batch, bound_node, branch
from repro.bb.pool import make_pool
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic
from repro.flowshop.schedule import Schedule

__all__ = ["BBResult", "TraceEvent", "SequentialBranchAndBound"]


@dataclass(frozen=True)
class TraceEvent:
    """One node as seen by the search (only recorded in trace mode)."""

    prefix: tuple[int, ...]
    lower_bound: int
    upper_bound_at_visit: float
    action: str  # "branched", "pruned", "leaf", "incumbent"


@dataclass
class BBResult:
    """Outcome of a Branch-and-Bound run."""

    instance: FlowShopInstance
    best_makespan: int
    best_order: tuple[int, ...]
    #: True when the search ran to completion (no node / time limit hit)
    proved_optimal: bool
    stats: SearchStats = field(default_factory=SearchStats)
    trace: list[TraceEvent] = field(default_factory=list)

    @property
    def best_schedule(self) -> Schedule:
        return Schedule(self.instance, self.best_order)

    def summary(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "instance": self.instance.name or f"{self.instance.n_jobs}x{self.instance.n_machines}",
            "best_makespan": self.best_makespan,
            "proved_optimal": self.proved_optimal,
        }
        payload.update(self.stats.as_dict())
        return payload


class SequentialBranchAndBound:
    """Serial best-first (or depth-first) Branch-and-Bound.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    selection:
        Selection strategy: ``"best-first"`` (paper's default),
        ``"depth-first"`` or ``"fifo"``.
    initial_upper_bound:
        Starting incumbent value.  ``None`` seeds the search with the NEH
        heuristic (recommended); ``float("inf")`` starts from scratch.
    include_one_machine_bound:
        Forwarded to the lower bound (needed only when ``m == 1``).
    max_nodes / max_time_s:
        Optional exploration budgets; when either is hit the result is
        returned with ``proved_optimal=False``.
    trace:
        Record a :class:`TraceEvent` per examined node (small instances only).
    kernel:
        Bounding kernel used for the children of a branched node:
        ``"v2"`` (default) and ``"v1"`` evaluate all siblings in one
        batched call; ``"scalar"`` keeps the paper-faithful one-call-per-
        child evaluation (used by the bounding-fraction experiment, which
        reproduces the paper's 98.5 % measurement of exactly that path).
        Bounds are bit-identical in every mode, so the explored tree does
        not depend on this choice.
    layout:
        Node representation of the search: ``"block"`` (default) keeps the
        frontier as structure-of-arrays batches
        (:mod:`repro.bb.frontier`) — branching, selection and elimination
        are array programs and bounding reads the arrays with zero
        re-packing; ``"object"`` is the paper-faithful one-``Node``-per-
        sub-problem pipeline, kept for the layout ablation.  Both layouts
        explore the identical tree and report identical results and node
        counters.  ``kernel="scalar"`` implies the object layout (the
        bounding-fraction experiment measures exactly that path).
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        selection: str = "best-first",
        initial_upper_bound: Optional[float] = None,
        include_one_machine_bound: bool = False,
        max_nodes: Optional[int] = None,
        max_time_s: Optional[float] = None,
        trace: bool = False,
        on_incumbent: Optional[Callable[[int, tuple[int, ...]], None]] = None,
        kernel: str = "v2",
        layout: str = "block",
    ):
        self.instance = instance
        self.data = LowerBoundData(instance)
        self.selection = selection
        self.initial_upper_bound = initial_upper_bound
        self.include_one_machine = include_one_machine_bound or instance.n_machines == 1
        self.max_nodes = max_nodes
        self.max_time_s = max_time_s
        self.trace_enabled = trace
        self.on_incumbent = on_incumbent
        if kernel not in ("scalar", "v1", "v2"):
            raise ValueError(f"kernel must be 'scalar', 'v1' or 'v2', got {kernel!r}")
        self.kernel = kernel
        if layout not in ("block", "object"):
            raise ValueError(f"layout must be 'block' or 'object', got {layout!r}")
        if kernel == "scalar":
            # the scalar kernel IS the per-node object pipeline; a columnar
            # frontier would batch the very calls the ablation measures
            layout = "object"
        self.layout = layout

    # ------------------------------------------------------------------ #
    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        if self.initial_upper_bound is not None:
            return float(self.initial_upper_bound), ()
        heuristic = neh_heuristic(self.instance)
        return float(heuristic.makespan), tuple(heuristic.order)

    # ------------------------------------------------------------------ #
    def solve(self) -> BBResult:
        """Run the search to completion (or until a budget is exhausted)."""
        if self.layout == "block":
            return self._solve_block()
        return self._solve_object()

    # ------------------------------------------------------------------ #
    def _solve_object(self) -> BBResult:
        """Object layout: one ``Node`` per sub-problem, heap-backed pool."""
        instance = self.instance
        data = self.data
        stats = SearchStats()
        trace: list[TraceEvent] = []

        upper_bound, best_order = self._initial_incumbent()
        if best_order:
            stats.incumbent_updates += 1

        pool = make_pool(self.selection)
        root = root_node(instance)

        start = time.perf_counter()
        t0 = time.perf_counter()
        bound_node(root, data, self.include_one_machine)
        stats.time_bounding_s += time.perf_counter() - t0
        stats.nodes_bounded += 1
        pool.push(root)

        completed = True
        while pool:
            if self.max_nodes is not None and stats.nodes_explored >= self.max_nodes:
                completed = False
                break
            if self.max_time_s is not None and time.perf_counter() - start > self.max_time_s:
                completed = False
                break

            t0 = time.perf_counter()
            node = pool.pop()
            stats.time_pool_s += time.perf_counter() - t0

            assert node.lower_bound is not None
            if node.lower_bound >= upper_bound:
                stats.nodes_pruned += 1
                if self.trace_enabled:
                    trace.append(TraceEvent(node.prefix, node.lower_bound, upper_bound, "pruned"))
                continue

            if node.is_leaf:
                stats.leaves_evaluated += 1
                makespan = int(node.release[-1])
                if makespan < upper_bound:
                    upper_bound = float(makespan)
                    best_order = node.prefix
                    stats.incumbent_updates += 1
                    if self.on_incumbent is not None:
                        self.on_incumbent(makespan, node.prefix)
                    if self.trace_enabled:
                        trace.append(TraceEvent(node.prefix, makespan, upper_bound, "incumbent"))
                elif self.trace_enabled:
                    trace.append(TraceEvent(node.prefix, makespan, upper_bound, "leaf"))
                stats.nodes_branched += 1  # examined, produced no children
                continue

            # Branch
            t0 = time.perf_counter()
            children = branch(node, instance)
            stats.time_branching_s += time.perf_counter() - t0
            stats.nodes_branched += 1
            if self.trace_enabled:
                trace.append(TraceEvent(node.prefix, node.lower_bound, upper_bound, "branched"))

            # Bound all siblings in one batched kernel call, then eliminate.
            t0 = time.perf_counter()
            if self.kernel == "scalar":
                for child in children:
                    bound_node(child, data, self.include_one_machine)
            else:
                bound_children_batch(children, data, self.include_one_machine, kernel=self.kernel)
            stats.time_bounding_s += time.perf_counter() - t0
            stats.nodes_bounded += len(children)
            survivors = []
            for child in children:
                assert child.lower_bound is not None

                if child.is_leaf:
                    stats.leaves_evaluated += 1
                    makespan = int(child.release[-1])
                    if makespan < upper_bound:
                        upper_bound = float(makespan)
                        best_order = child.prefix
                        stats.incumbent_updates += 1
                        if self.on_incumbent is not None:
                            self.on_incumbent(makespan, child.prefix)
                        if self.trace_enabled:
                            trace.append(
                                TraceEvent(child.prefix, makespan, upper_bound, "incumbent")
                            )
                    continue

                if child.lower_bound >= upper_bound:
                    stats.nodes_pruned += 1
                    if self.trace_enabled:
                        trace.append(
                            TraceEvent(child.prefix, child.lower_bound, upper_bound, "pruned")
                        )
                    continue

                survivors.append(child)

            # one timing pair per branching step instead of two clock reads
            # around every individual push
            t0 = time.perf_counter()
            for child in survivors:
                pool.push(child)
            stats.time_pool_s += time.perf_counter() - t0

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = pool.max_size_seen

        if not best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; provide a finite "
                "initial upper bound or let NEH seed the search"
            )
        return BBResult(
            instance=instance,
            best_makespan=int(upper_bound),
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
            trace=trace,
        )

    # ------------------------------------------------------------------ #
    def _solve_block(self) -> BBResult:
        """Block layout: the same search over structure-of-arrays batches.

        Selection pops the identical ``(lower bound, depth, creation
        index)`` minimum, branching materializes all siblings at once,
        bounding reads the block arrays with zero re-packing, and
        elimination is one boolean mask — the explored tree, the result
        and every node counter are identical to :meth:`_solve_object`.
        """
        instance = self.instance
        data = self.data
        n_jobs = instance.n_jobs
        pt = instance.processing_times
        stats = SearchStats()
        trace: list[TraceEvent] = []
        trace_on = self.trace_enabled

        upper_bound, best_order = self._initial_incumbent()
        if best_order:
            stats.incumbent_updates += 1
        best_trail: Optional[int] = None

        trail = Trail()
        frontier = BlockFrontier(
            n_jobs, instance.n_machines, trail, strategy=self.selection
        )
        root = root_block(instance, trail)
        next_order = 1
        perf_counter = time.perf_counter
        max_nodes, max_time_s = self.max_nodes, self.max_time_s
        include_one_machine, kernel = self.include_one_machine, self.kernel
        on_incumbent = self.on_incumbent

        start = time.perf_counter()
        t0 = time.perf_counter()
        bound_block(data, root, self.include_one_machine, kernel=self.kernel)
        stats.time_bounding_s += time.perf_counter() - t0
        stats.nodes_bounded += 1
        frontier.push_block(root)

        # Tie batching (best-first, untraced runs): every node sharing the
        # minimal (lb, depth) pair is popped in one batch and their children
        # branched + bounded in a single launch — provably the same pop
        # sequence as one-at-a-time selection (see pop_min_tie_batch).
        use_batches = not trace_on and self.selection.lower() in ("best-first", "best")
        completed = True
        while frontier:
            if max_nodes is not None and stats.nodes_explored >= max_nodes:
                completed = False
                break
            if max_time_s is not None and perf_counter() - start > max_time_s:
                completed = False
                break

            if use_batches:
                remaining = max_nodes - stats.nodes_explored if max_nodes is not None else None
                t0 = perf_counter()
                batch = frontier.pop_min_tie_batch(remaining)
                stats.time_pool_s += perf_counter() - t0
                if batch is None:
                    use_batches = False  # key packing unavailable: single pops
                else:
                    k = len(batch)
                    lb0 = int(batch.lower_bound[0])
                    depth0 = int(batch.depth[0])
                    if lb0 >= upper_bound:
                        stats.nodes_pruned += k
                        continue
                    if depth0 == n_jobs:
                        # complete schedules sharing one makespan: the first
                        # becomes the incumbent, the rest are pruned at its
                        # (now equal) bound — exactly the one-at-a-time fates
                        stats.leaves_evaluated += 1
                        upper_bound = float(lb0)
                        best_trail = int(batch.trail_id[0])
                        stats.incumbent_updates += 1
                        if on_incumbent is not None:
                            on_incumbent(lb0, trail.prefix(best_trail))
                        stats.nodes_branched += 1
                        stats.nodes_pruned += k - 1
                        continue
                    if depth0 + 1 == n_jobs:
                        # leaf children tighten the incumbent between member
                        # pops, so members must be examined one at a time
                        for i in range(k):
                            if lb0 >= upper_bound:
                                stats.nodes_pruned += 1
                                continue
                            t0 = perf_counter()
                            children = branch_row(
                                batch.scheduled_mask[i],
                                batch.release[i],
                                depth0,
                                int(batch.trail_id[i]),
                                trail,
                                pt,
                                next_order,
                            )
                            stats.time_branching_s += perf_counter() - t0
                            next_order += len(children)
                            stats.nodes_branched += 1
                            t0 = perf_counter()
                            bound_block(
                                data, children, include_one_machine, kernel=kernel, siblings=True
                            )
                            stats.time_bounding_s += perf_counter() - t0
                            n_children = len(children)
                            stats.nodes_bounded += n_children
                            stats.leaves_evaluated += n_children
                            makespans = children.makespans
                            improving, _ = leaf_improvements(upper_bound, makespans)
                            for j in improving:
                                makespan = int(makespans[j])
                                upper_bound = float(makespan)
                                best_trail = int(children.trail_id[j])
                                stats.incumbent_updates += 1
                                if on_incumbent is not None:
                                    on_incumbent(makespan, children.prefix(j))
                        continue

                    # interior batch: one branch + one bounding launch for
                    # the children of every tied node
                    t0 = perf_counter()
                    if k == 1:
                        children = branch_row(
                            batch.scheduled_mask[0],
                            batch.release[0],
                            depth0,
                            int(batch.trail_id[0]),
                            trail,
                            pt,
                            next_order,
                        )
                    else:
                        children = branch_block(batch, pt, next_order)
                    stats.time_branching_s += perf_counter() - t0
                    next_order += len(children)
                    stats.nodes_branched += k
                    t0 = perf_counter()
                    bound_block(
                        data, children, include_one_machine, kernel=kernel, siblings=k == 1
                    )
                    stats.time_bounding_s += perf_counter() - t0
                    n_children = len(children)
                    stats.nodes_bounded += n_children
                    keep = children.lower_bound < upper_bound
                    pruned = n_children - int(np.count_nonzero(keep))
                    stats.nodes_pruned += pruned
                    if pruned and k > 1:
                        # reconstruct the pool sizes a one-node-at-a-time
                        # engine records between member pops (each member
                        # contributes exactly n - depth0 children)
                        per_member = n_jobs - depth0
                        kept_per = np.add.reduceat(keep, np.arange(0, k * per_member, per_member))
                        sizes = (
                            len(frontier)
                            + (k - 1 - np.arange(k))
                            + np.cumsum(kept_per)
                        )
                        populated = kept_per > 0
                        if populated.any():
                            frontier.record_size_hint(int(sizes[populated].max()))
                    t0 = perf_counter()
                    frontier.push_block(children, keep if pruned else None)
                    stats.time_pool_s += perf_counter() - t0
                    continue

            # Zero-copy pop: read the best row in place, branch from the
            # views, then swap-compact it out.
            t0 = perf_counter()
            row = frontier.peek_best()
            node_lb, node_depth, _, node_tid, mask_view, release_view = frontier.row_view(row)
            stats.time_pool_s += perf_counter() - t0

            if node_lb >= upper_bound:
                frontier.discard(row)
                stats.nodes_pruned += 1
                if trace_on:
                    trace.append(
                        TraceEvent(trail.prefix(node_tid), node_lb, upper_bound, "pruned")
                    )
                continue

            if node_depth == n_jobs:
                makespan = int(release_view[-1])
                frontier.discard(row)
                stats.leaves_evaluated += 1
                if makespan < upper_bound:
                    upper_bound = float(makespan)
                    best_trail = node_tid
                    stats.incumbent_updates += 1
                    if on_incumbent is not None:
                        on_incumbent(makespan, trail.prefix(node_tid))
                    if trace_on:
                        trace.append(
                            TraceEvent(trail.prefix(node_tid), makespan, upper_bound, "incumbent")
                        )
                elif trace_on:
                    trace.append(
                        TraceEvent(trail.prefix(node_tid), makespan, upper_bound, "leaf")
                    )
                stats.nodes_branched += 1  # examined, produced no children
                continue

            # Branch: every sibling in one shot, straight off the row views.
            t0 = perf_counter()
            children = branch_row(
                mask_view, release_view, node_depth, node_tid, trail, pt, next_order
            )
            frontier.discard(row)
            stats.time_branching_s += perf_counter() - t0
            next_order += len(children)
            stats.nodes_branched += 1
            if trace_on:
                trace.append(TraceEvent(trail.prefix(node_tid), node_lb, upper_bound, "branched"))

            # Bound the sibling block straight off its arrays.
            t0 = perf_counter()
            bound_block(
                data,
                children,
                include_one_machine,
                kernel=kernel,
                siblings=True,
            )
            stats.time_bounding_s += perf_counter() - t0
            n_children = len(children)
            stats.nodes_bounded += n_children

            if node_depth + 1 == n_jobs:
                # Siblings share their depth, so either every child is a
                # complete schedule or none is.  Replicate the object
                # layout's in-order incumbent updates with a running min.
                stats.leaves_evaluated += n_children
                makespans = children.makespans
                improving, running = leaf_improvements(upper_bound, makespans)
                for i in improving:
                    makespan = int(makespans[i])
                    upper_bound = float(makespan)
                    best_trail = int(children.trail_id[i])
                    stats.incumbent_updates += 1
                    if on_incumbent is not None:
                        on_incumbent(makespan, children.prefix(i))
                if trace_on:
                    run_after = np.minimum.accumulate(
                        np.concatenate(([running[0]], makespans.astype(np.float64)))
                    )[1:]
                    for i in range(n_children):
                        action = "incumbent" if makespans[i] < running[i] else "leaf"
                        trace.append(
                            TraceEvent(
                                children.prefix(i), int(makespans[i]), float(run_after[i]), action
                            )
                        )
                continue

            # Eliminate + insert in one masked append.
            keep = children.lower_bound < upper_bound
            pruned = n_children - int(np.count_nonzero(keep))
            stats.nodes_pruned += pruned
            if trace_on and pruned:
                for i in np.flatnonzero(~keep):
                    trace.append(
                        TraceEvent(
                            children.prefix(i),
                            int(children.lower_bound[i]),
                            upper_bound,
                            "pruned",
                        )
                    )
            t0 = perf_counter()
            frontier.push_block(children, keep if pruned else None)
            stats.time_pool_s += perf_counter() - t0

        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = frontier.max_size_seen

        if best_trail is not None:
            best_order = trail.prefix(best_trail)
        if not best_order:
            raise RuntimeError(
                "the search terminated without an incumbent; provide a finite "
                "initial upper bound or let NEH seed the search"
            )
        return BBResult(
            instance=instance,
            best_makespan=int(upper_bound),
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
            trace=trace,
        )
