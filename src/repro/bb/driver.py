"""The one canonical Branch-and-Bound iteration, shared by every engine.

Melab, Chakroun, Mezmaz & Tuyttens describe a *single* B&B iteration —
*select* pending sub-problems, *branch* them into children, *bound* the
children, *eliminate* those that cannot improve the incumbent — and vary
only where the bounding runs (CPU, GPU, cluster of GPU nodes) and which
distribution overheads are charged.  :class:`SearchDriver` is that
iteration written once.  It owns the loop over either node layout — a heap
:class:`~repro.bb.pool.NodePool` of ``Node`` objects or a columnar
:class:`~repro.bb.frontier.BlockFrontier` — and is parameterized by

* an **offload** — any object with ``bound_nodes(nodes)`` /
  ``bound_block(block, siblings)`` returning ``(bounds, simulated_s,
  measured_s)``: the bounding operator plus its simulated-time charge.
  Bounds are written onto the nodes / into the block column; the tuple's
  ``bounds`` element is advisory and may be ``None`` (the driver never
  reads it).  :class:`LocalBounding` is the host-side default (zero
  charge); the GPU, cluster and hybrid engines pass adapters around their
  executors.
* **per-step hooks** (:class:`SearchHooks`) through which engines inject
  their deployment specifics without owning a loop of their own.
* **budgets** (:class:`SearchLimits`): node, wall-clock, iteration and
  absolute-deadline stop predicates.

Two loop *shapes* cover every engine: the **single-step** shape pops one
node (or one best-first tie batch) per step and bounds its sibling set —
the serial engine and the work-stealing workers; the **batch** shape
(``batch_size`` set) selects up to ``batch_size`` nodes, branches them all
and off-loads one large pool per iteration — the paper's GPU architecture
and its cluster/hybrid extensions.

Deployment map (paper deployment → driver configuration)
--------------------------------------------------------
================= ==================== ====================================
Deployment        Offload              Hook / budget set
================= ==================== ====================================
serial CPU        LocalBounding        single-step; ``trace`` recording,
(paper's T_cpu)                        ``on_improve_incumbent`` user
                                       callback; ``max_nodes``/``max_time_s``
GPU (Figure 3)    executor adapter     batch mode (``batch_size`` =
                                       pool size); ``on_iteration`` records
                                       per-launch accounting; optional
                                       ``double_buffer`` overlap credit
pipeline / hybrid executor adapter     batch mode from a seeded frontier;
                                       ``max_iterations``; cooperative
                                       incumbent seeding happens *between*
                                       driver runs
cluster           distributed adapter  batch mode; ``incumbent_charge_s``
                                       bills one interconnect broadcast per
                                       incumbent improvement
multicore         LocalBounding        single-step; ``poll_bound`` +
(work stealing)                        ``poll_interval`` re-read the shared
                                       incumbent and re-prune the pool;
                                       ``on_improve_incumbent`` publishes
                                       CAS updates; ``deadline`` budget
================= ==================== ====================================

The driver reproduces the historical per-engine loops bit-for-bit: the
explored tree, the result, every node counter and the trace are identical
to the pre-driver implementations for both layouts (see
``tests/test_driver.py``, which pins golden results captured from them).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence, Union

import numpy as np

from repro.bb.frontier import (
    BlockFrontier,
    NodeBlock,
    Trail,
    bound_block,
    branch_block,
    branch_row,
    leaf_improvements,
)
from repro.bb.node import Node
from repro.bb.offload import AsyncOffload
from repro.bb.operators import (
    bound_children_batch,
    bound_node,
    branch,
    eliminate,
    select_batch,
)
from repro.bb.pool import NodePool
from repro.bb.snapshot import CheckpointPolicy, CheckpointState
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "TraceEvent",
    "SearchLimits",
    "SearchHooks",
    "OffloadStep",
    "OffloadBackend",
    "LocalBounding",
    "DriverResult",
    "SearchDriver",
]


class OffloadBackend(Protocol):
    """The bounding-backend contract every offload implementation satisfies.

    Four implementations exist (:class:`LocalBounding`, the service's
    ``BatchingOffload``, the cluster's ``_DistributedOffload``, the GPU
    engine's ``_ExecutorOffload``); the driver calls them interchangeably.
    Both methods write bounds into their argument in place and return the
    ``(bounds, simulated_s, measured_s)`` triple; ``tools/repro_lint``'s
    ``offload-contract`` rule re-checks the shape statically on every
    class that defines these method names.
    """

    def bound_nodes(
        self, nodes: Sequence[Node]
    ) -> tuple[Optional[np.ndarray], float, float]:
        """Bound object-layout ``nodes`` in place."""
        ...

    def bound_block(
        self, block: NodeBlock, siblings: bool = False
    ) -> tuple[np.ndarray, float, float]:
        """Bound one block's rows, writing its ``lower_bound`` column."""
        ...


@dataclass(frozen=True)
class TraceEvent:
    """One node as seen by the search (only recorded in trace mode)."""

    prefix: tuple[int, ...]
    lower_bound: int
    upper_bound_at_visit: float
    action: str  # "branched", "pruned", "leaf", "incumbent"


@dataclass(frozen=True)
class OffloadStep:
    """Accounting of one batch-mode iteration (one off-loaded pool)."""

    iteration: int
    nodes_offloaded: int
    nodes_pruned: int
    nodes_kept: int
    incumbent: float
    simulated_s: float
    measured_s: float


@dataclass(frozen=True)
class SearchLimits:
    """Stop predicates of one driver run.  Engines pass only what they honour.

    ``max_nodes`` bounds ``stats.nodes_explored``; ``max_time_s`` is a span
    from the run's ``start`` (``time.perf_counter``); ``max_iterations``
    bounds batch-mode off-load steps; ``deadline`` is an absolute
    ``time.time()`` epoch shared across worker processes.
    """

    max_nodes: Optional[int] = None
    max_time_s: Optional[float] = None
    max_iterations: Optional[int] = None
    deadline: Optional[float] = None


@dataclass
class SearchHooks:
    """Per-step hooks through which engines inject their specifics.

    on_select:
        Called with the number of nodes taken by each selection step.
    on_improve_incumbent:
        Called for every incumbent improvement with ``(makespan,
        order_supplier)`` where ``order_supplier()`` lazily materializes the
        improving permutation (block-layout prefixes are only walked when a
        hook actually wants them).
    incumbent_charge_s:
        Simulated-seconds charge billed per incumbent improvement — the
        cluster engine's coordinator-to-nodes bound broadcast.
    on_eliminate:
        Called with the number of children pruned by each elimination step.
    poll_bound / poll_interval:
        Work-stealing bound polling: every ``poll_interval`` pops the driver
        reads ``poll_bound()`` and, when a peer tightened the incumbent,
        adopts it and re-prunes the pending pool (``prune_to``).
    on_iteration:
        Batch mode only: called with an :class:`OffloadStep` after each
        off-loaded pool (the GPU engines build their launch records here).
    on_overlap:
        Double-buffer mode only: called with the simulated seconds saved by
        overlapping host-side selection+branching of batch N+1 with the
        device bounding of batch N.
    on_checkpoint:
        Called with a :class:`~repro.bb.snapshot.CheckpointState` whenever
        the driver's :class:`~repro.bb.snapshot.CheckpointPolicy` is due.
        Fired at the top of the loop, before the step mutates anything, so
        a snapshot written here resumes bit-identically; requires the
        driver's ``checkpoint`` policy to be set.
    """

    on_select: Optional[Callable[[int], None]] = None
    on_improve_incumbent: Optional[
        Callable[[int, Callable[[], tuple[int, ...]]], None]
    ] = None
    incumbent_charge_s: Optional[Callable[[], float]] = None
    on_eliminate: Optional[Callable[[int], None]] = None
    poll_bound: Optional[Callable[[], float]] = None
    poll_interval: int = 64
    on_iteration: Optional[Callable[[OffloadStep], None]] = None
    on_overlap: Optional[Callable[[float], None]] = None
    on_checkpoint: Optional[Callable[[CheckpointState], None]] = None


@dataclass
class DriverResult:
    """Outcome of one driver run (engines wrap it into their result types)."""

    upper_bound: float
    best_order: tuple[int, ...]
    #: makespan of the last improvement found by THIS run (``None`` when the
    #: run never improved on the initial bound — distinct from
    #: ``upper_bound``, which bound polling may tighten past local finds)
    best_value: Optional[int]
    completed: bool
    iterations: int
    simulated_s: float
    measured_s: float
    #: simulated seconds credited by the ``double_buffer`` overlap model
    #: (renamed from ``overlap_saved_s``; the old name survives as a
    #: deprecated read-only alias)
    overlap_saved_sim_s: float
    #: measured wall seconds actually hidden by the ``overlap="async"``
    #: two-slot pipeline: per iteration, the positive part of
    #: ``(select + branch + worker bounding + apply) - elapsed``
    overlap_saved_wall_s: float = 0.0
    #: creation index of the next node (block layout; engines persist it in
    #: snapshots so a resumed search keeps the tie-break sequence intact)
    next_order: int = 0
    trace: list[TraceEvent] = field(default_factory=list)

    @property
    def overlap_saved_s(self) -> float:
        """Deprecated alias of :attr:`overlap_saved_sim_s`."""
        return self.overlap_saved_sim_s

    @property
    def improved(self) -> bool:
        """True when the run tightened the incumbent at least once."""
        return self.best_value is not None


class LocalBounding:
    """Host-side bounding "offload": the serial engines' default backend.

    Bounds run on the CPU with the chosen batched kernel revision
    (``"scalar"`` keeps the paper-faithful one-call-per-child evaluation),
    and the simulated-time charge is zero — exactly the ``T_cpu`` baseline
    the paper's speed-ups are measured against.
    """

    #: host bounding is stateless per call and charges no simulated time,
    #: so the async driver may split one batch into micro-chunk launches
    #: without changing any reported figure (executor-backed offloads keep
    #: single launches: their simulated charge depends on pool contents)
    supports_chunked_overlap = True

    def __init__(
        self,
        data: LowerBoundData,
        kernel: str = "v2",
        include_one_machine: bool = False,
    ):
        self.data = data
        self.kernel = kernel
        self.include_one_machine = include_one_machine

    def bound_nodes(
        self, nodes: Sequence[Node]
    ) -> tuple[np.ndarray | None, float, float]:
        """Bound object-layout ``nodes`` in place; return ``(bounds, 0.0, 0.0)``."""
        if self.kernel == "scalar":
            # the paper-faithful one-call-per-child path of the bounding-
            # fraction ablation: no batch array is ever materialized
            for node in nodes:
                bound_node(node, self.data, self.include_one_machine)
            return None, 0.0, 0.0
        bounds = bound_children_batch(
            nodes, self.data, self.include_one_machine, kernel=self.kernel
        )
        return bounds, 0.0, 0.0

    def bound_block(
        self, block: NodeBlock, siblings: bool = False
    ) -> tuple[np.ndarray, float, float]:
        """Bound a block's rows, writing the int32 ``lower_bound`` column in place.

        ``siblings=True`` promises the block is one parent's complete child
        set, enabling the fused single-GEMM sibling path of kernel v2.
        """
        bounds = bound_block(
            self.data,
            block,
            self.include_one_machine,
            kernel=self.kernel,
            siblings=siblings,
        )
        return bounds, 0.0, 0.0


class SearchDriver:
    """The canonical select→branch→bound→eliminate iteration.

    Parameters
    ----------
    instance:
        The flow-shop instance being solved.
    data:
        Precomputed lower-bound structures; required when no ``offload`` is
        given (the driver then builds a :class:`LocalBounding` backend).
    layout:
        ``"block"`` (structure-of-arrays frontier) or ``"object"``.
    selection:
        Selection strategy name (drives tie batching; the pool/frontier
        passed to :meth:`run` must have been built with the same strategy).
    offload:
        Bounding backend (see module docstring); ``None`` means local.
    batch_size:
        ``None`` selects the single-step shape; an integer selects the
        batch (off-load) shape with pools of up to that many nodes.
    limits / hooks:
        Stop predicates and per-step hooks.
    trace:
        Record a :class:`TraceEvent` per examined node (single-step only).
    tie_batching:
        Single-step block layout: pop best-first ``(lb, depth)`` tie runs as
        one batch and bound all of their children in a single launch
        (provably the same pop sequence; disabled automatically in trace
        mode, for non-best-first strategies, and while a frontier memory cap
        holds the selection in its depth-first-restricted regime).
    double_buffer:
        Batch mode: credit the overlap of host-side selection+branching of
        batch N+1 with the (simulated) device bounding of batch N — the
        ROADMAP's ``NodeBlock`` pipelining follow-on.  The credit is
        reported via :attr:`DriverResult.overlap_saved_sim_s` and the
        ``on_overlap`` hook; explored tree and counters are unaffected.
    overlap:
        ``"sync"`` (default) bounds on the driver thread; ``"async"``
        runs every offload launch on a dedicated worker thread behind a
        two-slot pipeline (:class:`~repro.bb.offload.AsyncOffload`), so
        the driver selects and branches the next micro-batch while the
        previous one is being bounded.  Launches are joined in submission
        order, which keeps the explored tree bit-identical to ``"sync"``;
        the wall seconds actually hidden are reported as
        :attr:`DriverResult.overlap_saved_wall_s`.  Batch shape only; the
        single-step shapes accept the knob as a validated no-op (the next
        pop depends on the current bound, so there is nothing to overlap).
    checkpoint:
        Optional :class:`~repro.bb.snapshot.CheckpointPolicy`.  Together
        with ``hooks.on_checkpoint`` it makes the driver hand out its live
        search state every N steps / T seconds — fired at the top of the
        loop, where a snapshot resumes bit-identically.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        data: Optional[LowerBoundData] = None,
        *,
        layout: str = "block",
        selection: str = "best-first",
        kernel: str = "v2",
        include_one_machine: bool = False,
        offload: Optional[OffloadBackend] = None,
        batch_size: Optional[int] = None,
        limits: Optional[SearchLimits] = None,
        hooks: Optional[SearchHooks] = None,
        trace: bool = False,
        tie_batching: bool = True,
        double_buffer: bool = False,
        overlap: str = "sync",
        checkpoint: Optional[CheckpointPolicy] = None,
    ):
        if layout not in ("block", "object"):
            raise ValueError(f"layout must be 'block' or 'object', got {layout!r}")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1 when given")
        if overlap not in ("sync", "async"):
            raise ValueError(f"overlap must be 'sync' or 'async', got {overlap!r}")
        if offload is None:
            if data is None:
                raise ValueError("either an offload backend or bound data is required")
            offload = LocalBounding(data, kernel=kernel, include_one_machine=include_one_machine)
        self.instance = instance
        self.layout = layout
        self.selection = selection
        self.offload: OffloadBackend = offload
        self.batch_size = batch_size
        self.limits = limits if limits is not None else SearchLimits()
        self.hooks = hooks if hooks is not None else SearchHooks()
        self.trace_enabled = trace
        self.tie_batching = tie_batching
        self.double_buffer = double_buffer
        self.overlap = overlap
        self.checkpoint = checkpoint

    # ------------------------------------------------------------------ #
    def run(
        self,
        frontier: Union[NodePool, BlockFrontier],
        *,
        upper_bound: float,
        stats: SearchStats,
        best_order: tuple[int, ...] = (),
        trail: Optional[Trail] = None,
        next_order: int = 1,
        start: Optional[float] = None,
    ) -> DriverResult:
        """Run the iteration until the frontier drains or a budget is hit.

        ``frontier`` is a seeded :class:`~repro.bb.pool.NodePool` (object
        layout) or :class:`~repro.bb.frontier.BlockFrontier` (block layout);
        the caller bounds and pushes the root/seed and pre-credits its
        statistics.  ``start`` anchors the ``max_time_s`` budget (defaults
        to now); ``next_order`` is the creation index of the next node in
        the block layout.
        """
        if start is None:
            start = time.perf_counter()
        if self.layout == "block":
            if trail is None:
                raise ValueError("the block layout requires the search's Trail")
            if not isinstance(frontier, BlockFrontier):
                raise TypeError("the block layout requires a BlockFrontier")
            if self.batch_size is None:
                return self._run_single_block(
                    frontier, trail, upper_bound, best_order, stats, next_order, start
                )
            if self.overlap == "async":
                return self._run_batch_block_async(
                    frontier, trail, upper_bound, best_order, stats, next_order, start
                )
            return self._run_batch_block(
                frontier, trail, upper_bound, best_order, stats, next_order, start
            )
        if not isinstance(frontier, NodePool):
            raise TypeError("the object layout requires a NodePool")
        if self.batch_size is None:
            return self._run_single_object(frontier, upper_bound, best_order, stats, start)
        if self.overlap == "async":
            return self._run_batch_object_async(frontier, upper_bound, best_order, stats, start)
        return self._run_batch_object(frontier, upper_bound, best_order, stats, start)

    # ------------------------------------------------------------------ #
    def _notify(
        self, makespan: int, supplier: Callable[[], tuple[int, ...]]
    ) -> None:
        hook = self.hooks.on_improve_incumbent
        if hook is not None:
            hook(makespan, supplier)

    # ------------------------------------------------------------------ #
    #  Single-step shape, object layout (serial engine, worksteal workers)
    # ------------------------------------------------------------------ #
    def _run_single_object(
        self,
        pool: NodePool,
        upper_bound: float,
        best_order: tuple[int, ...],
        stats: SearchStats,
        start: float,
    ) -> DriverResult:
        instance = self.instance
        offload = self.offload
        hooks = self.hooks
        limits = self.limits
        max_nodes, max_time_s, deadline = limits.max_nodes, limits.max_time_s, limits.deadline
        poll, poll_interval = hooks.poll_bound, hooks.poll_interval
        on_select, on_eliminate = hooks.on_select, hooks.on_eliminate
        trace_on = self.trace_enabled
        trace: list[TraceEvent] = []
        perf_counter = time.perf_counter
        on_checkpoint = hooks.on_checkpoint
        ckpt = self.checkpoint if on_checkpoint is not None else None
        last_checkpoint = start
        steps = 0

        best_value: Optional[int] = None
        completed = True
        pops = 0
        while pool:
            if ckpt is not None and on_checkpoint is not None:
                steps += 1
                due = ckpt.every_steps is not None and steps % ckpt.every_steps == 0
                if not due and ckpt.every_seconds is not None and steps % 64 == 0:
                    due = perf_counter() - last_checkpoint >= ckpt.every_seconds
                if due:
                    on_checkpoint(
                        CheckpointState(
                            frontier=pool,
                            trail=None,
                            upper_bound=upper_bound,
                            best_order_supplier=lambda order=best_order: order,
                            next_order=0,
                            stats=stats,
                            steps=steps,
                        )
                    )
                    last_checkpoint = perf_counter()
            if max_nodes is not None and stats.nodes_explored >= max_nodes:
                completed = False
                break
            if max_time_s is not None and perf_counter() - start > max_time_s:
                completed = False
                break
            if deadline is not None and time.time() > deadline:
                completed = False
                break
            if poll is not None:
                pops += 1
                if pops % poll_interval == 0:
                    shared = poll()
                    if shared < upper_bound:
                        upper_bound = shared
                        stats.nodes_pruned += pool.prune_to(upper_bound)
                        if not pool:
                            break

            t0 = perf_counter()
            node = pool.pop()
            stats.time_pool_s += perf_counter() - t0
            if on_select is not None:
                on_select(1)

            assert node.lower_bound is not None
            if node.lower_bound >= upper_bound:
                stats.nodes_pruned += 1
                if trace_on:
                    trace.append(TraceEvent(node.prefix, node.lower_bound, upper_bound, "pruned"))
                continue

            if node.is_leaf:
                stats.leaves_evaluated += 1
                makespan = int(node.release[-1])
                if makespan < upper_bound:
                    upper_bound = float(makespan)
                    best_order = node.prefix
                    best_value = makespan
                    stats.incumbent_updates += 1
                    self._notify(makespan, lambda prefix=node.prefix: prefix)
                    if trace_on:
                        trace.append(TraceEvent(node.prefix, makespan, upper_bound, "incumbent"))
                elif trace_on:
                    trace.append(TraceEvent(node.prefix, makespan, upper_bound, "leaf"))
                stats.nodes_branched += 1  # examined, produced no children
                continue

            # Branch
            t0 = perf_counter()
            children = branch(node, instance)
            stats.time_branching_s += perf_counter() - t0
            stats.nodes_branched += 1
            if trace_on:
                trace.append(TraceEvent(node.prefix, node.lower_bound, upper_bound, "branched"))

            # Bound all siblings in one launch, then eliminate.
            t0 = perf_counter()
            _, sim_s, _ = offload.bound_nodes(children)
            stats.time_bounding_s += perf_counter() - t0
            if sim_s:
                stats.simulated_device_time_s += sim_s
            stats.nodes_bounded += len(children)
            survivors = []
            pruned = 0
            for child in children:
                assert child.lower_bound is not None

                if child.is_leaf:
                    stats.leaves_evaluated += 1
                    makespan = int(child.release[-1])
                    if makespan < upper_bound:
                        upper_bound = float(makespan)
                        best_order = child.prefix
                        best_value = makespan
                        stats.incumbent_updates += 1
                        self._notify(makespan, lambda prefix=child.prefix: prefix)
                        if trace_on:
                            trace.append(
                                TraceEvent(child.prefix, makespan, upper_bound, "incumbent")
                            )
                    continue

                if child.lower_bound >= upper_bound:
                    stats.nodes_pruned += 1
                    pruned += 1
                    if trace_on:
                        trace.append(
                            TraceEvent(child.prefix, child.lower_bound, upper_bound, "pruned")
                        )
                    continue

                survivors.append(child)
            if on_eliminate is not None:
                on_eliminate(pruned)

            # one timing pair per branching step instead of two clock reads
            # around every individual push
            t0 = perf_counter()
            for child in survivors:
                pool.push(child)
            stats.time_pool_s += perf_counter() - t0

        return DriverResult(
            upper_bound=upper_bound,
            best_order=best_order,
            best_value=best_value,
            completed=completed,
            iterations=0,
            simulated_s=0.0,
            measured_s=0.0,
            overlap_saved_sim_s=0.0,
            trace=trace,
        )

    # ------------------------------------------------------------------ #
    #  Single-step shape, block layout (serial engine, worksteal workers)
    # ------------------------------------------------------------------ #
    def _run_single_block(
        self,
        frontier: BlockFrontier,
        trail: Trail,
        upper_bound: float,
        best_order: tuple[int, ...],
        stats: SearchStats,
        next_order: int,
        start: float,
    ) -> DriverResult:
        instance = self.instance
        offload = self.offload
        hooks = self.hooks
        limits = self.limits
        max_nodes, max_time_s, deadline = limits.max_nodes, limits.max_time_s, limits.deadline
        poll, poll_interval = hooks.poll_bound, hooks.poll_interval
        on_select, on_eliminate = hooks.on_select, hooks.on_eliminate
        n_jobs = instance.n_jobs
        pt = instance.processing_times
        trace_on = self.trace_enabled
        trace: list[TraceEvent] = []
        perf_counter = time.perf_counter

        best_value: Optional[int] = None
        best_trail: Optional[int] = None

        # Tie batching (best-first, untraced runs): every node sharing the
        # minimal (lb, depth) pair is popped in one batch and their children
        # branched + bounded in a single launch — provably the same pop
        # sequence as one-at-a-time selection (see pop_min_tie_batch).
        use_batches = (
            self.tie_batching
            and not trace_on
            and self.selection.lower() in ("best-first", "best")
        )
        on_checkpoint = hooks.on_checkpoint
        ckpt = self.checkpoint if on_checkpoint is not None else None
        last_checkpoint = start
        steps = 0
        completed = True
        pops = 0
        while frontier:
            if ckpt is not None and on_checkpoint is not None:
                steps += 1
                due = ckpt.every_steps is not None and steps % ckpt.every_steps == 0
                if not due and ckpt.every_seconds is not None and steps % 64 == 0:
                    due = perf_counter() - last_checkpoint >= ckpt.every_seconds
                if due:
                    on_checkpoint(
                        CheckpointState(
                            frontier=frontier,
                            trail=trail,
                            upper_bound=upper_bound,
                            best_order_supplier=(
                                lambda bt=best_trail, bo=best_order: (
                                    trail.prefix(bt) if bt is not None else bo
                                )
                            ),
                            next_order=next_order,
                            stats=stats,
                            steps=steps,
                        )
                    )
                    last_checkpoint = perf_counter()
            if max_nodes is not None and stats.nodes_explored >= max_nodes:
                completed = False
                break
            if max_time_s is not None and perf_counter() - start > max_time_s:
                completed = False
                break
            if deadline is not None and time.time() > deadline:
                completed = False
                break
            if poll is not None:
                pops += 1
                if pops % poll_interval == 0:
                    shared = poll()
                    if shared < upper_bound:
                        upper_bound = shared
                        stats.nodes_pruned += frontier.prune_to(upper_bound)
                        if not frontier:
                            break

            # A frontier memory cap holds best-first selection in its
            # depth-first-restricted regime while the cap is exceeded; tie
            # batching pauses (not permanently) until it re-engages.
            if use_batches and not frontier.restricted:
                remaining = max_nodes - stats.nodes_explored if max_nodes is not None else None
                t0 = perf_counter()
                batch = frontier.pop_min_tie_batch(remaining)
                stats.time_pool_s += perf_counter() - t0
                if batch is None:
                    use_batches = False  # key packing unavailable: single pops
                else:
                    k = len(batch)
                    if poll is not None and k > 1:
                        pops += k - 1
                    if on_select is not None:
                        on_select(k)
                    lb0 = int(batch.lower_bound[0])
                    depth0 = int(batch.depth[0])
                    if lb0 >= upper_bound:
                        stats.nodes_pruned += k
                        continue
                    if depth0 == n_jobs:
                        # complete schedules sharing one makespan: the first
                        # becomes the incumbent, the rest are pruned at its
                        # (now equal) bound — exactly the one-at-a-time fates
                        stats.leaves_evaluated += 1
                        upper_bound = float(lb0)
                        best_trail = int(batch.trail_id[0])
                        best_value = lb0
                        stats.incumbent_updates += 1
                        self._notify(lb0, lambda tid=best_trail: trail.prefix(tid))
                        stats.nodes_branched += 1
                        stats.nodes_pruned += k - 1
                        continue
                    if depth0 + 1 == n_jobs:
                        # leaf children tighten the incumbent between member
                        # pops, so members must be examined one at a time
                        for i in range(k):
                            if lb0 >= upper_bound:
                                stats.nodes_pruned += 1
                                continue
                            t0 = perf_counter()
                            children = branch_row(
                                batch.scheduled_mask[i],
                                batch.release[i],
                                depth0,
                                int(batch.trail_id[i]),
                                trail,
                                pt,
                                next_order,
                            )
                            stats.time_branching_s += perf_counter() - t0
                            next_order += len(children)
                            stats.nodes_branched += 1
                            t0 = perf_counter()
                            _, sim_s, _ = offload.bound_block(children, siblings=True)
                            stats.time_bounding_s += perf_counter() - t0
                            if sim_s:
                                stats.simulated_device_time_s += sim_s
                            n_children = len(children)
                            stats.nodes_bounded += n_children
                            stats.leaves_evaluated += n_children
                            makespans = children.makespans
                            improving, _ = leaf_improvements(upper_bound, makespans)
                            for j in improving:
                                makespan = int(makespans[j])
                                upper_bound = float(makespan)
                                best_trail = int(children.trail_id[j])
                                best_value = makespan
                                stats.incumbent_updates += 1
                                self._notify(
                                    makespan, lambda tid=best_trail: trail.prefix(tid)
                                )
                        continue

                    # interior batch: one branch + one bounding launch for
                    # the children of every tied node
                    t0 = perf_counter()
                    if k == 1:
                        children = branch_row(
                            batch.scheduled_mask[0],
                            batch.release[0],
                            depth0,
                            int(batch.trail_id[0]),
                            trail,
                            pt,
                            next_order,
                        )
                    else:
                        children = branch_block(batch, pt, next_order)
                    stats.time_branching_s += perf_counter() - t0
                    next_order += len(children)
                    stats.nodes_branched += k
                    t0 = perf_counter()
                    _, sim_s, _ = offload.bound_block(children, siblings=k == 1)
                    stats.time_bounding_s += perf_counter() - t0
                    if sim_s:
                        stats.simulated_device_time_s += sim_s
                    n_children = len(children)
                    stats.nodes_bounded += n_children
                    keep = children.lower_bound < upper_bound
                    pruned = n_children - int(np.count_nonzero(keep))
                    stats.nodes_pruned += pruned
                    if on_eliminate is not None:
                        on_eliminate(pruned)
                    if pruned and k > 1:
                        # reconstruct the pool sizes a one-node-at-a-time
                        # engine records between member pops (each member
                        # contributes exactly n - depth0 children)
                        per_member = n_jobs - depth0
                        kept_per = np.add.reduceat(keep, np.arange(0, k * per_member, per_member))
                        sizes = (
                            len(frontier)
                            + (k - 1 - np.arange(k))
                            + np.cumsum(kept_per)
                        )
                        populated = kept_per > 0
                        if populated.any():
                            frontier.record_size_hint(int(sizes[populated].max()))
                    t0 = perf_counter()
                    frontier.push_block(children, keep if pruned else None)
                    stats.time_pool_s += perf_counter() - t0
                    continue

            # Zero-copy pop: read the best row in place, branch from the
            # views, then swap-compact it out.
            t0 = perf_counter()
            row = frontier.peek_best()
            node_lb, node_depth, _, node_tid, mask_view, release_view = frontier.row_view(row)
            stats.time_pool_s += perf_counter() - t0
            if on_select is not None:
                on_select(1)

            if node_lb >= upper_bound:
                frontier.discard(row)
                stats.nodes_pruned += 1
                if trace_on:
                    trace.append(
                        TraceEvent(trail.prefix(node_tid), node_lb, upper_bound, "pruned")
                    )
                continue

            if node_depth == n_jobs:
                makespan = int(release_view[-1])
                frontier.discard(row)
                stats.leaves_evaluated += 1
                if makespan < upper_bound:
                    upper_bound = float(makespan)
                    best_trail = node_tid
                    best_value = makespan
                    stats.incumbent_updates += 1
                    self._notify(makespan, lambda tid=node_tid: trail.prefix(tid))
                    if trace_on:
                        trace.append(
                            TraceEvent(trail.prefix(node_tid), makespan, upper_bound, "incumbent")
                        )
                elif trace_on:
                    trace.append(
                        TraceEvent(trail.prefix(node_tid), makespan, upper_bound, "leaf")
                    )
                stats.nodes_branched += 1  # examined, produced no children
                continue

            # Branch: every sibling in one shot, straight off the row views.
            t0 = perf_counter()
            children = branch_row(
                mask_view, release_view, node_depth, node_tid, trail, pt, next_order
            )
            frontier.discard(row)
            stats.time_branching_s += perf_counter() - t0
            next_order += len(children)
            stats.nodes_branched += 1
            if trace_on:
                trace.append(TraceEvent(trail.prefix(node_tid), node_lb, upper_bound, "branched"))

            # Bound the sibling block straight off its arrays.
            t0 = perf_counter()
            _, sim_s, _ = offload.bound_block(children, siblings=True)
            stats.time_bounding_s += perf_counter() - t0
            if sim_s:
                stats.simulated_device_time_s += sim_s
            n_children = len(children)
            stats.nodes_bounded += n_children

            if node_depth + 1 == n_jobs:
                # Siblings share their depth, so either every child is a
                # complete schedule or none is.  Replicate the object
                # layout's in-order incumbent updates with a running min.
                stats.leaves_evaluated += n_children
                makespans = children.makespans
                improving, running = leaf_improvements(upper_bound, makespans)
                for i in improving:
                    makespan = int(makespans[i])
                    upper_bound = float(makespan)
                    best_trail = int(children.trail_id[i])
                    best_value = makespan
                    stats.incumbent_updates += 1
                    self._notify(makespan, lambda tid=best_trail: trail.prefix(tid))
                if trace_on:
                    run_after = np.minimum.accumulate(
                        np.concatenate(([running[0]], makespans.astype(np.float64)))
                    )[1:]
                    for i in range(n_children):
                        action = "incumbent" if makespans[i] < running[i] else "leaf"
                        trace.append(
                            TraceEvent(
                                children.prefix(i), int(makespans[i]), float(run_after[i]), action
                            )
                        )
                continue

            # Eliminate + insert in one masked append.
            keep = children.lower_bound < upper_bound
            pruned = n_children - int(np.count_nonzero(keep))
            stats.nodes_pruned += pruned
            if on_eliminate is not None:
                on_eliminate(pruned)
            if trace_on and pruned:
                for i in np.flatnonzero(~keep):
                    trace.append(
                        TraceEvent(
                            children.prefix(i),
                            int(children.lower_bound[i]),
                            upper_bound,
                            "pruned",
                        )
                    )
            t0 = perf_counter()
            frontier.push_block(children, keep if pruned else None)
            stats.time_pool_s += perf_counter() - t0

        if best_trail is not None:
            best_order = trail.prefix(best_trail)
        return DriverResult(
            upper_bound=upper_bound,
            best_order=best_order,
            best_value=best_value,
            completed=completed,
            iterations=0,
            simulated_s=0.0,
            measured_s=0.0,
            overlap_saved_sim_s=0.0,
            next_order=next_order,
            trace=trace,
        )

    # ------------------------------------------------------------------ #
    #  Batch (off-load) shape, object layout (GPU / cluster / hybrid)
    # ------------------------------------------------------------------ #
    def _run_batch_object(
        self,
        pool: NodePool,
        upper_bound: float,
        best_order: tuple[int, ...],
        stats: SearchStats,
        start: float,
    ) -> DriverResult:
        instance = self.instance
        offload = self.offload
        hooks = self.hooks
        limits = self.limits
        batch_size = self.batch_size
        perf_counter = time.perf_counter

        best_value: Optional[int] = None
        simulated_total = 0.0
        measured_total = 0.0
        overlap_saved = 0.0
        prev_sim_s: Optional[float] = None
        on_checkpoint = hooks.on_checkpoint
        ckpt = self.checkpoint if on_checkpoint is not None else None
        last_checkpoint = start
        iteration = 0
        completed = True
        while pool:
            if ckpt is not None and on_checkpoint is not None:
                due = (
                    ckpt.every_steps is not None
                    and iteration > 0
                    and iteration % ckpt.every_steps == 0
                )
                if not due and ckpt.every_seconds is not None:
                    due = perf_counter() - last_checkpoint >= ckpt.every_seconds
                if due:
                    on_checkpoint(
                        CheckpointState(
                            frontier=pool,
                            trail=None,
                            upper_bound=upper_bound,
                            best_order_supplier=lambda order=best_order: order,
                            next_order=0,
                            stats=stats,
                            steps=iteration,
                        )
                    )
                    last_checkpoint = perf_counter()
            if limits.max_iterations is not None and iteration >= limits.max_iterations:
                completed = False
                break
            if limits.max_nodes is not None and stats.nodes_explored >= limits.max_nodes:
                completed = False
                break
            if limits.max_time_s is not None and perf_counter() - start > limits.max_time_s:
                completed = False
                break
            if limits.deadline is not None and time.time() > limits.deadline:
                completed = False
                break
            iteration += 1

            # --- selection -------------------------------------------------
            t0 = perf_counter()
            parents, lazily_pruned = select_batch(pool, batch_size, upper_bound)
            select_s = perf_counter() - t0
            stats.time_pool_s += select_s
            stats.nodes_pruned += lazily_pruned
            if not parents:
                break
            if hooks.on_select is not None:
                hooks.on_select(len(parents))

            # --- branching (CPU) --------------------------------------------
            t0 = perf_counter()
            children: list[Node] = []
            for parent in parents:
                offspring = branch(parent, instance)
                stats.nodes_branched += 1
                children.extend(offspring)
            branch_s = perf_counter() - t0
            stats.time_branching_s += branch_s

            if not children:
                continue

            # --- bounding (off-load) ----------------------------------------
            t0 = perf_counter()
            _, sim_s, wall_s = offload.bound_nodes(children)
            stats.time_bounding_s += perf_counter() - t0
            simulated_total += sim_s
            measured_total += wall_s
            stats.nodes_bounded += len(children)
            stats.pools_evaluated += 1

            # Double buffering: the host prepared this batch while the device
            # was still bounding the previous one — credit the overlap.
            if self.double_buffer and prev_sim_s is not None:
                credit = min(prev_sim_s, select_s + branch_s)
                overlap_saved += credit
                if hooks.on_overlap is not None:
                    hooks.on_overlap(credit)
            prev_sim_s = sim_s

            # --- incumbent updates from complete schedules -------------------
            open_children: list[Node] = []
            for child in children:
                if child.is_leaf:
                    stats.leaves_evaluated += 1
                    makespan = int(child.release[-1])
                    if makespan < upper_bound:
                        upper_bound = float(makespan)
                        best_order = child.prefix
                        best_value = makespan
                        stats.incumbent_updates += 1
                        self._notify(makespan, lambda prefix=child.prefix: prefix)
                        if hooks.incumbent_charge_s is not None:
                            simulated_total += hooks.incumbent_charge_s()
                else:
                    open_children.append(child)

            # --- elimination --------------------------------------------------
            survivors, pruned = eliminate(open_children, upper_bound)
            stats.nodes_pruned += pruned
            if hooks.on_eliminate is not None:
                hooks.on_eliminate(pruned)

            t0 = perf_counter()
            pool.push_many(survivors)
            stats.time_pool_s += perf_counter() - t0

            if hooks.on_iteration is not None:
                hooks.on_iteration(
                    OffloadStep(
                        iteration=iteration,
                        nodes_offloaded=len(children),
                        nodes_pruned=pruned,
                        nodes_kept=len(survivors),
                        incumbent=upper_bound,
                        simulated_s=sim_s,
                        measured_s=wall_s,
                    )
                )

        return DriverResult(
            upper_bound=upper_bound,
            best_order=best_order,
            best_value=best_value,
            completed=completed,
            iterations=iteration,
            simulated_s=simulated_total,
            measured_s=measured_total,
            overlap_saved_sim_s=overlap_saved,
        )

    # ------------------------------------------------------------------ #
    #  Batch (off-load) shape, block layout (GPU / cluster / hybrid)
    # ------------------------------------------------------------------ #
    def _run_batch_block(
        self,
        frontier: BlockFrontier,
        trail: Trail,
        upper_bound: float,
        best_order: tuple[int, ...],
        stats: SearchStats,
        next_order: int,
        start: float,
    ) -> DriverResult:
        instance = self.instance
        offload = self.offload
        hooks = self.hooks
        limits = self.limits
        batch_size = self.batch_size
        n_jobs = instance.n_jobs
        pt = instance.processing_times
        perf_counter = time.perf_counter

        best_value: Optional[int] = None
        best_trail: Optional[int] = None
        simulated_total = 0.0
        measured_total = 0.0
        overlap_saved = 0.0
        prev_sim_s: Optional[float] = None
        on_checkpoint = hooks.on_checkpoint
        ckpt = self.checkpoint if on_checkpoint is not None else None
        last_checkpoint = start
        iteration = 0
        completed = True
        while frontier:
            if ckpt is not None and on_checkpoint is not None:
                due = (
                    ckpt.every_steps is not None
                    and iteration > 0
                    and iteration % ckpt.every_steps == 0
                )
                if not due and ckpt.every_seconds is not None:
                    due = perf_counter() - last_checkpoint >= ckpt.every_seconds
                if due:
                    on_checkpoint(
                        CheckpointState(
                            frontier=frontier,
                            trail=trail,
                            upper_bound=upper_bound,
                            best_order_supplier=(
                                lambda bt=best_trail, bo=best_order: (
                                    trail.prefix(bt) if bt is not None else bo
                                )
                            ),
                            next_order=next_order,
                            stats=stats,
                            steps=iteration,
                        )
                    )
                    last_checkpoint = perf_counter()
            if limits.max_iterations is not None and iteration >= limits.max_iterations:
                completed = False
                break
            if limits.max_nodes is not None and stats.nodes_explored >= limits.max_nodes:
                completed = False
                break
            if limits.max_time_s is not None and perf_counter() - start > limits.max_time_s:
                completed = False
                break
            if limits.deadline is not None and time.time() > limits.deadline:
                completed = False
                break
            iteration += 1

            # --- selection -------------------------------------------------
            t0 = perf_counter()
            parents, lazily_pruned = frontier.pop_batch(batch_size, upper_bound)
            select_s = perf_counter() - t0
            stats.time_pool_s += select_s
            stats.nodes_pruned += lazily_pruned
            if not len(parents):
                break
            if hooks.on_select is not None:
                hooks.on_select(len(parents))

            # --- branching (CPU, vectorized) --------------------------------
            t0 = perf_counter()
            children = branch_block(parents, pt, next_order)
            branch_s = perf_counter() - t0
            stats.time_branching_s += branch_s
            next_order += len(children)
            stats.nodes_branched += len(parents)

            if not len(children):
                continue

            # --- bounding (off-load, zero re-packing) -----------------------
            t0 = perf_counter()
            _, sim_s, wall_s = offload.bound_block(children, siblings=False)
            stats.time_bounding_s += perf_counter() - t0
            simulated_total += sim_s
            measured_total += wall_s
            stats.nodes_bounded += len(children)
            stats.pools_evaluated += 1

            if self.double_buffer and prev_sim_s is not None:
                credit = min(prev_sim_s, select_s + branch_s)
                overlap_saved += credit
                if hooks.on_overlap is not None:
                    hooks.on_overlap(credit)
            prev_sim_s = sim_s

            # --- incumbent updates from complete schedules -------------------
            leaf_mask = children.depth == n_jobs
            n_leaves = int(np.count_nonzero(leaf_mask))
            if n_leaves:
                leaf_rows = np.flatnonzero(leaf_mask)
                stats.leaves_evaluated += n_leaves
                makespans = children.release[leaf_rows, -1]
                improving, _ = leaf_improvements(upper_bound, makespans)
                for i in improving:
                    makespan = int(makespans[i])
                    upper_bound = float(makespan)
                    best_trail = int(children.trail_id[leaf_rows[i]])
                    best_value = makespan
                    stats.incumbent_updates += 1
                    self._notify(makespan, lambda tid=best_trail: trail.prefix(tid))
                    if hooks.incumbent_charge_s is not None:
                        simulated_total += hooks.incumbent_charge_s()

            # --- elimination fused with insertion (one masked append) ---------
            keep = children.lower_bound < upper_bound
            if n_leaves:
                keep &= ~leaf_mask
            kept = int(np.count_nonzero(keep))
            pruned = len(children) - n_leaves - kept
            stats.nodes_pruned += pruned
            if hooks.on_eliminate is not None:
                hooks.on_eliminate(pruned)

            t0 = perf_counter()
            frontier.push_block(children, keep)
            stats.time_pool_s += perf_counter() - t0

            if hooks.on_iteration is not None:
                hooks.on_iteration(
                    OffloadStep(
                        iteration=iteration,
                        nodes_offloaded=len(children),
                        nodes_pruned=pruned,
                        nodes_kept=kept,
                        incumbent=upper_bound,
                        simulated_s=sim_s,
                        measured_s=wall_s,
                    )
                )

        if best_trail is not None:
            best_order = trail.prefix(best_trail)
        return DriverResult(
            upper_bound=upper_bound,
            best_order=best_order,
            best_value=best_value,
            completed=completed,
            iterations=iteration,
            simulated_s=simulated_total,
            measured_s=measured_total,
            overlap_saved_sim_s=overlap_saved,
            next_order=next_order,
        )

    # ------------------------------------------------------------------ #
    #  Batch shape, async two-slot pipeline (overlap="async")
    # ------------------------------------------------------------------ #
    #
    # Both async variants replay the synchronous batch iteration with one
    # mechanical change: every offload launch runs on the AsyncOffload
    # worker thread, and — when the backend allows it — one batch-size
    # selection is split into a few deterministic micro-chunks so the
    # driver selects/branches chunk i+1 while the worker bounds chunk i.
    # Determinism is preserved because (a) chunk sizes are a pure function
    # of batch_size, (b) every pop of an iteration happens before any push
    # (chunked pops therefore concatenate to exactly the one big pop),
    # (c) launches are joined in submission order with incumbent updates
    # applied in row order, and (d) a chunk's elimination is deferred
    # until no later chunk still carries complete schedules that could
    # tighten the incumbent.  The explored tree, all counters and the
    # result are bit-identical to overlap="sync" (pinned by the golden
    # fixtures and tests/test_overlap.py).

    #: micro-chunks one batch selection is split into (pure config constant)
    OVERLAP_CHUNKS = 4

    def _chunk_sizes(self, chunked: bool) -> list[int]:
        """Deterministic micro-chunk split of one batch-shape selection."""
        batch_size = self.batch_size
        assert batch_size is not None
        if not chunked:
            return [batch_size]
        parts = min(self.OVERLAP_CHUNKS, batch_size)
        base, extra = divmod(batch_size, parts)
        return [base + (1 if i < extra else 0) for i in range(parts)]

    def _run_batch_object_async(
        self,
        pool: NodePool,
        upper_bound: float,
        best_order: tuple[int, ...],
        stats: SearchStats,
        start: float,
    ) -> DriverResult:
        instance = self.instance
        offload = self.offload
        hooks = self.hooks
        limits = self.limits
        perf_counter = time.perf_counter

        chunk_sizes = self._chunk_sizes(
            getattr(offload, "supports_chunked_overlap", False)
        )

        best_value: Optional[int] = None
        simulated_total = 0.0
        measured_total = 0.0
        overlap_sim_saved = 0.0
        overlap_wall_saved = 0.0
        prev_sim_s: Optional[float] = None
        on_checkpoint = hooks.on_checkpoint
        ckpt = self.checkpoint if on_checkpoint is not None else None
        last_checkpoint = start
        iteration = 0
        completed = True
        aoff = AsyncOffload(offload)
        try:
            while pool:
                if ckpt is not None and on_checkpoint is not None:
                    due = (
                        ckpt.every_steps is not None
                        and iteration > 0
                        and iteration % ckpt.every_steps == 0
                    )
                    if not due and ckpt.every_seconds is not None:
                        due = perf_counter() - last_checkpoint >= ckpt.every_seconds
                    if due:
                        # batch boundary: every launch of the previous
                        # iteration has been joined, so the snapshot can
                        # never race the worker thread
                        assert aoff.idle, "checkpoint with an offload launch in flight"
                        on_checkpoint(
                            CheckpointState(
                                frontier=pool,
                                trail=None,
                                upper_bound=upper_bound,
                                best_order_supplier=lambda order=best_order: order,
                                next_order=0,
                                stats=stats,
                                steps=iteration,
                            )
                        )
                        last_checkpoint = perf_counter()
                if limits.max_iterations is not None and iteration >= limits.max_iterations:
                    completed = False
                    break
                if limits.max_nodes is not None and stats.nodes_explored >= limits.max_nodes:
                    completed = False
                    break
                if limits.max_time_s is not None and perf_counter() - start > limits.max_time_s:
                    completed = False
                    break
                if limits.deadline is not None and time.time() > limits.deadline:
                    completed = False
                    break
                iteration += 1
                iter_t0 = perf_counter()

                # --- selection + branching + submission (all pops precede
                # any push, so chunked pops equal the one synchronous pop)
                select_s = 0.0
                branch_s = 0.0
                total_selected = 0
                launches = []  # (children, ticket, has_leaves) in pop order
                for size in chunk_sizes:
                    t0 = perf_counter()
                    parents, lazily_pruned = select_batch(pool, size, upper_bound)
                    select_s += perf_counter() - t0
                    stats.nodes_pruned += lazily_pruned
                    if not parents:
                        break  # pool drained mid-plan
                    total_selected += len(parents)
                    t0 = perf_counter()
                    children: list[Node] = []
                    for parent in parents:
                        offspring = branch(parent, instance)
                        stats.nodes_branched += 1
                        children.extend(offspring)
                    branch_s += perf_counter() - t0
                    if not children:
                        continue
                    has_leaves = any(child.is_leaf for child in children)
                    launches.append(
                        (children, aoff.submit_nodes(children), has_leaves)
                    )
                stats.time_pool_s += select_s
                stats.time_branching_s += branch_s
                if total_selected == 0:
                    break
                if hooks.on_select is not None:
                    hooks.on_select(total_selected)
                if not launches:
                    continue

                # --- join in submission order ---------------------------
                last_leaf_idx = -1
                for chunk_idx, (_, _, has_leaves) in enumerate(launches):
                    if has_leaves:
                        last_leaf_idx = chunk_idx
                sim_iter = 0.0
                wall_iter = 0.0
                worker_s = 0.0
                apply_s = 0.0
                total_offloaded = 0
                total_pruned = 0
                total_kept = 0
                deferred: list[list[Node]] = []
                for chunk_idx, (children, ticket, has_leaves) in enumerate(launches):
                    t0 = perf_counter()
                    _, sim_s, wall_s = ticket.result()
                    stats.time_bounding_s += perf_counter() - t0
                    worker_s += ticket.worker_wall_s
                    sim_iter += sim_s
                    wall_iter += wall_s
                    stats.nodes_bounded += len(children)
                    total_offloaded += len(children)

                    # incumbent updates from complete schedules, row order
                    open_children: list[Node] = []
                    for child in children:
                        if child.is_leaf:
                            stats.leaves_evaluated += 1
                            makespan = int(child.release[-1])
                            if makespan < upper_bound:
                                upper_bound = float(makespan)
                                best_order = child.prefix
                                best_value = makespan
                                stats.incumbent_updates += 1
                                self._notify(
                                    makespan, lambda prefix=child.prefix: prefix
                                )
                                if hooks.incumbent_charge_s is not None:
                                    simulated_total += hooks.incumbent_charge_s()
                        else:
                            open_children.append(child)

                    if chunk_idx < last_leaf_idx:
                        # a later chunk still carries complete schedules
                        # that may tighten the bound: defer elimination
                        deferred.append(open_children)
                        continue
                    t0 = perf_counter()
                    deferred.append(open_children)
                    for chunk_open in deferred:
                        survivors, pruned = eliminate(chunk_open, upper_bound)
                        stats.nodes_pruned += pruned
                        total_pruned += pruned
                        total_kept += len(survivors)
                        pool.push_many(survivors)
                    deferred.clear()
                    apply_s += perf_counter() - t0
                stats.time_pool_s += apply_s
                if hooks.on_eliminate is not None:
                    hooks.on_eliminate(total_pruned)

                simulated_total += sim_iter
                measured_total += wall_iter
                stats.pools_evaluated += 1

                if self.double_buffer and prev_sim_s is not None:
                    credit = min(prev_sim_s, select_s + branch_s)
                    overlap_sim_saved += credit
                    if hooks.on_overlap is not None:
                        hooks.on_overlap(credit)
                prev_sim_s = sim_iter

                # measured overlap: host work + worker bounding minus the
                # wall time the iteration actually took
                serial_s = select_s + branch_s + worker_s + apply_s
                elapsed = perf_counter() - iter_t0
                if serial_s > elapsed:
                    overlap_wall_saved += serial_s - elapsed

                if hooks.on_iteration is not None:
                    hooks.on_iteration(
                        OffloadStep(
                            iteration=iteration,
                            nodes_offloaded=total_offloaded,
                            nodes_pruned=total_pruned,
                            nodes_kept=total_kept,
                            incumbent=upper_bound,
                            simulated_s=sim_iter,
                            measured_s=wall_iter,
                        )
                    )
        finally:
            aoff.close()

        return DriverResult(
            upper_bound=upper_bound,
            best_order=best_order,
            best_value=best_value,
            completed=completed,
            iterations=iteration,
            simulated_s=simulated_total,
            measured_s=measured_total,
            overlap_saved_sim_s=overlap_sim_saved,
            overlap_saved_wall_s=overlap_wall_saved,
        )

    def _run_batch_block_async(
        self,
        frontier: BlockFrontier,
        trail: Trail,
        upper_bound: float,
        best_order: tuple[int, ...],
        stats: SearchStats,
        next_order: int,
        start: float,
    ) -> DriverResult:
        instance = self.instance
        offload = self.offload
        hooks = self.hooks
        limits = self.limits
        n_jobs = instance.n_jobs
        pt = instance.processing_times
        perf_counter = time.perf_counter

        # No chunking while a frontier memory cap holds selection in its
        # hysteretic restricted regime: the regime transition is itself
        # stateful per pop, so micro-chunked pops could diverge from the
        # synchronous pop sequence.  A capped frontier keeps single
        # full-batch launches (still bounded on the worker thread).
        chunk_sizes = self._chunk_sizes(
            getattr(offload, "supports_chunked_overlap", False)
            and not frontier.capped
        )

        best_value: Optional[int] = None
        best_trail: Optional[int] = None
        simulated_total = 0.0
        measured_total = 0.0
        overlap_sim_saved = 0.0
        overlap_wall_saved = 0.0
        prev_sim_s: Optional[float] = None
        on_checkpoint = hooks.on_checkpoint
        ckpt = self.checkpoint if on_checkpoint is not None else None
        last_checkpoint = start
        iteration = 0
        completed = True
        aoff = AsyncOffload(offload)
        try:
            while frontier:
                if ckpt is not None and on_checkpoint is not None:
                    due = (
                        ckpt.every_steps is not None
                        and iteration > 0
                        and iteration % ckpt.every_steps == 0
                    )
                    if not due and ckpt.every_seconds is not None:
                        due = perf_counter() - last_checkpoint >= ckpt.every_seconds
                    if due:
                        # batch boundary: no launch in flight, the snapshot
                        # cannot race the worker thread
                        assert aoff.idle, "checkpoint with an offload launch in flight"
                        on_checkpoint(
                            CheckpointState(
                                frontier=frontier,
                                trail=trail,
                                upper_bound=upper_bound,
                                best_order_supplier=(
                                    lambda bt=best_trail, bo=best_order: (
                                        trail.prefix(bt) if bt is not None else bo
                                    )
                                ),
                                next_order=next_order,
                                stats=stats,
                                steps=iteration,
                            )
                        )
                        last_checkpoint = perf_counter()
                if limits.max_iterations is not None and iteration >= limits.max_iterations:
                    completed = False
                    break
                if limits.max_nodes is not None and stats.nodes_explored >= limits.max_nodes:
                    completed = False
                    break
                if limits.max_time_s is not None and perf_counter() - start > limits.max_time_s:
                    completed = False
                    break
                if limits.deadline is not None and time.time() > limits.deadline:
                    completed = False
                    break
                iteration += 1
                iter_t0 = perf_counter()

                # --- selection + branching + submission (all pops precede
                # any push, so chunked pops equal the one synchronous pop)
                select_s = 0.0
                branch_s = 0.0
                total_selected = 0
                launches = []  # (children, ticket, has_leaves) in pop order
                for size in chunk_sizes:
                    t0 = perf_counter()
                    parents, lazily_pruned = frontier.pop_batch(size, upper_bound)
                    select_s += perf_counter() - t0
                    stats.nodes_pruned += lazily_pruned
                    if not len(parents):
                        break  # frontier drained mid-plan
                    total_selected += len(parents)
                    t0 = perf_counter()
                    children = branch_block(parents, pt, next_order)
                    branch_s += perf_counter() - t0
                    next_order += len(children)
                    stats.nodes_branched += len(parents)
                    if not len(children):
                        continue
                    has_leaves = bool(np.any(children.depth == n_jobs))
                    launches.append(
                        (children, aoff.submit_block(children, siblings=False), has_leaves)
                    )
                stats.time_pool_s += select_s
                stats.time_branching_s += branch_s
                if total_selected == 0:
                    break
                if hooks.on_select is not None:
                    hooks.on_select(total_selected)
                if not launches:
                    continue

                # --- join in submission order ---------------------------
                last_leaf_idx = -1
                for chunk_idx, (_, _, has_leaves) in enumerate(launches):
                    if has_leaves:
                        last_leaf_idx = chunk_idx
                sim_iter = 0.0
                wall_iter = 0.0
                worker_s = 0.0
                apply_s = 0.0
                total_offloaded = 0
                total_pruned = 0
                total_kept = 0
                deferred: list[tuple[NodeBlock, np.ndarray, int]] = []
                for chunk_idx, (children, ticket, has_leaves) in enumerate(launches):
                    t0 = perf_counter()
                    _, sim_s, wall_s = ticket.result()
                    stats.time_bounding_s += perf_counter() - t0
                    worker_s += ticket.worker_wall_s
                    sim_iter += sim_s
                    wall_iter += wall_s
                    stats.nodes_bounded += len(children)
                    total_offloaded += len(children)

                    # incumbent updates from complete schedules, row order
                    leaf_mask = children.depth == n_jobs
                    n_leaves = int(np.count_nonzero(leaf_mask))
                    if n_leaves:
                        leaf_rows = np.flatnonzero(leaf_mask)
                        stats.leaves_evaluated += n_leaves
                        makespans = children.release[leaf_rows, -1]
                        improving, _ = leaf_improvements(upper_bound, makespans)
                        for i in improving:
                            makespan = int(makespans[i])
                            upper_bound = float(makespan)
                            best_trail = int(children.trail_id[leaf_rows[i]])
                            best_value = makespan
                            stats.incumbent_updates += 1
                            self._notify(
                                makespan, lambda tid=best_trail: trail.prefix(tid)
                            )
                            if hooks.incumbent_charge_s is not None:
                                simulated_total += hooks.incumbent_charge_s()

                    if chunk_idx < last_leaf_idx:
                        # a later chunk still carries complete schedules
                        # that may tighten the bound: defer elimination
                        deferred.append((children, leaf_mask, n_leaves))
                        continue
                    t0 = perf_counter()
                    deferred.append((children, leaf_mask, n_leaves))
                    for d_children, d_mask, d_leaves in deferred:
                        keep = d_children.lower_bound < upper_bound
                        if d_leaves:
                            keep &= ~d_mask
                        kept = int(np.count_nonzero(keep))
                        pruned = len(d_children) - d_leaves - kept
                        stats.nodes_pruned += pruned
                        total_pruned += pruned
                        total_kept += kept
                        frontier.push_block(d_children, keep)
                    deferred.clear()
                    apply_s += perf_counter() - t0
                stats.time_pool_s += apply_s
                if hooks.on_eliminate is not None:
                    hooks.on_eliminate(total_pruned)

                simulated_total += sim_iter
                measured_total += wall_iter
                stats.pools_evaluated += 1

                if self.double_buffer and prev_sim_s is not None:
                    credit = min(prev_sim_s, select_s + branch_s)
                    overlap_sim_saved += credit
                    if hooks.on_overlap is not None:
                        hooks.on_overlap(credit)
                prev_sim_s = sim_iter

                # measured overlap: host work + worker bounding minus the
                # wall time the iteration actually took
                serial_s = select_s + branch_s + worker_s + apply_s
                elapsed = perf_counter() - iter_t0
                if serial_s > elapsed:
                    overlap_wall_saved += serial_s - elapsed

                if hooks.on_iteration is not None:
                    hooks.on_iteration(
                        OffloadStep(
                            iteration=iteration,
                            nodes_offloaded=total_offloaded,
                            nodes_pruned=total_pruned,
                            nodes_kept=total_kept,
                            incumbent=upper_bound,
                            simulated_s=sim_iter,
                            measured_s=wall_iter,
                        )
                    )
        finally:
            aoff.close()

        if best_trail is not None:
            best_order = trail.prefix(best_trail)
        return DriverResult(
            upper_bound=upper_bound,
            best_order=best_order,
            best_value=best_value,
            completed=completed,
            iterations=iteration,
            simulated_s=simulated_total,
            measured_s=measured_total,
            overlap_saved_sim_s=overlap_sim_saved,
            overlap_saved_wall_s=overlap_wall_saved,
            next_order=next_order,
        )
