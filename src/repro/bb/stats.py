"""Exploration statistics shared by every Branch-and-Bound engine."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Counters and timers accumulated during one B&B run.

    The timing split between :attr:`time_bounding_s` and the rest is what
    the paper's preliminary experiment measures (the bounding operator
    accounts for ~98.5 % of the serial runtime on the m=20 instances).
    """

    #: nodes whose lower bound has been evaluated
    nodes_bounded: int = 0
    #: nodes decomposed by the branching operator
    nodes_branched: int = 0
    #: nodes discarded because their bound met or exceeded the incumbent
    nodes_pruned: int = 0
    #: complete schedules reached
    leaves_evaluated: int = 0
    #: number of times the incumbent (upper bound) improved
    incumbent_updates: int = 0
    #: number of pools shipped to the bounding device (GPU engine only)
    pools_evaluated: int = 0
    #: wall-clock time of the whole run, seconds
    time_total_s: float = 0.0
    #: wall-clock time spent in the bounding operator, seconds
    time_bounding_s: float = 0.0
    #: wall-clock time spent branching, seconds
    time_branching_s: float = 0.0
    #: wall-clock time spent in pool management (selection + insertion), seconds
    time_pool_s: float = 0.0
    #: largest pending-pool size observed
    max_pool_size: int = 0
    #: simulated device time accumulated by the GPU engine, seconds
    simulated_device_time_s: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def nodes_explored(self) -> int:
        """Total nodes taken out of the pool and processed."""
        return self.nodes_branched + self.nodes_pruned

    @property
    def bounding_fraction(self) -> float:
        """Share of the total runtime spent bounding (0 when not timed)."""
        if self.time_total_s <= 0:
            return 0.0
        return self.time_bounding_s / self.time_total_s

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Combine statistics of two (sub-)searches."""
        return SearchStats(
            nodes_bounded=self.nodes_bounded + other.nodes_bounded,
            nodes_branched=self.nodes_branched + other.nodes_branched,
            nodes_pruned=self.nodes_pruned + other.nodes_pruned,
            leaves_evaluated=self.leaves_evaluated + other.leaves_evaluated,
            incumbent_updates=self.incumbent_updates + other.incumbent_updates,
            pools_evaluated=self.pools_evaluated + other.pools_evaluated,
            time_total_s=max(self.time_total_s, other.time_total_s),
            time_bounding_s=self.time_bounding_s + other.time_bounding_s,
            time_branching_s=self.time_branching_s + other.time_branching_s,
            time_pool_s=self.time_pool_s + other.time_pool_s,
            max_pool_size=max(self.max_pool_size, other.max_pool_size),
            simulated_device_time_s=self.simulated_device_time_s + other.simulated_device_time_s,
        )

    def as_dict(self) -> dict[str, float | int]:
        """Plain dictionary (for reports and JSON dumps)."""
        return {
            "nodes_bounded": self.nodes_bounded,
            "nodes_branched": self.nodes_branched,
            "nodes_pruned": self.nodes_pruned,
            "nodes_explored": self.nodes_explored,
            "leaves_evaluated": self.leaves_evaluated,
            "incumbent_updates": self.incumbent_updates,
            "pools_evaluated": self.pools_evaluated,
            "time_total_s": self.time_total_s,
            "time_bounding_s": self.time_bounding_s,
            "time_branching_s": self.time_branching_s,
            "time_pool_s": self.time_pool_s,
            "bounding_fraction": self.bounding_fraction,
            "max_pool_size": self.max_pool_size,
            "simulated_device_time_s": self.simulated_device_time_s,
        }
