"""Multi-threaded Branch-and-Bound baseline (Section V).

The paper compares its GPU-accelerated B&B against a low-level (pthread)
multi-threaded B&B in which worker threads explore disjoint parts of the
tree and share the incumbent.  This module provides the equivalent engine
for the reproduction:

* the root is decomposed down to a configurable *decomposition depth*,
  producing many independent sub-trees;
* the sub-trees are solved by a pool of workers (``"process"`` backend for
  true parallelism — Python threads cannot scale CPU-bound work because of
  the GIL, which the ``"thread"`` backend demonstrates and the tests use
  for determinism);
* every worker starts from the best incumbent known at launch time; the
  final result merges the workers' bests.

The *measured* speed-up of this engine on the test machine is reported by
the benchmarks, while the Table IV reproduction uses the calibrated
:class:`~repro.perf.model.MulticoreScalingModel` (see DESIGN.md §2 for the
substitution rationale).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bb.node import Node, root_node
from repro.bb.operators import bound_children_batch, bound_node, branch
from repro.bb.sequential import BBResult, SequentialBranchAndBound
from repro.bb.stats import SearchStats
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_heuristic

__all__ = ["MulticoreBranchAndBound", "SubtreeTask"]


@dataclass(frozen=True)
class SubtreeTask:
    """A unit of work shipped to one worker: solve the sub-tree under ``prefix``."""

    instance_payload: dict
    prefix: tuple[int, ...]
    upper_bound: float
    max_nodes: Optional[int]
    max_time_s: Optional[float]
    selection: str
    kernel: str = "v2"


def _solve_subtree(task: SubtreeTask) -> dict:
    """Worker entry point (module level so it is picklable by processes)."""
    instance = FlowShopInstance.from_dict(task.instance_payload)
    solver = _SubtreeSolver(
        instance,
        prefix=task.prefix,
        upper_bound=task.upper_bound,
        selection=task.selection,
        max_nodes=task.max_nodes,
        max_time_s=task.max_time_s,
        kernel=task.kernel,
    )
    best_makespan, best_order, stats, completed = solver.run()
    return {
        "best_makespan": best_makespan,
        "best_order": best_order,
        "stats": stats.as_dict(),
        "completed": completed,
        "prefix": task.prefix,
    }


class _SubtreeSolver:
    """Serial best-first search restricted to the sub-tree under a prefix."""

    def __init__(
        self,
        instance: FlowShopInstance,
        prefix: Sequence[int],
        upper_bound: float,
        selection: str = "depth-first",
        max_nodes: Optional[int] = None,
        max_time_s: Optional[float] = None,
        kernel: str = "v2",
    ):
        self.instance = instance
        self.data = LowerBoundData(instance)
        self.prefix = tuple(int(j) for j in prefix)
        self.upper_bound = float(upper_bound)
        self.selection = selection
        self.max_nodes = max_nodes
        self.max_time_s = max_time_s
        self.kernel = kernel

    def _root(self) -> Node:
        node = root_node(self.instance)
        for job in self.prefix:
            node = node.child(job, self.instance.processing_times)
        return node

    def run(self) -> tuple[Optional[int], tuple[int, ...], SearchStats, bool]:
        from repro.bb.pool import make_pool  # local import to keep pickling light

        stats = SearchStats()
        pool = make_pool(self.selection)
        start = time.perf_counter()

        node = self._root()
        t0 = time.perf_counter()
        bound_node(node, self.data)
        stats.time_bounding_s += time.perf_counter() - t0
        stats.nodes_bounded += 1

        best_makespan: Optional[int] = None
        best_order: tuple[int, ...] = ()
        upper_bound = self.upper_bound

        if node.is_leaf:
            makespan = int(node.release[-1])
            stats.leaves_evaluated += 1
            if makespan < upper_bound:
                return makespan, node.prefix, stats, True
            return None, (), stats, True

        if node.lower_bound is not None and node.lower_bound >= upper_bound:
            stats.nodes_pruned += 1
            stats.time_total_s = time.perf_counter() - start
            return None, (), stats, True

        pool.push(node)
        completed = True
        while pool:
            if self.max_nodes is not None and stats.nodes_explored >= self.max_nodes:
                completed = False
                break
            if self.max_time_s is not None and time.perf_counter() - start > self.max_time_s:
                completed = False
                break
            current = pool.pop()
            assert current.lower_bound is not None
            if current.lower_bound >= upper_bound:
                stats.nodes_pruned += 1
                continue
            children = branch(current, self.instance)
            stats.nodes_branched += 1
            t0 = time.perf_counter()
            bound_children_batch(children, self.data, kernel=self.kernel)
            stats.time_bounding_s += time.perf_counter() - t0
            stats.nodes_bounded += len(children)
            for child in children:
                if child.is_leaf:
                    stats.leaves_evaluated += 1
                    makespan = int(child.release[-1])
                    if makespan < upper_bound:
                        upper_bound = float(makespan)
                        best_makespan = makespan
                        best_order = child.prefix
                        stats.incumbent_updates += 1
                    continue
                assert child.lower_bound is not None
                if child.lower_bound >= upper_bound:
                    stats.nodes_pruned += 1
                    continue
                pool.push(child)
        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = pool.max_size_seen
        return best_makespan, best_order, stats, completed


class MulticoreBranchAndBound:
    """Parallel tree exploration over a pool of workers.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    n_workers:
        Number of worker threads/processes (defaults to the CPU count).
    backend:
        ``"process"`` (true parallelism, default), ``"thread"`` (GIL-bound,
        deterministic — useful in tests), or ``"serial"`` (run the tasks in
        the calling thread; used to measure decomposition overhead).
    decomposition_depth:
        Depth down to which the root is expanded on the master before the
        sub-trees are distributed.  Depth 1 yields ``n`` tasks, depth 2
        ``n(n-1)`` tasks; more tasks means better load balance.
    selection:
        Selection strategy used inside each worker.
    kernel:
        Batched kernel revision used by every worker to bound the children
        of a branched node (``"v1"`` / ``"v2"``).  The scalar mode of the
        sequential engine is not available here: workers always batch their
        sibling sets.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        n_workers: Optional[int] = None,
        backend: str = "process",
        decomposition_depth: int = 1,
        selection: str = "depth-first",
        initial_upper_bound: Optional[float] = None,
        max_nodes_per_task: Optional[int] = None,
        max_time_s: Optional[float] = None,
        kernel: str = "v2",
    ):
        if backend not in ("process", "thread", "serial"):
            raise ValueError("backend must be 'process', 'thread' or 'serial'")
        if decomposition_depth < 1:
            raise ValueError("decomposition_depth must be >= 1")
        if kernel not in ("v1", "v2"):
            raise ValueError(f"kernel must be 'v1' or 'v2', got {kernel!r}")
        self.instance = instance
        self.n_workers = n_workers or os.cpu_count() or 1
        self.backend = backend
        self.decomposition_depth = min(decomposition_depth, instance.n_jobs)
        self.selection = selection
        self.initial_upper_bound = initial_upper_bound
        self.max_nodes_per_task = max_nodes_per_task
        self.max_time_s = max_time_s
        self.kernel = kernel

    # ------------------------------------------------------------------ #
    def _frontier_prefixes(self) -> list[tuple[int, ...]]:
        """All job prefixes of length ``decomposition_depth``."""
        prefixes: list[tuple[int, ...]] = [()]
        for _ in range(self.decomposition_depth):
            extended: list[tuple[int, ...]] = []
            for prefix in prefixes:
                used = set(prefix)
                for job in range(self.instance.n_jobs):
                    if job not in used:
                        extended.append(prefix + (job,))
            prefixes = extended
        return prefixes

    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        if self.initial_upper_bound is not None:
            return float(self.initial_upper_bound), ()
        heuristic = neh_heuristic(self.instance)
        return float(heuristic.makespan), tuple(heuristic.order)

    # ------------------------------------------------------------------ #
    def solve(self) -> BBResult:
        """Run the parallel search and merge the workers' results."""
        start = time.perf_counter()
        upper_bound, best_order = self._initial_incumbent()
        payload = self.instance.to_dict()
        tasks = [
            SubtreeTask(
                instance_payload=payload,
                prefix=prefix,
                upper_bound=upper_bound,
                max_nodes=self.max_nodes_per_task,
                max_time_s=self.max_time_s,
                selection=self.selection,
                kernel=self.kernel,
            )
            for prefix in self._frontier_prefixes()
        ]

        results: list[dict] = []
        if self.backend == "serial" or self.n_workers == 1:
            results = [_solve_subtree(task) for task in tasks]
        else:
            executor_cls = (
                concurrent.futures.ProcessPoolExecutor
                if self.backend == "process"
                else concurrent.futures.ThreadPoolExecutor
            )
            with executor_cls(max_workers=self.n_workers) as executor:
                results = list(executor.map(_solve_subtree, tasks))

        stats = SearchStats()
        completed = True
        best_makespan = int(upper_bound) if best_order else None
        for outcome in results:
            task_stats = SearchStats(
                **{
                    key: outcome["stats"][key]
                    for key in (
                    "nodes_bounded",
                    "nodes_branched",
                    "nodes_pruned",
                    "leaves_evaluated",
                    "incumbent_updates",
                    "pools_evaluated",
                    "time_total_s",
                    "time_bounding_s",
                    "time_branching_s",
                    "time_pool_s",
                    "max_pool_size",
                        "simulated_device_time_s",
                    )
                }
            )
            stats = stats.merge(task_stats)
            completed = completed and bool(outcome["completed"])
            if outcome["best_makespan"] is not None:
                value = int(outcome["best_makespan"])
                if best_makespan is None or value < best_makespan:
                    best_makespan = value
                    best_order = tuple(outcome["best_order"])

        stats.time_total_s = time.perf_counter() - start
        if best_makespan is None or not best_order:
            raise RuntimeError("parallel search terminated without an incumbent")
        return BBResult(
            instance=self.instance,
            best_makespan=best_makespan,
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    def reference_serial(self) -> BBResult:
        """Solve the same instance with the serial engine (for speed-up ratios)."""
        solver = SequentialBranchAndBound(
            self.instance,
            selection="best-first",
            initial_upper_bound=self.initial_upper_bound,
        )
        return solver.solve()
