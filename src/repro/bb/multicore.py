"""Multi-core Branch-and-Bound baseline (Section V).

The paper compares its GPU-accelerated B&B against a low-level (pthread)
multi-threaded B&B in which worker threads explore disjoint parts of the
tree and share the incumbent.  :class:`MulticoreBranchAndBound` is the
facade over the two parallel modes of the reproduction:

* ``mode="worksteal"`` (default, the paper-faithful engine) — the
  :class:`~repro.bb.worksteal.WorkStealingBranchAndBound` engine: an
  oversubscribed frontier of sub-tree chunks in a shared queue that idle
  workers steal from, plus a shared incumbent that workers compare-and-swap
  on improvement and poll while exploring;
* ``mode="static"`` — the historical static split: the frontier is mapped
  onto the workers once, every worker searches from the launch-time bound,
  and nothing is exchanged until the final merge.  Kept as the ablation
  baseline the work-stealing benchmarks compare against.

Backends: ``"process"`` gives true parallelism (Python threads cannot scale
CPU-bound work because of the GIL, which the ``"thread"`` backend
demonstrates and the tests use for determinism); ``"serial"`` runs the
tasks in the calling thread to measure decomposition overhead.

The *measured* speed-up of this engine on the test machine is reported by
the benchmarks, while the Table IV reproduction uses the calibrated
:class:`~repro.perf.model.MulticoreScalingModel` (see DESIGN.md §2 for the
substitution rationale).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bb.driver import SearchDriver, SearchHooks, SearchLimits
from repro.bb.frontier import BlockFrontier, Trail, bound_block, seed_block
from repro.bb.node import Node, root_node
from repro.bb.operators import bound_node
from repro.bb.sequential import BBResult, SequentialBranchAndBound
from repro.bb.stats import SearchStats
from repro.bb.worksteal import (
    WorkStealingBranchAndBound,
    frontier_prefixes,
    initial_incumbent,
)
from repro.flowshop.bounds import LowerBoundData
from repro.flowshop.instance import FlowShopInstance

__all__ = ["MulticoreBranchAndBound", "SubtreeTask"]


@dataclass(frozen=True)
class SubtreeTask:
    """A unit of work shipped to one worker: solve the sub-tree under ``prefix``."""

    instance_payload: dict
    prefix: tuple[int, ...]
    upper_bound: float
    max_nodes: Optional[int]
    #: shared wall-clock deadline (``time.time()`` epoch), not a per-task span
    deadline: Optional[float]
    selection: str
    kernel: str = "v2"
    layout: str = "block"
    max_frontier_nodes: Optional[int] = None
    frontier_index: str = "segmented"


def _solve_subtree(task: SubtreeTask) -> dict:
    """Worker entry point (module level so it is picklable by processes)."""
    instance = FlowShopInstance.from_dict(task.instance_payload)
    solver = _SubtreeSolver(
        instance,
        prefix=task.prefix,
        upper_bound=task.upper_bound,
        selection=task.selection,
        max_nodes=task.max_nodes,
        deadline=task.deadline,
        kernel=task.kernel,
        layout=task.layout,
        max_frontier_nodes=task.max_frontier_nodes,
        frontier_index=task.frontier_index,
    )
    best_makespan, best_order, stats, completed = solver.run()
    return {
        "best_makespan": best_makespan,
        "best_order": best_order,
        "stats": stats,
        "completed": completed,
        "prefix": task.prefix,
    }


class _SubtreeSolver:
    """Serial search restricted to the sub-tree under a prefix.

    With ``incumbent=None`` (static mode) the solver prunes against the
    launch-time ``upper_bound`` only.  When the work-stealing engine passes
    a shared incumbent, the solver starts from the freshest shared bound,
    publishes every local improvement via compare-and-swap, and polls the
    shared bound every ``poll_interval`` pops — re-pruning its open pool
    (:meth:`~repro.bb.pool.NodePool.prune_to`) when a peer tightened it.

    Rebalancing (the work-stealing engine's ``rebalance=True`` mode) uses
    two extra knobs: ``capture_incomplete=True`` makes a node-budget-cut
    run serialize its live frontier into ``self.resume_blob`` (an in-memory
    snapshot, see :mod:`repro.bb.snapshot`) instead of abandoning it, and
    ``resume_from=<blob>`` makes the solver continue such a captured
    frontier rather than seeding from a prefix.  Deadline-cut runs never
    capture — the global time budget stays a hard stop.
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        prefix: Sequence[int],
        upper_bound: float,
        selection: str = "depth-first",
        max_nodes: Optional[int] = None,
        deadline: Optional[float] = None,
        kernel: str = "v2",
        incumbent=None,
        poll_interval: int = 64,
        layout: str = "block",
        max_frontier_nodes: Optional[int] = None,
        frontier_index: str = "segmented",
        capture_incomplete: bool = False,
        resume_from: Optional[bytes] = None,
    ):
        if poll_interval < 1:
            raise ValueError("poll_interval must be >= 1")
        if layout not in ("block", "object"):
            raise ValueError(f"layout must be 'block' or 'object', got {layout!r}")
        self.instance = instance
        self.data = LowerBoundData(instance)
        self.prefix = tuple(int(j) for j in prefix)
        self.upper_bound = float(upper_bound)
        self.selection = selection
        self.max_nodes = max_nodes
        self.deadline = deadline
        self.kernel = kernel
        self.incumbent = incumbent
        self.poll_interval = poll_interval
        self.layout = layout
        self.max_frontier_nodes = max_frontier_nodes
        self.frontier_index = frontier_index
        self.capture_incomplete = capture_incomplete
        self.resume_from = resume_from
        #: set by a budget-cut run when ``capture_incomplete`` is on: the
        #: serialized remainder of this chunk, ready to re-enqueue
        self.resume_blob: Optional[bytes] = None

    def _root(self) -> Node:
        node = root_node(self.instance)
        for job in self.prefix:
            node = node.child(job, self.instance.processing_times)
        return node

    def _driver(self) -> SearchDriver:
        """The worker's loop: the driver's single-step shape with polling.

        ``poll_bound`` re-reads the shared incumbent every ``poll_interval``
        pops (re-pruning the open pool when a peer tightened it) and
        ``on_improve_incumbent`` publishes local improvements via the
        compare-and-swap.  Best-first workers batch ``(lb, depth)`` ties
        into one bounding launch exactly like the sequential engine — the
        driver routes both through the same ``pop_min_tie_batch`` path.
        """
        hooks = SearchHooks(poll_interval=self.poll_interval)
        if self.incumbent is not None:
            incumbent = self.incumbent
            hooks.poll_bound = incumbent.get
            hooks.on_improve_incumbent = lambda makespan, order: incumbent.try_update(makespan)
        return SearchDriver(
            self.instance,
            self.data,
            layout=self.layout,
            selection=self.selection,
            kernel=self.kernel,
            limits=SearchLimits(max_nodes=self.max_nodes, deadline=self.deadline),
            hooks=hooks,
        )

    def run(self) -> tuple[Optional[int], tuple[int, ...], SearchStats, bool]:
        """Exhaust this worker's sub-tree; return (makespan, order, stats, completed)."""
        if self.resume_from is not None:
            return self._run_resume()
        if self.layout == "block":
            return self._run_block()
        return self._run_object()

    def _deadline_expired(self) -> bool:
        return self.deadline is not None and time.time() >= self.deadline

    def _capture(self, frontier, trail, upper_bound: float, next_order: int) -> None:
        """Serialize the live remainder of a budget-cut chunk for re-enqueue.

        The cut segment's partial statistics travel with the worker that ran
        it (they are merged into the worker totals as usual), so the blob
        carries a *fresh* ``SearchStats`` — the resumed segment accounts for
        its own work and nothing is double counted.
        """
        from repro.bb.snapshot import dumps_snapshot  # local import to keep pickling light

        self.resume_blob = dumps_snapshot(
            self.instance,
            layout=self.layout,
            frontier=frontier,
            upper_bound=upper_bound,
            best_order=(),
            stats=SearchStats(),
            trail=trail,
            next_order=next_order,
            engine={
                "engine": "worksteal-chunk",
                "selection": self.selection,
                "kernel": self.kernel,
                "prefix": list(self.prefix),
            },
        )

    def _run_resume(self) -> tuple[Optional[int], tuple[int, ...], SearchStats, bool]:
        """Continue a captured chunk remainder (see :meth:`_capture`)."""
        from repro.bb.snapshot import loads_snapshot  # local import to keep pickling light

        snapshot = loads_snapshot(self.resume_from)
        stats = SearchStats()
        frontier = snapshot.frontier
        start = time.perf_counter()

        upper_bound = float(snapshot.upper_bound)
        if self.incumbent is not None:
            upper_bound = min(upper_bound, self.incumbent.get())

        outcome = self._driver().run(
            frontier,
            upper_bound=upper_bound,
            best_order=(),
            stats=stats,
            trail=snapshot.trail,
            next_order=snapshot.next_order,
            start=start,
        )
        if not outcome.completed and self.capture_incomplete and not self._deadline_expired():
            self._capture(frontier, snapshot.trail, outcome.upper_bound, outcome.next_order)
        stats.time_total_s = time.perf_counter() - start
        stats.max_pool_size = frontier.max_size_seen
        return outcome.best_value, tuple(outcome.best_order), stats, outcome.completed

    def _run_object(self) -> tuple[Optional[int], tuple[int, ...], SearchStats, bool]:
        from repro.bb.pool import make_pool  # local import to keep pickling light

        stats = SearchStats()
        pool = make_pool(self.selection)
        start = time.perf_counter()

        def finish(
            best_makespan: Optional[int], best_order: tuple[int, ...], completed: bool
        ) -> tuple[Optional[int], tuple[int, ...], SearchStats, bool]:
            # Every exit path — including the leaf-root and pruned-root
            # early returns — records its timing and pool high-water mark,
            # so the merged multicore statistics stay complete.
            stats.time_total_s = time.perf_counter() - start
            stats.max_pool_size = pool.max_size_seen
            return best_makespan, best_order, stats, completed

        node = self._root()
        t0 = time.perf_counter()
        bound_node(node, self.data)
        stats.time_bounding_s += time.perf_counter() - t0
        stats.nodes_bounded += 1

        upper_bound = self.upper_bound
        if self.incumbent is not None:
            upper_bound = min(upper_bound, self.incumbent.get())

        if node.is_leaf:
            makespan = int(node.release[-1])
            stats.leaves_evaluated += 1
            if makespan < upper_bound:
                if self.incumbent is not None:
                    self.incumbent.try_update(makespan)
                stats.incumbent_updates += 1
                return finish(makespan, node.prefix, True)
            return finish(None, (), True)

        if node.lower_bound is not None and node.lower_bound >= upper_bound:
            stats.nodes_pruned += 1
            return finish(None, (), True)

        pool.push(node)
        outcome = self._driver().run(
            pool, upper_bound=upper_bound, best_order=(), stats=stats, start=start
        )
        if not outcome.completed and self.capture_incomplete and not self._deadline_expired():
            self._capture(pool, None, outcome.upper_bound, outcome.next_order)
        return finish(outcome.best_value, tuple(outcome.best_order), outcome.completed)

    def _run_block(self) -> tuple[Optional[int], tuple[int, ...], SearchStats, bool]:
        """Block-layout twin of :meth:`_run_object` (same tree, same stats)."""
        instance = self.instance
        stats = SearchStats()
        trail = Trail()
        frontier = BlockFrontier(
            instance.n_jobs,
            instance.n_machines,
            trail,
            strategy=self.selection,
            max_pending=self.max_frontier_nodes,
            frontier_index=self.frontier_index,
        )
        start = time.perf_counter()

        def finish(
            best_makespan: Optional[int], best_order: tuple[int, ...], completed: bool
        ) -> tuple[Optional[int], tuple[int, ...], SearchStats, bool]:
            stats.time_total_s = time.perf_counter() - start
            stats.max_pool_size = frontier.max_size_seen
            return best_makespan, best_order, stats, completed

        seed = seed_block(instance, self.prefix, trail)
        next_order = int(seed.order_index[0]) + 1
        t0 = time.perf_counter()
        bound_block(self.data, seed, kernel=self.kernel)
        stats.time_bounding_s += time.perf_counter() - t0
        stats.nodes_bounded += 1

        upper_bound = self.upper_bound
        if self.incumbent is not None:
            upper_bound = min(upper_bound, self.incumbent.get())

        if int(seed.depth[0]) == instance.n_jobs:
            makespan = int(seed.release[0, -1])
            stats.leaves_evaluated += 1
            if makespan < upper_bound:
                if self.incumbent is not None:
                    self.incumbent.try_update(makespan)
                stats.incumbent_updates += 1
                return finish(makespan, trail.prefix(int(seed.trail_id[0])), True)
            return finish(None, (), True)

        if int(seed.lower_bound[0]) >= upper_bound:
            stats.nodes_pruned += 1
            return finish(None, (), True)

        frontier.push_block(seed)
        outcome = self._driver().run(
            frontier,
            upper_bound=upper_bound,
            best_order=(),
            stats=stats,
            trail=trail,
            next_order=next_order,
            start=start,
        )
        if not outcome.completed and self.capture_incomplete and not self._deadline_expired():
            self._capture(frontier, trail, outcome.upper_bound, outcome.next_order)
        return finish(outcome.best_value, tuple(outcome.best_order), outcome.completed)


class MulticoreBranchAndBound:
    """Parallel tree exploration over a pool of workers.

    Parameters
    ----------
    instance:
        The flow-shop instance to solve.
    n_workers:
        Number of worker threads/processes (defaults to the CPU count).
    backend:
        ``"process"`` (true parallelism, default), ``"thread"`` (GIL-bound,
        deterministic — useful in tests), or ``"serial"`` (run the tasks in
        the calling thread; used to measure decomposition overhead).
    mode:
        ``"worksteal"`` (default) — the shared-incumbent work-stealing
        engine (:class:`~repro.bb.worksteal.WorkStealingBranchAndBound`);
        ``"static"`` — the historical one-shot split of the frontier over
        the workers with no incumbent exchange, kept as the ablation
        baseline.
    decomposition_depth:
        Depth down to which the root is expanded on the master before the
        sub-trees are distributed.  Depth 1 yields ``n`` tasks, depth 2
        ``n(n-1)``.  Defaults to 2 in work-stealing mode (oversubscription
        feeds the stealing) and 1 in static mode.
    selection:
        Selection strategy used inside each worker.
    poll_interval:
        Work-stealing mode only: pops between two reads of the shared
        incumbent inside a worker.
    kernel:
        Batched kernel revision used by every worker to bound the children
        of a branched node (``"v1"`` / ``"v2"``).  The scalar mode of the
        sequential engine is not available here: workers always batch their
        sibling sets.
    layout:
        Node representation inside each worker: ``"block"`` (default)
        explores with the structure-of-arrays frontier
        (:mod:`repro.bb.frontier`); ``"object"`` keeps one ``Node`` per
        sub-problem.  Both explore the identical tree per chunk.
    max_frontier_nodes:
        Block layout only: per-worker high-water frontier cap with a
        0.8×cap hysteresis low-water mark (see
        :class:`~repro.bb.frontier.BlockFrontier`).
    frontier_index:
        Block layout only: per-worker frontier selection index —
        ``"segmented"`` (default) or ``"linear"`` (full-scan ablation).
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        n_workers: Optional[int] = None,
        backend: str = "process",
        decomposition_depth: Optional[int] = None,
        selection: str = "depth-first",
        initial_upper_bound: Optional[float] = None,
        max_nodes_per_task: Optional[int] = None,
        max_time_s: Optional[float] = None,
        kernel: str = "v2",
        mode: str = "worksteal",
        poll_interval: int = 64,
        layout: str = "block",
        max_frontier_nodes: Optional[int] = None,
        frontier_index: str = "segmented",
    ):
        if backend not in ("process", "thread", "serial"):
            raise ValueError("backend must be 'process', 'thread' or 'serial'")
        if mode not in ("worksteal", "static"):
            raise ValueError("mode must be 'worksteal' or 'static'")
        if decomposition_depth is None:
            decomposition_depth = 2 if mode == "worksteal" else 1
        if decomposition_depth < 1:
            raise ValueError("decomposition_depth must be >= 1")
        if kernel not in ("v1", "v2"):
            raise ValueError(f"kernel must be 'v1' or 'v2', got {kernel!r}")
        if layout not in ("block", "object"):
            raise ValueError(f"layout must be 'block' or 'object', got {layout!r}")
        self.instance = instance
        self.n_workers = n_workers or os.cpu_count() or 1
        self.backend = backend
        self.mode = mode
        self.decomposition_depth = min(decomposition_depth, instance.n_jobs)
        self.selection = selection
        self.initial_upper_bound = initial_upper_bound
        self.max_nodes_per_task = max_nodes_per_task
        self.max_time_s = max_time_s
        self.kernel = kernel
        self.poll_interval = poll_interval
        self.layout = layout
        self.max_frontier_nodes = max_frontier_nodes
        if frontier_index not in ("segmented", "linear"):
            raise ValueError(
                f"frontier_index must be 'segmented' or 'linear', got {frontier_index!r}"
            )
        self.frontier_index = frontier_index

    # ------------------------------------------------------------------ #
    def _frontier_prefixes(self) -> list[tuple[int, ...]]:
        """All job prefixes of length ``decomposition_depth``."""
        return frontier_prefixes(self.instance.n_jobs, self.decomposition_depth)

    def _initial_incumbent(self) -> tuple[float, tuple[int, ...]]:
        return initial_incumbent(self.instance, self.initial_upper_bound)

    # ------------------------------------------------------------------ #
    def solve(self) -> BBResult:
        """Run the parallel search and merge the workers' results."""
        if self.mode == "worksteal":
            return WorkStealingBranchAndBound(
                self.instance,
                n_workers=self.n_workers,
                backend=self.backend,
                decomposition_depth=self.decomposition_depth,
                selection=self.selection,
                initial_upper_bound=self.initial_upper_bound,
                max_nodes_per_task=self.max_nodes_per_task,
                max_time_s=self.max_time_s,
                kernel=self.kernel,
                poll_interval=self.poll_interval,
                layout=self.layout,
                max_frontier_nodes=self.max_frontier_nodes,
                frontier_index=self.frontier_index,
            ).solve()
        return self._solve_static()

    def _solve_static(self) -> BBResult:
        """One-shot split of the frontier over the workers (no sharing)."""
        start = time.perf_counter()
        upper_bound, best_order = self._initial_incumbent()
        payload = self.instance.to_dict()
        deadline = time.time() + self.max_time_s if self.max_time_s is not None else None
        tasks = [
            SubtreeTask(
                instance_payload=payload,
                prefix=prefix,
                upper_bound=upper_bound,
                max_nodes=self.max_nodes_per_task,
                deadline=deadline,
                selection=self.selection,
                kernel=self.kernel,
                layout=self.layout,
                max_frontier_nodes=self.max_frontier_nodes,
                frontier_index=self.frontier_index,
            )
            for prefix in self._frontier_prefixes()
        ]

        results: list[dict] = []
        if self.backend == "serial" or self.n_workers == 1:
            results = [_solve_subtree(task) for task in tasks]
        else:
            executor_cls = (
                concurrent.futures.ProcessPoolExecutor
                if self.backend == "process"
                else concurrent.futures.ThreadPoolExecutor
            )
            with executor_cls(max_workers=self.n_workers) as executor:
                results = list(executor.map(_solve_subtree, tasks))

        stats = SearchStats()
        completed = True
        best_makespan = int(upper_bound) if best_order else None
        for outcome in results:
            stats = stats.merge(outcome["stats"])
            completed = completed and bool(outcome["completed"])
            if outcome["best_makespan"] is not None:
                value = int(outcome["best_makespan"])
                if best_makespan is None or value < best_makespan:
                    best_makespan = value
                    best_order = tuple(outcome["best_order"])

        stats.time_total_s = time.perf_counter() - start
        if best_makespan is None:
            # No worker could strictly improve the initial bound, so the
            # bound itself is the result: proven when the search completed
            # (e.g. the caller passed the known optimal makespan), otherwise
            # returned with ``proved_optimal=False`` like any truncated run.
            if upper_bound == float("inf"):
                raise RuntimeError(
                    "parallel search terminated without an incumbent; provide "
                    "a finite initial upper bound or let NEH seed the search"
                )
            best_makespan = int(upper_bound)
        return BBResult(
            instance=self.instance,
            best_makespan=best_makespan,
            best_order=tuple(best_order),
            proved_optimal=completed,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    def reference_serial(self) -> BBResult:
        """Solve the same instance with the serial engine (for speed-up ratios)."""
        solver = SequentialBranchAndBound(
            self.instance,
            selection="best-first",
            initial_upper_bound=self.initial_upper_bound,
        )
        return solver.solve()
