"""Branch-and-Bound engine substrate.

This package provides the CPU-side Branch-and-Bound machinery the paper
builds on:

* :mod:`~repro.bb.node` — the sub-problem representation (a permutation
  prefix plus cached machine release times and lower bound).
* :mod:`~repro.bb.pool` — pending-node pools implementing the selection
  strategies (best-first, the paper's choice; depth-first; FIFO).
* :mod:`~repro.bb.frontier` — the structure-of-arrays node representation
  (``layout="block"``, the default): columnar :class:`~repro.bb.frontier.
  NodeBlock` batches, vectorized branch/bound/eliminate operators and the
  array-backed :class:`~repro.bb.frontier.BlockFrontier` pool.
* :mod:`~repro.bb.operators` — the four B&B operators (branching, bounding,
  selection, elimination) as composable functions.
* :mod:`~repro.bb.driver` — the ONE select→branch→bound→eliminate
  iteration every engine runs: :class:`~repro.bb.driver.SearchDriver`,
  parameterized by an offload callable (where bounding runs and what
  simulated time it charges) and per-step hooks (incumbent publication,
  bound polling, launch accounting, overlap credits).
* :mod:`~repro.bb.sequential` — the serial B&B, the ``T_cpu`` reference of
  every speed-up in the paper, with per-operator timing instrumentation
  (used for the 98.5 % bounding-fraction measurement).
* :mod:`~repro.bb.multicore` — the multi-core B&B baseline of Section V
  (facade over the static-split and work-stealing modes).
* :mod:`~repro.bb.worksteal` — the work-stealing, shared-incumbent parallel
  engine (oversubscribed decomposition, dynamic load balance, incumbent
  compare-and-swap + periodic polling).
* :mod:`~repro.bb.bruteforce` — exhaustive enumeration, used by the tests
  as ground truth on small instances.
* :mod:`~repro.bb.stats` — exploration statistics shared by all engines.
"""

from repro.bb.frontier import (
    BlockFrontier,
    NodeBlock,
    Trail,
    bound_block,
    branch_block,
    eliminate_block,
    make_frontier,
    root_block,
)
from repro.bb.driver import (
    DriverResult,
    LocalBounding,
    OffloadStep,
    SearchDriver,
    SearchHooks,
    SearchLimits,
    TraceEvent,
)
from repro.bb.node import Node, root_node
from repro.bb.pool import (
    BestFirstPool,
    DepthFirstPool,
    FifoPool,
    NodePool,
    make_pool,
)
from repro.bb.operators import (
    branch,
    bound_node,
    eliminate,
    select_batch,
)
from repro.bb.stats import SearchStats
from repro.bb.progress import ProgressTracker, ProgressEvent
from repro.bb.sequential import SequentialBranchAndBound, BBResult
from repro.bb.multicore import MulticoreBranchAndBound
from repro.bb.worksteal import SharedIncumbent, WorkStealingBranchAndBound
from repro.bb.bruteforce import brute_force_optimum

__all__ = [
    "Node",
    "root_node",
    "NodeBlock",
    "Trail",
    "BlockFrontier",
    "root_block",
    "branch_block",
    "bound_block",
    "eliminate_block",
    "make_frontier",
    "BestFirstPool",
    "DepthFirstPool",
    "FifoPool",
    "NodePool",
    "make_pool",
    "branch",
    "bound_node",
    "eliminate",
    "select_batch",
    "SearchStats",
    "SearchDriver",
    "SearchHooks",
    "SearchLimits",
    "LocalBounding",
    "OffloadStep",
    "DriverResult",
    "TraceEvent",
    "ProgressTracker",
    "ProgressEvent",
    "SequentialBranchAndBound",
    "BBResult",
    "MulticoreBranchAndBound",
    "SharedIncumbent",
    "WorkStealingBranchAndBound",
    "brute_force_optimum",
]
