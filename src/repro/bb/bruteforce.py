"""Exhaustive enumeration of permutation schedules.

Only usable for tiny instances (``n!`` schedules), the brute-force solver is
the ground truth against which the tests validate the Branch-and-Bound
engines and the admissibility of the lower bound.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.schedule import makespan

__all__ = ["brute_force_optimum", "enumerate_makespans"]

#: refuse to enumerate more than this many schedules (guards against typos)
MAX_JOBS = 10


def enumerate_makespans(instance: FlowShopInstance) -> Iterable[tuple[tuple[int, ...], int]]:
    """Yield ``(order, makespan)`` for every permutation of the jobs."""
    if instance.n_jobs > MAX_JOBS:
        raise ValueError(f"brute force is limited to {MAX_JOBS} jobs ({instance.n_jobs} requested)")
    for order in itertools.permutations(range(instance.n_jobs)):
        yield order, makespan(instance, order)


def brute_force_optimum(instance: FlowShopInstance) -> tuple[tuple[int, ...], int]:
    """Optimal ``(order, makespan)`` by exhaustive enumeration."""
    best_order: tuple[int, ...] | None = None
    best_value: int | None = None
    for order, value in enumerate_makespans(instance):
        if best_value is None or value < best_value:
            best_order, best_value = order, value
    assert best_order is not None and best_value is not None
    return best_order, best_value
