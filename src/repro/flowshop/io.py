"""Reading and writing flow-shop instance files.

Two on-disk formats are supported:

* **Taillard format** — the layout used by Taillard's benchmark files and by
  most flow-shop solvers: a first line with ``n_jobs n_machines`` followed by
  the processing-time matrix, either one row per job (job-major, the common
  variant) or one row per machine (machine-major, Taillard's original
  ``ordonnancement`` files); the reader auto-detects the orientation from the
  header and the writer lets the caller choose.
* **JSON format** — the library's own :meth:`FlowShopInstance.to_dict`
  payload, which additionally round-trips the name and metadata (seed,
  generator, synthetic flag).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "read_taillard_file",
    "write_taillard_file",
    "read_json_file",
    "write_json_file",
    "loads_taillard",
    "dumps_taillard",
]

PathLike = Union[str, Path]


def _tokenise(text: str) -> list[int]:
    tokens = []
    for raw in text.replace(",", " ").split():
        try:
            tokens.append(int(raw))
        except ValueError as exc:
            raise ValueError(f"invalid integer token {raw!r} in instance data") from exc
    return tokens


def loads_taillard(text: str, name: str = "", job_major: bool | None = None) -> FlowShopInstance:
    """Parse a Taillard-format instance from a string.

    Parameters
    ----------
    text:
        File contents: ``n_jobs n_machines`` followed by ``n_jobs * n_machines``
        integers.
    name:
        Name to attach to the instance.
    job_major:
        ``True`` when the matrix is written one row per job, ``False`` for
        one row per machine; ``None`` (default) keeps the job-major reading,
        which is correct for both orientations of *square* instances and for
        the common job-major files.
    """
    tokens = _tokenise(text)
    if len(tokens) < 2:
        raise ValueError("instance file must start with 'n_jobs n_machines'")
    n_jobs, n_machines = tokens[0], tokens[1]
    if n_jobs < 1 or n_machines < 1:
        raise ValueError(f"invalid instance header: {n_jobs} jobs, {n_machines} machines")
    values = tokens[2:]
    expected = n_jobs * n_machines
    if len(values) != expected:
        raise ValueError(
            f"expected {expected} processing times for a {n_jobs}x{n_machines} "
            f"instance, found {len(values)}"
        )
    matrix = np.asarray(values, dtype=np.int64)
    if job_major is False:
        pt = matrix.reshape(n_machines, n_jobs).T
    else:
        pt = matrix.reshape(n_jobs, n_machines)
    return FlowShopInstance(
        pt, name=name, metadata={"format": "taillard", "job_major": job_major is not False}
    )


def dumps_taillard(instance: FlowShopInstance, job_major: bool = True) -> str:
    """Serialise an instance to the Taillard text format."""
    lines = [f"{instance.n_jobs} {instance.n_machines}"]
    matrix = instance.processing_times if job_major else instance.processing_times.T
    for row in matrix:
        lines.append(" ".join(str(int(v)) for v in row))
    return "\n".join(lines) + "\n"


def read_taillard_file(
    path: PathLike, name: str | None = None, job_major: bool | None = None
) -> FlowShopInstance:
    """Read a Taillard-format instance file."""
    path = Path(path)
    text = path.read_text()
    return loads_taillard(text, name=name if name is not None else path.stem, job_major=job_major)


def write_taillard_file(instance: FlowShopInstance, path: PathLike, job_major: bool = True) -> Path:
    """Write an instance in the Taillard text format; returns the path."""
    path = Path(path)
    path.write_text(dumps_taillard(instance, job_major=job_major))
    return path


def read_json_file(path: PathLike) -> FlowShopInstance:
    """Read an instance from the library's JSON representation."""
    payload = json.loads(Path(path).read_text())
    return FlowShopInstance.from_dict(payload)


def write_json_file(instance: FlowShopInstance, path: PathLike, indent: int = 2) -> Path:
    """Write an instance to the library's JSON representation; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(instance.to_dict(), indent=indent) + "\n")
    return path
