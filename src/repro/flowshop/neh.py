"""NEH constructive heuristic (Nawaz, Enscore and Ham, 1983).

The Branch-and-Bound algorithms in this library need an initial upper bound
(incumbent) to prune against.  The paper seeds its runs with "an initial
solution"; NEH is the de-facto standard constructive heuristic for the
permutation flow shop and typically lands within a few percent of the
optimum, which keeps the explored trees small enough for the benchmark
protocol to be meaningful.

The heuristic:

1. Sort the jobs by decreasing total processing time.
2. Insert jobs one at a time, each in the position of the current partial
   permutation that minimises its makespan.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.schedule import Schedule

__all__ = ["neh_order", "neh_heuristic", "best_insertion"]


def _partial_makespan(pt: np.ndarray, order: Sequence[int]) -> int:
    front = np.zeros(pt.shape[1], dtype=np.int64)
    for job in order:
        prev = 0
        row = pt[job]
        for k in range(pt.shape[1]):
            start = front[k] if front[k] > prev else prev
            prev = start + row[k]
            front[k] = prev
    return int(front[-1])


def best_insertion(pt: np.ndarray, order: list[int], job: int) -> tuple[list[int], int]:
    """Insert ``job`` into ``order`` at the position minimising the makespan.

    Returns the new order and its makespan.  Ties are broken by the earliest
    position, which makes the heuristic deterministic.
    """
    best_order: list[int] | None = None
    best_value: int | None = None
    for pos in range(len(order) + 1):
        candidate = order[:pos] + [job] + order[pos:]
        value = _partial_makespan(pt, candidate)
        if best_value is None or value < best_value:
            best_value = value
            best_order = candidate
    assert best_order is not None and best_value is not None
    return best_order, best_value


def neh_order(instance: FlowShopInstance) -> list[int]:
    """Job permutation produced by the NEH heuristic."""
    pt = instance.processing_times
    totals = pt.sum(axis=1)
    # decreasing total processing time; stable tie-break by job index
    priority = sorted(range(instance.n_jobs), key=lambda j: (-int(totals[j]), j))
    order: list[int] = []
    for job in priority:
        order, _ = best_insertion(pt, order, job)
    return order


def neh_heuristic(instance: FlowShopInstance) -> Schedule:
    """Run NEH and return the resulting :class:`~repro.flowshop.schedule.Schedule`."""
    return Schedule(instance, tuple(neh_order(instance)))
