"""Local-search improvement of upper bounds.

The quality of the incumbent (upper bound) directly controls how much of the
tree the Branch-and-Bound can prune, so a cheap improvement pass over the
NEH seed pays for itself many times over.  Two classic permutation
neighbourhoods are provided:

* :func:`insertion_neighbourhood_improve` — remove one job and re-insert it
  at its best position (the NEH move), first-improvement.
* :func:`swap_neighbourhood_improve` — exchange two positions,
  first-improvement.
* :func:`iterated_descent` — alternate the two neighbourhoods until neither
  improves (a simple variable-neighbourhood descent), optionally bounded by
  a move budget.
"""

from __future__ import annotations

from typing import Sequence


from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.neh import neh_order
from repro.flowshop.schedule import Schedule, makespan

__all__ = [
    "insertion_neighbourhood_improve",
    "swap_neighbourhood_improve",
    "iterated_descent",
    "improved_upper_bound",
]


def _as_order(instance: FlowShopInstance, order: Sequence[int] | None) -> list[int]:
    if order is None:
        return neh_order(instance)
    order = [int(j) for j in order]
    if sorted(order) != list(range(instance.n_jobs)):
        raise ValueError("order must be a permutation of the instance's jobs")
    return order


def insertion_neighbourhood_improve(
    instance: FlowShopInstance, order: Sequence[int] | None = None
) -> tuple[list[int], int, bool]:
    """One first-improvement pass of the remove-and-reinsert neighbourhood.

    Returns ``(order, makespan, improved)``.
    """
    current = _as_order(instance, order)
    best_value = makespan(instance, current)
    n = len(current)
    for position in range(n):
        job = current[position]
        without = current[:position] + current[position + 1 :]
        for target in range(n):
            if target == position:
                continue
            candidate = without[:target] + [job] + without[target:]
            value = makespan(instance, candidate)
            if value < best_value:
                return candidate, value, True
    return current, best_value, False


def swap_neighbourhood_improve(
    instance: FlowShopInstance, order: Sequence[int] | None = None
) -> tuple[list[int], int, bool]:
    """One first-improvement pass of the pairwise-swap neighbourhood."""
    current = _as_order(instance, order)
    best_value = makespan(instance, current)
    n = len(current)
    for i in range(n - 1):
        for j in range(i + 1, n):
            candidate = list(current)
            candidate[i], candidate[j] = candidate[j], candidate[i]
            value = makespan(instance, candidate)
            if value < best_value:
                return candidate, value, True
    return current, best_value, False


def iterated_descent(
    instance: FlowShopInstance,
    order: Sequence[int] | None = None,
    max_moves: int = 1000,
) -> Schedule:
    """Alternate insertion and swap first-improvement moves until a local optimum.

    ``max_moves`` bounds the number of accepted moves (each move strictly
    improves the makespan, so termination is guaranteed anyway; the budget
    only protects pathological large instances).
    """
    if max_moves < 0:
        raise ValueError("max_moves must be non-negative")
    current = _as_order(instance, order)
    moves = 0
    improved = True
    while improved and moves < max_moves:
        improved = False
        current, _, moved = insertion_neighbourhood_improve(instance, current)
        if moved:
            improved = True
            moves += 1
            continue
        current, _, moved = swap_neighbourhood_improve(instance, current)
        if moved:
            improved = True
            moves += 1
    return Schedule(instance, tuple(current))


def improved_upper_bound(instance: FlowShopInstance, max_moves: int = 1000) -> int:
    """NEH followed by local descent — the strongest cheap upper bound provided."""
    return iterated_descent(instance, max_moves=max_moves).makespan
