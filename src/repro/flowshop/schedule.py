"""Schedules (complete and partial) and makespan evaluation.

In a *permutation* flow-shop a schedule is fully described by a permutation
of the jobs: the same processing order is used on every machine.  The paper's
Branch-and-Bound explores *partial* schedules — a prefix ``pi(1)..pi(l)`` of
jobs already fixed in the first ``l`` positions — so this module provides:

* :func:`completion_times` / :func:`makespan` — evaluation of a complete
  permutation.
* :func:`partial_completion_times` — the per-machine completion (release)
  times of a prefix, which is exactly the ``RM`` vector the lower bound uses
  as the "earliest starting times" of the remaining jobs.
* :class:`Schedule` and :class:`PartialSchedule` — thin validated wrappers
  used by the public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.flowshop.instance import FlowShopInstance

__all__ = [
    "completion_times",
    "makespan",
    "partial_completion_times",
    "remaining_tail_times",
    "Schedule",
    "PartialSchedule",
]


def _validate_permutation(instance: FlowShopInstance, order: Sequence[int]) -> np.ndarray:
    arr = np.asarray(list(order), dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("a schedule must be a 1-D sequence of job indices")
    if arr.size != instance.n_jobs:
        raise ValueError(f"schedule has {arr.size} jobs but the instance has {instance.n_jobs}")
    seen = np.zeros(instance.n_jobs, dtype=bool)
    for job in arr:
        if not 0 <= job < instance.n_jobs:
            raise ValueError(f"job index {job} out of range")
        if seen[job]:
            raise ValueError(f"job {job} appears twice in the schedule")
        seen[job] = True
    return arr


def _validate_prefix(instance: FlowShopInstance, order: Sequence[int]) -> np.ndarray:
    arr = np.asarray(list(order), dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("a partial schedule must be a 1-D sequence of job indices")
    if arr.size > instance.n_jobs:
        raise ValueError("partial schedule longer than the number of jobs")
    seen = set()
    for job in arr.tolist():
        if not 0 <= job < instance.n_jobs:
            raise ValueError(f"job index {job} out of range")
        if job in seen:
            raise ValueError(f"job {job} appears twice in the partial schedule")
        seen.add(job)
    return arr


def completion_times(instance: FlowShopInstance, order: Sequence[int]) -> np.ndarray:
    """Completion time matrix ``C[pos, k]`` for a complete permutation.

    ``C[pos, k]`` is the completion time of the job in position ``pos`` of
    ``order`` on machine ``k`` using the standard flow-shop recurrence::

        C[pos, k] = max(C[pos-1, k], C[pos, k-1]) + p[order[pos], k]

    Parameters
    ----------
    instance:
        The flow-shop instance.
    order:
        A permutation of ``range(n_jobs)``.

    Returns
    -------
    numpy.ndarray
        ``(n_jobs, n_machines)`` int64 matrix of completion times.
    """
    arr = _validate_permutation(instance, order)
    return _completion_times_unchecked(instance.processing_times, arr)


def _completion_times_unchecked(pt: np.ndarray, order: np.ndarray) -> np.ndarray:
    n = order.size
    m = pt.shape[1]
    completion = np.zeros((n, m), dtype=np.int64)
    prev_row = np.zeros(m, dtype=np.int64)
    for pos in range(n):
        job_times = pt[order[pos]]
        row = completion[pos]
        time_on_prev_machine = 0
        for k in range(m):
            start = prev_row[k] if prev_row[k] > time_on_prev_machine else time_on_prev_machine
            time_on_prev_machine = start + job_times[k]
            row[k] = time_on_prev_machine
        prev_row = row
    return completion


def makespan(instance: FlowShopInstance, order: Sequence[int]) -> int:
    """Makespan ``C_max`` of a complete permutation schedule."""
    return int(completion_times(instance, order)[-1, -1])


def partial_completion_times(
    instance: FlowShopInstance, prefix: Sequence[int]
) -> np.ndarray:
    """Per-machine completion times of a prefix of scheduled jobs.

    For a partial schedule ``pi(1)..pi(l)`` this returns the length-``m``
    vector ``r`` where ``r[k]`` is the time machine ``k`` becomes free after
    processing the prefix.  This is the ``RM`` ("earliest starting times")
    structure consumed by the lower bound.  For an empty prefix the result is
    all zeros.
    """
    arr = _validate_prefix(instance, prefix)
    return _partial_completion_unchecked(instance.processing_times, arr)


def _partial_completion_unchecked(pt: np.ndarray, prefix: np.ndarray) -> np.ndarray:
    m = pt.shape[1]
    front = np.zeros(m, dtype=np.int64)
    for job in prefix:
        job_times = pt[job]
        prev = 0
        for k in range(m):
            start = front[k] if front[k] > prev else prev
            prev = start + job_times[k]
            front[k] = prev
    return front


def remaining_tail_times(
    instance: FlowShopInstance, scheduled: Sequence[int]
) -> np.ndarray:
    """Minimal remaining work after each machine over the unscheduled jobs.

    Returns the length-``m`` vector ``q`` where ``q[k]`` is the minimum, over
    jobs not in ``scheduled``, of the total processing time on machines
    ``k+1 .. m-1``.  This is the ``QM`` ("lowest latency times") structure of
    the lower bound: any unscheduled job finishing on machine ``k`` still
    needs at least ``q[k]`` time before the makespan can be realised.

    If every job is already scheduled the vector is all zeros.
    """
    arr = _validate_prefix(instance, scheduled)
    pt = instance.processing_times
    n, m = pt.shape
    mask = np.ones(n, dtype=bool)
    mask[arr] = False
    if not mask.any():
        return np.zeros(m, dtype=np.int64)
    remaining = pt[mask]
    # tails[j, k] = sum of processing times of job j on machines k+1..m-1
    suffix = np.zeros((remaining.shape[0], m), dtype=np.int64)
    if m > 1:
        suffix[:, : m - 1] = np.cumsum(remaining[:, ::-1], axis=1)[:, ::-1][:, 1:]
    return suffix.min(axis=0).astype(np.int64)


@dataclass(frozen=True)
class Schedule:
    """A complete permutation schedule together with its makespan."""

    instance: FlowShopInstance
    order: tuple[int, ...]
    makespan: int = field(init=False)

    def __post_init__(self) -> None:
        arr = _validate_permutation(self.instance, self.order)
        object.__setattr__(self, "order", tuple(int(j) for j in arr))
        value = int(_completion_times_unchecked(self.instance.processing_times, arr)[-1, -1])
        object.__setattr__(self, "makespan", value)

    @property
    def n_jobs(self) -> int:
        return self.instance.n_jobs

    def completion_times(self) -> np.ndarray:
        """Full ``(n, m)`` completion-time matrix of this schedule."""
        return completion_times(self.instance, self.order)

    def gantt_rows(self) -> list[list[tuple[int, int, int]]]:
        """Per-machine ``(job, start, end)`` triples, useful for plotting/tests."""
        comp = self.completion_times()
        pt = self.instance.processing_times
        rows: list[list[tuple[int, int, int]]] = []
        for k in range(self.instance.n_machines):
            row = []
            for pos, job in enumerate(self.order):
                end = int(comp[pos, k])
                start = end - int(pt[job, k])
                row.append((job, start, end))
            rows.append(row)
        return rows

    def is_feasible(self) -> bool:
        """Validate the no-overlap / precedence constraints of the Gantt chart."""
        for row in self.gantt_rows():
            last_end = 0
            for _job, start, end in row:
                if start < last_end or end - start < 0:
                    return False
                last_end = end
        comp = self.completion_times()
        pt = self.instance.processing_times
        for pos, job in enumerate(self.order):
            for k in range(1, self.instance.n_machines):
                start = comp[pos, k] - pt[job, k]
                if start < comp[pos, k - 1]:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(makespan={self.makespan}, order={self.order})"


@dataclass(frozen=True)
class PartialSchedule:
    """A prefix of scheduled jobs (the B&B sub-problem representation)."""

    instance: FlowShopInstance
    prefix: tuple[int, ...]

    def __post_init__(self) -> None:
        arr = _validate_prefix(self.instance, self.prefix)
        object.__setattr__(self, "prefix", tuple(int(j) for j in arr))

    @property
    def depth(self) -> int:
        """Number of jobs already fixed."""
        return len(self.prefix)

    @property
    def is_complete(self) -> bool:
        return self.depth == self.instance.n_jobs

    @property
    def unscheduled(self) -> tuple[int, ...]:
        """Jobs not yet placed, in increasing index order."""
        fixed = set(self.prefix)
        return tuple(j for j in range(self.instance.n_jobs) if j not in fixed)

    def machine_release_times(self) -> np.ndarray:
        """The ``RM`` vector for this prefix (see :func:`partial_completion_times`)."""
        return partial_completion_times(self.instance, self.prefix)

    def extend(self, job: int) -> "PartialSchedule":
        """Return a new partial schedule with ``job`` appended."""
        if job in self.prefix:
            raise ValueError(f"job {job} is already scheduled")
        return PartialSchedule(self.instance, self.prefix + (int(job),))

    def children(self) -> list["PartialSchedule"]:
        """All one-job extensions (the branching operator's output)."""
        return [self.extend(job) for job in self.unscheduled]

    def to_schedule(self) -> Schedule:
        """Convert a complete partial schedule into a :class:`Schedule`."""
        if not self.is_complete:
            raise ValueError(
                f"partial schedule of depth {self.depth} cannot be converted "
                f"(instance has {self.instance.n_jobs} jobs)"
            )
        return Schedule(self.instance, self.prefix)

    def completions_if(self, order_of_remaining: Iterable[int]) -> int:
        """Makespan obtained by appending ``order_of_remaining`` to the prefix."""
        full = self.prefix + tuple(int(j) for j in order_of_remaining)
        return makespan(self.instance, full)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartialSchedule(depth={self.depth}, prefix={self.prefix})"
