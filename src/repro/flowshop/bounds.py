"""The Lenstra / Lageweg / Rinnooy Kan lower bound for the permutation FSP.

This module implements the bounding operator that the paper off-loads to the
GPU.  It exposes the six data structures analysed in Table I of the paper:

=====  =======================================================  ==============
Name   Meaning                                                  Size
=====  =======================================================  ==============
PTM    processing times of the jobs                             ``n x m``
LM     lags of every job for every machine couple               ``n x m(m-1)/2``
JM     Johnson order of all jobs for every machine couple       ``n x m(m-1)/2``
RM     earliest starting times (machine release times)          ``m`` (per node)
QM     lowest latency times (minimal tails of remaining jobs)   ``m`` (per node)
MM     the machine couples ``(M_k, M_l)``, ``k < l``            ``m(m-1)/2 x 2``
=====  =======================================================  ==============

``PTM``, ``LM``, ``JM`` and ``MM`` only depend on the instance and are
precomputed once by :class:`LowerBoundData`; ``RM`` and ``QM`` depend on the
sub-problem (partial schedule) and are recomputed per node — exactly as in
the paper's CUDA kernel.

Two evaluation paths are provided:

* :func:`lower_bound` — scalar evaluation of a single sub-problem, a direct
  transcription of the paper's ``computeLB`` pseudo-code (Figure 2).
* :func:`lower_bound_batch` — vectorised evaluation of a *pool* of
  sub-problems at once.  This is the functional equivalent of the GPU
  kernel: one "thread" per sub-problem, all threads marching through the
  same machine couples and Johnson orders in lock-step (which is also why
  the kernel is so GPU friendly — the control flow is identical across the
  pool).
* :func:`lower_bound_batch_v2` — the same computation with the machine
  couple axis vectorised as well: the front/tail times of *all* couples are
  carried as ``(B, n_couples)`` tensors and only the Johnson scan dimension
  (``n_jobs``) remains a Python loop, cutting interpreter round-trips from
  ``n_couples * n_jobs`` to ``n_jobs``.

Both batched kernels return values bit-identical to the scalar bound;
:func:`get_batch_kernel` maps the ``"v1"`` / ``"v2"`` selector used by the
engine configurations to the matching implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.johnson import johnson_order_with_lags

__all__ = [
    "machine_couples",
    "LowerBoundData",
    "CoupleTensors",
    "DataStructureComplexity",
    "lower_bound",
    "lower_bound_batch",
    "lower_bound_batch_v2",
    "get_batch_kernel",
    "BATCH_KERNELS",
    "one_machine_bound",
]


def machine_couples(n_machines: int) -> np.ndarray:
    """All ordered machine couples ``(k, l)`` with ``k < l``.

    Returns an ``(m(m-1)/2, 2)`` int64 array; this is the ``MM`` structure.
    Couples are enumerated in lexicographic order which keeps the mapping
    between the couple index and ``(k, l)`` deterministic across the scalar
    kernel, the batched kernel and the GPU simulator.
    """
    if n_machines < 1:
        raise ValueError("n_machines must be >= 1")
    pairs = [(k, l) for k in range(n_machines) for l in range(k + 1, n_machines)]
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


@dataclass(frozen=True)
class DataStructureComplexity:
    """Size / access-count formulas of Table I of the paper.

    The counts are parametrised by ``n`` (total jobs), ``m`` (machines) and
    ``n_prime`` (jobs still to schedule in the sub-problem being bounded).
    ``bytes_per_element`` defaults to 4 (the C implementation uses ``int``).
    """

    n: int
    m: int
    bytes_per_element: int = 4

    # ------------------------------------------------------------------ #
    # Sizes (number of elements)
    # ------------------------------------------------------------------ #
    @property
    def n_couples(self) -> int:
        return self.m * (self.m - 1) // 2

    @property
    def ptm_size(self) -> int:
        return self.n * self.m

    @property
    def lm_size(self) -> int:
        return self.n * self.n_couples

    @property
    def jm_size(self) -> int:
        return self.n * self.n_couples

    @property
    def rm_size(self) -> int:
        return self.m

    @property
    def qm_size(self) -> int:
        return self.m

    @property
    def mm_size(self) -> int:
        return self.m * (self.m - 1)

    def sizes(self) -> dict[str, int]:
        """Element counts for every structure, keyed by the paper's names."""
        return {
            "PTM": self.ptm_size,
            "LM": self.lm_size,
            "JM": self.jm_size,
            "RM": self.rm_size,
            "QM": self.qm_size,
            "MM": self.mm_size,
        }

    def sizes_bytes(self) -> dict[str, int]:
        """Memory footprint in bytes for every structure."""
        return {k: v * self.bytes_per_element for k, v in self.sizes().items()}

    # ------------------------------------------------------------------ #
    # Access counts (per lower-bound evaluation)
    # ------------------------------------------------------------------ #
    def accesses(self, n_prime: int | None = None) -> dict[str, int]:
        """Number of accesses per LB evaluation (Table I, third column).

        ``n_prime`` is the number of remaining (unscheduled) jobs of the
        sub-problem; it defaults to ``n`` (root node).
        """
        n_prime = self.n if n_prime is None else int(n_prime)
        if not 0 <= n_prime <= self.n:
            raise ValueError(f"n_prime must be in [0, {self.n}]")
        half = self.m * (self.m - 1) // 2
        return {
            "PTM": n_prime * self.m * (self.m - 1),
            "LM": n_prime * half,
            "JM": self.n * half,
            "RM": self.m * (self.m - 1),
            "QM": half,
            "MM": self.m * (self.m - 1),
        }

    def table_rows(self, n_prime: int | None = None) -> list[tuple[str, int, int]]:
        """Rows ``(name, size, accesses)`` in the order used by Table I."""
        sizes = self.sizes()
        acc = self.accesses(n_prime)
        return [(name, sizes[name], acc[name]) for name in ("PTM", "LM", "JM", "RM", "QM", "MM")]


@dataclass(frozen=True)
class CoupleTensors:
    """Per-couple gather tensors consumed by the v2 (couple-vectorised) kernel.

    All arrays are materialised in Johnson-scan order so that step ``i`` of
    the kernel can address every machine couple at once:

    ``a_times[i, c]``
        processing time on the couple's first machine of the job in position
        ``i`` of couple ``c``'s Johnson order (a gather of ``PTM`` by ``JM``).
    ``b_times[i, c]``
        same, for the couple's second machine.
    ``lags[i, c]``
        lag of that job for couple ``c`` (a gather of ``LM`` by ``JM``).
    ``m1`` / ``m2``
        ``(n_couples,)`` first/second machine index of every couple (the two
        columns of ``MM``), used to gather the per-couple release times and
        tails out of the ``(B, m)`` node vectors.
    """

    a_times: np.ndarray
    b_times: np.ndarray
    lags: np.ndarray
    m1: np.ndarray
    m2: np.ndarray


class LowerBoundData:
    """Precomputed, instance-level data of the lower bound.

    Building this object corresponds to the host-side preparation step of
    the paper: the matrices are generated once on the CPU and then copied to
    the device.  The object is immutable after construction; all arrays have
    their writeable flag cleared so they can be shared with the GPU
    simulator's memory model without copies.

    Attributes
    ----------
    ptm:
        ``(n, m)`` processing times (``PTM``).
    mm:
        ``(n_couples, 2)`` machine couples (``MM``).
    lm:
        ``(n, n_couples)`` lags (``LM``): ``lm[j, c]`` is the total
        processing time of job ``j`` on the machines strictly between the
        two machines of couple ``c``.
    jm:
        ``(n, n_couples)`` Johnson matrix (``JM``): ``jm[i, c]`` is the job
        in position ``i`` of the Johnson-with-lags order for couple ``c``.
    tails:
        ``(n, m)`` per-job tails: ``tails[j, k]`` is the total processing
        time of job ``j`` on machines ``k+1 .. m-1``.  The per-node ``QM``
        vector is the column-wise minimum of this matrix over the remaining
        jobs.
    """

    __slots__ = (
        "instance",
        "ptm",
        "mm",
        "lm",
        "jm",
        "tails",
        "_complexity",
        "_couple_tensors",
        "_v2_gemm_cache",
    )

    def __init__(self, instance: FlowShopInstance):
        self.instance = instance
        pt = instance.processing_times
        n, m = pt.shape

        mm = machine_couples(m)
        n_couples = mm.shape[0]

        lm = np.zeros((n, n_couples), dtype=np.int64)
        jm = np.zeros((n, n_couples), dtype=np.int64)
        # cumulative sums along machines make each lag an O(1) lookup
        csum = np.concatenate(
            [np.zeros((n, 1), dtype=np.int64), np.cumsum(pt, axis=1, dtype=np.int64)], axis=1
        )
        for c in range(n_couples):
            k, l = int(mm[c, 0]), int(mm[c, 1])
            # lag = sum of processing times on machines k+1 .. l-1
            lm[:, c] = csum[:, l] - csum[:, k + 1]
            jm[:, c] = johnson_order_with_lags(pt[:, k], pt[:, l], lm[:, c])

        # tails[j, k] = total processing of job j after machine k
        #             = csum[j, m] - csum[j, k + 1]
        tails = (csum[:, -1][:, None] - csum[:, 1:]).astype(np.int64)

        self.ptm = pt
        self.mm = mm
        self.lm = lm
        self.jm = jm
        self.tails = tails
        for arr in (self.mm, self.lm, self.jm, self.tails):
            arr.setflags(write=False)
        self._complexity = DataStructureComplexity(n=n, m=m)
        self._couple_tensors: CoupleTensors | None = None
        self._v2_gemm_cache: dict = {}

    # ------------------------------------------------------------------ #
    @property
    def n_jobs(self) -> int:
        return self.instance.n_jobs

    @property
    def n_machines(self) -> int:
        return self.instance.n_machines

    @property
    def n_couples(self) -> int:
        return int(self.mm.shape[0])

    @property
    def complexity(self) -> DataStructureComplexity:
        """Table I complexity descriptor for this instance."""
        return self._complexity

    def arrays(self) -> dict[str, np.ndarray]:
        """The device-transferable arrays, keyed by the paper's names."""
        return {"PTM": self.ptm, "LM": self.lm, "JM": self.jm, "MM": self.mm, "TAILS": self.tails}

    def couple_tensors(self) -> CoupleTensors:
        """Gather tensors of the v2 kernel (built lazily, cached, immutable)."""
        if self._couple_tensors is None:
            m1 = self.mm[:, 0]
            m2 = self.mm[:, 1]
            a_times = self.ptm[self.jm, m1[None, :]].astype(np.int64)
            b_times = self.ptm[self.jm, m2[None, :]].astype(np.int64)
            lags = np.take_along_axis(self.lm, self.jm, axis=0).astype(np.int64)
            for arr in (a_times, b_times, lags):
                arr.setflags(write=False)
            self._couple_tensors = CoupleTensors(
                a_times=a_times, b_times=b_times, lags=lags, m1=m1, m2=m2
            )
        return self._couple_tensors

    # ------------------------------------------------------------------ #
    # Per-node helpers (RM / QM)
    # ------------------------------------------------------------------ #
    def machine_release_times(self, prefix: Sequence[int]) -> np.ndarray:
        """``RM`` — per-machine completion times of the scheduled prefix.

        The machine axis is vectorised: appending one job is the max-plus
        scan ``front'[k] = max(front[k], front'[k-1]) + pt[job, k]``, whose
        closed form ``front' = P + cummax(front - P_shifted)`` (with ``P``
        the inclusive cumulative processing times of the job) turns the
        former ``O(l * m)`` pure-Python double loop into ``l`` NumPy calls.
        """
        front = np.zeros(self.n_machines, dtype=np.int64)
        pt = self.ptm
        for job in prefix:
            csum = np.cumsum(pt[job], dtype=np.int64)
            front = csum + np.maximum.accumulate(front - (csum - pt[job]))
        return front

    def min_tails(self, scheduled_mask: np.ndarray) -> np.ndarray:
        """``QM`` — minimal remaining tail per machine over unscheduled jobs."""
        if scheduled_mask.all():
            return np.zeros(self.n_machines, dtype=np.int64)
        return self.tails[~scheduled_mask].min(axis=0)


def _scheduled_mask(n_jobs: int, prefix: Sequence[int]) -> np.ndarray:
    mask = np.zeros(n_jobs, dtype=bool)
    for job in prefix:
        if not 0 <= job < n_jobs:
            raise ValueError(f"job index {job} out of range")
        if mask[job]:
            raise ValueError(f"job {job} scheduled twice")
        mask[job] = True
    return mask


def one_machine_bound(
    data: LowerBoundData,
    prefix: Sequence[int],
    release: np.ndarray | None = None,
) -> int:
    """Single-machine relaxation bound (used as a complement / fallback).

    For every machine ``k`` the makespan is at least
    ``RM[k] + sum of remaining work on k + QM[k]``.  This bound is weaker
    than the two-machine bound but is exact for ``m == 1`` and provides the
    base case the couple-based kernel cannot cover.
    """
    mask = _scheduled_mask(data.n_jobs, prefix)
    rm = (
        data.machine_release_times(prefix)
        if release is None
        else np.asarray(release, dtype=np.int64)
    )
    if mask.all():
        return int(rm[-1])
    qm = data.min_tails(mask)
    remaining = data.ptm[~mask]
    loads = remaining.sum(axis=0)
    return int(np.max(rm + loads + qm))


def lower_bound(
    data: LowerBoundData,
    prefix: Sequence[int],
    release: np.ndarray | None = None,
    include_one_machine: bool = False,
) -> int:
    """Scalar lower bound of one sub-problem (the paper's ``computeLB``).

    Parameters
    ----------
    data:
        Precomputed instance-level structures.
    prefix:
        The scheduled jobs of the sub-problem (partial schedule), in order.
    release:
        Optional precomputed ``RM`` vector for the prefix; avoids an
        ``O(l * m)`` recomputation when the caller (the B&B engine) already
        maintains release times incrementally.
    include_one_machine:
        Also take the max with the single-machine relaxation.  The paper's
        kernel does not (with ``m = 20`` the couple bound dominates), but it
        is required for ``m == 1`` and harmless otherwise.

    Returns
    -------
    int
        A valid lower bound on the makespan of every completion of
        ``prefix``.  For a complete schedule the bound equals its makespan.
    """
    mask = _scheduled_mask(data.n_jobs, prefix)
    rm = (
        data.machine_release_times(prefix)
        if release is None
        else np.asarray(release, dtype=np.int64)
    )
    if rm.shape != (data.n_machines,):
        raise ValueError(f"release vector must have shape ({data.n_machines},)")

    if mask.all():
        return int(rm[-1])

    qm = data.min_tails(mask)
    best = 0

    ptm = data.ptm
    jm = data.jm
    lm = data.lm
    mm = data.mm

    for c in range(data.n_couples):
        m1 = int(mm[c, 0])
        m2 = int(mm[c, 1])
        t_m1 = int(rm[m1])
        t_m2 = int(rm[m2])
        for i in range(data.n_jobs):
            job = int(jm[i, c])
            if mask[job]:
                continue
            t_m1 += int(ptm[job, m1])
            ready = t_m1 + int(lm[job, c])
            if ready > t_m2:
                t_m2 = ready
            t_m2 += int(ptm[job, m2])
        value = t_m2 + int(qm[m2])
        if value > best:
            best = value

    if include_one_machine or data.n_couples == 0:
        best = max(best, one_machine_bound(data, prefix, release=rm))
    return int(best)


def _prepare_batch(
    data: LowerBoundData, scheduled_mask: np.ndarray, release: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
    """Shared pool validation / split of the batched kernels.

    Complete schedules are resolved immediately (their bound is the realised
    makespan ``release[:, -1]``); the remaining ("active") sub-problems get
    their per-node ``QM`` vector computed by a masked min over the tails.

    Returns ``None`` for an empty pool, otherwise the tuple
    ``(bounds, active, mask_a, rel_a, qm, unscheduled)`` where ``bounds`` is
    the ``(B,)`` output vector with the complete entries already filled in
    and the ``*_a`` arrays are restricted to the active sub-problems.
    """
    scheduled_mask = np.asarray(scheduled_mask, dtype=bool)
    release = np.asarray(release, dtype=np.int64)
    if scheduled_mask.ndim != 2 or scheduled_mask.shape[1] != data.n_jobs:
        raise ValueError(f"scheduled_mask must have shape (B, {data.n_jobs})")
    if release.shape != (scheduled_mask.shape[0], data.n_machines):
        raise ValueError(f"release must have shape ({scheduled_mask.shape[0]}, {data.n_machines})")

    batch = scheduled_mask.shape[0]
    if batch == 0:
        return None

    complete = scheduled_mask.all(axis=1)
    bounds = np.zeros(batch, dtype=np.int64)
    bounds[complete] = release[complete, -1]
    active = ~complete

    mask_a = scheduled_mask[active]
    rel_a = release[active]

    # QM: per-node minimal tails over unscheduled jobs (masked min).
    big = np.int64(np.iinfo(np.int64).max // 4)
    tails = np.where(mask_a[:, :, None], big, data.tails[None, :, :])
    qm = tails.min(axis=1)  # (B_active, m)

    unscheduled = ~mask_a  # (B_active, n)
    return bounds, active, mask_a, rel_a, qm, unscheduled


def lower_bound_batch(
    data: LowerBoundData,
    scheduled_mask: np.ndarray,
    release: np.ndarray,
    include_one_machine: bool = False,
) -> np.ndarray:
    """Vectorised lower bound of a pool of sub-problems.

    This function reproduces, on the host, exactly what the paper's CUDA
    kernel computes on the device: one logical thread per sub-problem, all
    threads walking the same Johnson orders.  The vectorisation is over the
    pool dimension (``B`` sub-problems evaluated simultaneously), which is
    also the axis the GPU parallelises over.

    Parameters
    ----------
    data:
        Precomputed instance-level structures.
    scheduled_mask:
        ``(B, n)`` boolean matrix; ``scheduled_mask[b, j]`` is True when job
        ``j`` is already scheduled in sub-problem ``b``.
    release:
        ``(B, m)`` matrix of per-machine release times (``RM``) of every
        sub-problem.
    include_one_machine:
        See :func:`lower_bound`.

    Returns
    -------
    numpy.ndarray
        ``(B,)`` int64 vector of lower bounds, bit-identical to calling
        :func:`lower_bound` on every sub-problem individually.
    """
    prepared = _prepare_batch(data, scheduled_mask, release)
    if prepared is None:
        return np.zeros(0, dtype=np.int64)
    bounds, active, mask_a, rel_a, qm, unscheduled = prepared
    if not active.any():
        return bounds
    n_active = mask_a.shape[0]

    ptm = data.ptm
    jm = data.jm
    lm = data.lm
    mm = data.mm

    best = np.zeros(n_active, dtype=np.int64)

    for c in range(data.n_couples):
        m1 = int(mm[c, 0])
        m2 = int(mm[c, 1])
        order = jm[:, c]  # (n,)
        a_times = ptm[order, m1]  # (n,)
        b_times = ptm[order, m2]  # (n,)
        lags = lm[order, c]  # (n,)
        present = unscheduled[:, order]  # (B_active, n) in Johnson order

        t_m1 = rel_a[:, m1].astype(np.int64).copy()
        t_m2 = rel_a[:, m2].astype(np.int64).copy()
        for i in range(data.n_jobs):
            sel = present[:, i]
            if not sel.any():
                continue
            t_m1 = t_m1 + np.where(sel, a_times[i], 0)
            ready = t_m1 + lags[i]
            t_m2 = np.where(sel & (ready > t_m2), ready, t_m2)
            t_m2 = t_m2 + np.where(sel, b_times[i], 0)
        value = t_m2 + qm[:, m2]
        best = np.maximum(best, value)

    if include_one_machine or data.n_couples == 0:
        loads = unscheduled.astype(np.int64) @ ptm  # (B_active, m)
        one_mach = (rel_a + loads + qm).max(axis=1)
        best = np.maximum(best, one_mach)

    bounds[active] = best
    return bounds


#: Largest ``n_jobs`` for which the v2 kernel uses the closed-form BLAS path
#: (its FLOP count grows with ``n^2`` while the scan path grows with ``n``).
_V2_GEMM_MAX_JOBS = 128

#: Sub-problems evaluated per internal tile of the v2 kernel.  Tiles keep the
#: working set cache-resident and bound the temporary memory of very large
#: pools (the paper off-loads up to 262144 sub-problems per launch).
_V2_GEMM_CHUNK = 512
_V2_SCAN_CHUNK = 512


class _V2GemmData:
    """Per-instance tensors of the closed-form (matmul) v2 evaluation.

    The Johnson two-machine scan of couple ``c`` has the closed form::

        t2_final = max(t2_0 + B_N,  t1_0 + B_N + max_j (A_j + lag_j - B_<j))

    where ``A_j`` (resp. ``B_<j``) is the total processing time on the first
    (resp. second) machine of the *unscheduled* jobs up to and including
    (resp. strictly before) job ``j`` in the couple's Johnson order, and
    ``B_N`` the total second-machine work of all unscheduled jobs.  Every
    inner term is linear in the unscheduled-job indicator vector ``u``, so
    the candidates of *all* jobs and *all* couples are one matrix product
    ``u @ K``.  Scheduled jobs are excluded from the outer max by a
    ``+BIG`` diagonal term inside ``K`` paired with a ``-BIG`` constant row,
    which turns their candidates into large negative values — the masking
    costs nothing at evaluation time.

    ``kj[j]`` is the ``(C, n+1)`` slice producing the candidates of job
    ``j`` for every couple (the extra row carries the constants); ``bf``
    produces ``B_N``.  Everything is stored transposed — ``(C, B)`` layout —
    so the reductions run along the long contiguous axis.
    """

    __slots__ = ("ftype", "big", "kj", "bf", "tails_t", "ptm_t", "_workspace")

    def __init__(self, data: LowerBoundData, ftype: np.dtype):
        n, n_couples = data.n_jobs, data.n_couples
        m1, m2 = data.mm[:, 0], data.mm[:, 1]
        self.ftype = np.dtype(ftype)
        self.big = _v2_big_sentinel(data)

        # pos[j, c]: position of job j in couple c's Johnson order.
        pos = np.empty((n, n_couples), dtype=np.int64)
        pos[data.jm, np.arange(n_couples)[None, :]] = np.arange(n)[:, None]
        a_full = data.ptm[:, m1]  # (n, C) first-machine times
        b_full = data.ptm[:, m2]  # (n, C) second-machine times

        # weights[j, j', c]: contribution of job j' to job j's candidate.
        le = pos[:, None, :] >= pos[None, :, :]
        lt = pos[:, None, :] > pos[None, :, :]
        weights = a_full[None, :, :] * le - b_full[None, :, :] * lt
        diag = np.arange(n)
        weights[diag, diag, :] += self.big
        weights += b_full[None, :, :]  # bake B_N into every candidate
        const = np.broadcast_to((data.lm - self.big)[:, None, :], (n, 1, n_couples))
        kj = np.concatenate([weights, const], axis=1)  # (n, n+1, C)
        self.kj = np.ascontiguousarray(kj.transpose(0, 2, 1)).astype(self.ftype)

        bf = np.concatenate([b_full, np.zeros((1, n_couples), dtype=np.int64)], axis=0)
        self.bf = np.ascontiguousarray(bf.T).astype(self.ftype)  # (C, n+1)
        self.tails_t = np.ascontiguousarray(data.tails.T).astype(self.ftype)  # (m, n)
        self.ptm_t = np.ascontiguousarray(data.ptm.T).astype(self.ftype)  # (m, n)
        self._workspace: tuple[np.ndarray, ...] | None = None

    def workspace(self, n: int, n_couples: int, chunk: int) -> tuple[np.ndarray, ...]:
        """Reusable per-chunk buffers (avoids page faults on every launch)."""
        if self._workspace is None or self._workspace[0].shape[1] != chunk:
            self._workspace = (
                np.empty((n_couples, chunk), dtype=self.ftype),  # running max
                np.empty((n_couples, chunk), dtype=self.ftype),  # gemm target
                np.empty((n + 1, chunk), dtype=self.ftype),  # indicators
            )
        return self._workspace


def _v2_big_sentinel(data: LowerBoundData) -> int:
    """Masking offset strictly dominating every legitimate candidate value."""
    max_pt = int(data.ptm.max()) if data.ptm.size else 0
    max_lag = int(data.lm.max()) if data.lm.size else 0
    return 2 * (data.n_jobs * max_pt + max_lag) + 1


def _v2_value_bound(data: LowerBoundData, release: np.ndarray) -> int:
    """Upper bound on the magnitude of any intermediate v2 value."""
    release_max = int(release.max()) if release.size else 0
    return release_max + 4 * _v2_big_sentinel(data) + 1


def _v2_gemm_data(data: LowerBoundData, ftype: np.dtype) -> _V2GemmData:
    cache = data._v2_gemm_cache
    key = np.dtype(ftype).name
    if key not in cache:
        cache[key] = _V2GemmData(data, ftype)
    return cache[key]


def _lower_bound_batch_v2_gemm(
    data: LowerBoundData,
    mask_a: np.ndarray,
    rel_a: np.ndarray,
    include_one_machine: bool,
    ftype: np.dtype,
) -> np.ndarray:
    """Closed-form v2 evaluation: one BLAS product per Johnson position.

    Receives only the *active* (incomplete) sub-problems; returns their
    ``(B_active,)`` bounds.  All float arithmetic operates on integers far
    below the mantissa limit of ``ftype`` (guarded by
    :func:`_v2_value_bound`), so the results are exact and bit-identical to
    the int64 reference once converted back.
    """
    n, n_couples = data.n_jobs, data.n_couples
    gd = _v2_gemm_data(data, ftype)

    # Transposed — (axis, B) — copies so every chunked slice keeps the long
    # batch dimension contiguous (strided inner loops defeat SIMD).
    mask_t = np.ascontiguousarray(mask_a.T)  # (n, B_active)
    rel_t = np.ascontiguousarray(rel_a.T).astype(gd.ftype)  # (m, B_active)
    m2 = data.mm[:, 1]
    n_active = mask_a.shape[0]
    best = np.empty(n_active, dtype=np.int64)

    chunk = min(_V2_GEMM_CHUNK, n_active)
    running, target, indicators = gd.workspace(n, n_couples, chunk)
    for start in range(0, n_active, chunk):
        end = min(start + chunk, n_active)
        width = end - start
        full = width == chunk

        u = indicators[:, :width] if full else np.empty((n + 1, width), dtype=gd.ftype)
        u[:n] = ~mask_t[:, start:end]
        u[n] = 1.0

        # QM (transposed): minimal tails over the unscheduled jobs.
        masked_tails = np.where(
            mask_t[:, None, start:end], np.inf, gd.tails_t.T[:, :, None]
        )  # (n, m, width)
        qm_t = masked_tails.min(axis=0)  # (m, width)

        if full:
            cand_max, cand = running, target
            np.dot(gd.kj[0], u, out=cand_max)
        else:
            cand_max = np.dot(gd.kj[0], u)
            cand = np.empty_like(cand_max)
        for j in range(1, n):
            if full:
                np.dot(gd.kj[j], u, out=cand)
            else:
                cand = np.dot(gd.kj[j], u)
            np.maximum(cand_max, cand, out=cand_max)

        work_b = np.dot(gd.bf, u)  # (C, width): B_N per couple
        front1 = rel_t[:, start:end][data.mm[:, 0]]  # (C, width)
        front2 = rel_t[:, start:end][m2]
        front1 += cand_max[:, :width]
        front2 += work_b
        np.maximum(front2, front1, out=front2)
        front2 += qm_t[m2]
        value = front2

        if include_one_machine:
            loads = np.dot(gd.ptm_t, u[:n])  # (m, width)
            loads += rel_t[:, start:end]
            loads += qm_t
            one_mach = loads.max(axis=0)
            best[start:end] = np.maximum(value.max(axis=0), one_mach).astype(np.int64)
        else:
            best[start:end] = value.max(axis=0).astype(np.int64)

    return best


def _lower_bound_batch_v2_scan(
    data: LowerBoundData,
    mask_a: np.ndarray,
    rel_a: np.ndarray,
    include_one_machine: bool,
    dtype: np.dtype,
) -> np.ndarray:
    """Couple-vectorised Johnson scan: ``(B, n_couples)`` front tensors.

    Receives only the *active* (incomplete) sub-problems; returns their
    ``(B_active,)`` bounds.  Carries ``t_m1`` / ``t_m2`` for all couples at
    once and loops only over the ``n_jobs`` scan positions — ``n``
    interpreter iterations instead of the v1 kernel's ``n_couples * n``.
    Scheduled jobs contribute zero to every tensor; the candidate of a
    masked step is then ``t_m1`` which can never win the max
    (``t_m2 >= t_m1`` is re-established by the first unmasked step, and
    every active sub-problem has at least one unscheduled job in every
    couple's order), so no sentinel masking is needed.
    """
    n = data.n_jobs
    unscheduled = ~mask_a
    ct = data.couple_tensors()
    a_sc = ct.a_times.astype(dtype)
    b_sc = ct.b_times.astype(dtype)
    alg_sc = (ct.a_times + ct.lags).astype(dtype)
    jm = data.jm
    big = np.int64(np.iinfo(np.int64).max // 4)
    n_active = mask_a.shape[0]
    best = np.empty(n_active, dtype=np.int64)

    chunk = _V2_SCAN_CHUNK
    for start in range(0, n_active, chunk):
        end = min(start + chunk, n_active)
        mask_c = mask_a[start:end]
        unsched_c = unscheduled[start:end]
        rel_c = rel_a[start:end]

        tails = np.where(mask_c[:, :, None], big, data.tails[None, :, :])
        qm = tails.min(axis=1)  # (width, m)

        present = unsched_c[:, jm]  # (width, n, C) in Johnson order
        a_m = present * a_sc[None]
        b_m = present * b_sc[None]
        alg_m = present * alg_sc[None]

        t_m1 = rel_c[:, ct.m1].astype(dtype)
        t_m2 = rel_c[:, ct.m2].astype(dtype)
        ready = np.empty_like(t_m1)
        for i in range(n):
            np.add(t_m1, alg_m[:, i], out=ready)
            np.maximum(t_m2, ready, out=t_m2)
            np.add(t_m1, a_m[:, i], out=t_m1)
            np.add(t_m2, b_m[:, i], out=t_m2)
        value = t_m2.astype(np.int64) + qm[:, ct.m2]
        chunk_best = value.max(axis=1)

        if include_one_machine:
            loads = unsched_c.astype(np.int64) @ data.ptm
            one_mach = (rel_c + loads + qm).max(axis=1)
            chunk_best = np.maximum(chunk_best, one_mach)
        best[start:end] = chunk_best

    return best


def lower_bound_batch_v2(
    data: LowerBoundData,
    scheduled_mask: np.ndarray,
    release: np.ndarray,
    include_one_machine: bool = False,
    strategy: str | None = None,
) -> np.ndarray:
    """Couple-vectorised batched lower bound (kernel v2).

    Computes exactly what :func:`lower_bound_batch` computes — bit-identical
    values — but vectorises the machine-couple axis as well, through two
    interchangeable evaluation strategies:

    ``"gemm"``
        The Johnson scan in closed form: the candidate values of every
        (job, couple) pair are a single matrix product of the unscheduled
        indicator vectors with a precomputed weight matrix
        (:class:`_V2GemmData`), reduced by a running maximum.  Preferred for
        ``n_jobs <= 128``; float arithmetic is exact under the
        :func:`_v2_value_bound` guard (float32 below ``2**24``, float64
        below ``2**53``).
    ``"scan"``
        ``(B, n_couples)`` front/tail tensors marching through the Johnson
        positions — ``n_jobs`` interpreter iterations instead of v1's
        ``n_couples * n_jobs``.  Integer tiers (int16/int32/int64) are
        selected by the same value guard.

    ``strategy=None`` picks automatically.  Pools are processed in
    cache-sized tiles, so temporary memory stays bounded for the paper's
    largest (262144 sub-problem) launches.

    Parameters and return value are identical to :func:`lower_bound_batch`.
    """
    scheduled_mask = np.asarray(scheduled_mask, dtype=bool)
    release = np.asarray(release, dtype=np.int64)
    if scheduled_mask.ndim != 2 or scheduled_mask.shape[1] != data.n_jobs:
        raise ValueError(f"scheduled_mask must have shape (B, {data.n_jobs})")
    if release.shape != (scheduled_mask.shape[0], data.n_machines):
        raise ValueError(f"release must have shape ({scheduled_mask.shape[0]}, {data.n_machines})")
    if strategy not in (None, "gemm", "scan"):
        raise ValueError(f"unknown v2 strategy {strategy!r}")

    if scheduled_mask.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    if data.n_couples == 0:
        # m == 1: only the single-machine relaxation applies; the v1 kernel
        # already evaluates it fully vectorised.
        return lower_bound_batch(
            data, scheduled_mask, release, include_one_machine=include_one_machine
        )

    value_bound = _v2_value_bound(data, release)
    if strategy is None:
        strategy = "gemm" if data.n_jobs <= _V2_GEMM_MAX_JOBS else "scan"

    # Complete schedules are resolved here once; the strategy kernels only
    # ever see the active (incomplete) sub-problems.
    complete = scheduled_mask.all(axis=1)
    bounds = np.zeros(scheduled_mask.shape[0], dtype=np.int64)
    bounds[complete] = release[complete, -1]
    active = np.flatnonzero(~complete)
    if active.size == 0:
        return bounds
    mask_a = scheduled_mask[active]
    rel_a = release[active]

    if strategy == "gemm":
        if value_bound < 2**24:
            ftype: np.dtype = np.float32
        elif value_bound < 2**53:
            ftype = np.float64
        else:  # pragma: no cover - pathological magnitudes
            return lower_bound_batch(
                data, scheduled_mask, release, include_one_machine=include_one_machine
            )
        bounds[active] = _lower_bound_batch_v2_gemm(
            data, mask_a, rel_a, include_one_machine, ftype
        )
        return bounds

    if value_bound < 2**15:
        dtype: np.dtype = np.int16
    elif value_bound < 2**31:
        dtype = np.int32
    else:
        dtype = np.int64
    bounds[active] = _lower_bound_batch_v2_scan(data, mask_a, rel_a, include_one_machine, dtype)
    return bounds


#: The batched kernel implementations, keyed by the engine selector value.
BATCH_KERNELS = {"v1": lower_bound_batch, "v2": lower_bound_batch_v2}


def get_batch_kernel(kernel: str):
    """Resolve a ``"v1"`` / ``"v2"`` selector to the batched kernel function."""
    try:
        return BATCH_KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {sorted(BATCH_KERNELS)}"
        ) from None
