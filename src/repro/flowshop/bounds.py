"""The Lenstra / Lageweg / Rinnooy Kan lower bound for the permutation FSP.

This module implements the bounding operator that the paper off-loads to the
GPU.  It exposes the six data structures analysed in Table I of the paper:

=====  =======================================================  ==============
Name   Meaning                                                  Size
=====  =======================================================  ==============
PTM    processing times of the jobs                             ``n x m``
LM     lags of every job for every machine couple               ``n x m(m-1)/2``
JM     Johnson order of all jobs for every machine couple       ``n x m(m-1)/2``
RM     earliest starting times (machine release times)          ``m`` (per node)
QM     lowest latency times (minimal tails of remaining jobs)   ``m`` (per node)
MM     the machine couples ``(M_k, M_l)``, ``k < l``            ``m(m-1)/2 x 2``
=====  =======================================================  ==============

``PTM``, ``LM``, ``JM`` and ``MM`` only depend on the instance and are
precomputed once by :class:`LowerBoundData`; ``RM`` and ``QM`` depend on the
sub-problem (partial schedule) and are recomputed per node — exactly as in
the paper's CUDA kernel.

Two evaluation paths are provided:

* :func:`lower_bound` — scalar evaluation of a single sub-problem, a direct
  transcription of the paper's ``computeLB`` pseudo-code (Figure 2).
* :func:`lower_bound_batch` — vectorised evaluation of a *pool* of
  sub-problems at once.  This is the functional equivalent of the GPU
  kernel: one "thread" per sub-problem, all threads marching through the
  same machine couples and Johnson orders in lock-step (which is also why
  the kernel is so GPU friendly — the control flow is identical across the
  pool).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.johnson import johnson_order_with_lags

__all__ = [
    "machine_couples",
    "LowerBoundData",
    "DataStructureComplexity",
    "lower_bound",
    "lower_bound_batch",
    "one_machine_bound",
]


def machine_couples(n_machines: int) -> np.ndarray:
    """All ordered machine couples ``(k, l)`` with ``k < l``.

    Returns an ``(m(m-1)/2, 2)`` int64 array; this is the ``MM`` structure.
    Couples are enumerated in lexicographic order which keeps the mapping
    between the couple index and ``(k, l)`` deterministic across the scalar
    kernel, the batched kernel and the GPU simulator.
    """
    if n_machines < 1:
        raise ValueError("n_machines must be >= 1")
    pairs = [(k, l) for k in range(n_machines) for l in range(k + 1, n_machines)]
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


@dataclass(frozen=True)
class DataStructureComplexity:
    """Size / access-count formulas of Table I of the paper.

    The counts are parametrised by ``n`` (total jobs), ``m`` (machines) and
    ``n_prime`` (jobs still to schedule in the sub-problem being bounded).
    ``bytes_per_element`` defaults to 4 (the C implementation uses ``int``).
    """

    n: int
    m: int
    bytes_per_element: int = 4

    # ------------------------------------------------------------------ #
    # Sizes (number of elements)
    # ------------------------------------------------------------------ #
    @property
    def n_couples(self) -> int:
        return self.m * (self.m - 1) // 2

    @property
    def ptm_size(self) -> int:
        return self.n * self.m

    @property
    def lm_size(self) -> int:
        return self.n * self.n_couples

    @property
    def jm_size(self) -> int:
        return self.n * self.n_couples

    @property
    def rm_size(self) -> int:
        return self.m

    @property
    def qm_size(self) -> int:
        return self.m

    @property
    def mm_size(self) -> int:
        return self.m * (self.m - 1)

    def sizes(self) -> dict[str, int]:
        """Element counts for every structure, keyed by the paper's names."""
        return {
            "PTM": self.ptm_size,
            "LM": self.lm_size,
            "JM": self.jm_size,
            "RM": self.rm_size,
            "QM": self.qm_size,
            "MM": self.mm_size,
        }

    def sizes_bytes(self) -> dict[str, int]:
        """Memory footprint in bytes for every structure."""
        return {k: v * self.bytes_per_element for k, v in self.sizes().items()}

    # ------------------------------------------------------------------ #
    # Access counts (per lower-bound evaluation)
    # ------------------------------------------------------------------ #
    def accesses(self, n_prime: int | None = None) -> dict[str, int]:
        """Number of accesses per LB evaluation (Table I, third column).

        ``n_prime`` is the number of remaining (unscheduled) jobs of the
        sub-problem; it defaults to ``n`` (root node).
        """
        n_prime = self.n if n_prime is None else int(n_prime)
        if not 0 <= n_prime <= self.n:
            raise ValueError(f"n_prime must be in [0, {self.n}]")
        half = self.m * (self.m - 1) // 2
        return {
            "PTM": n_prime * self.m * (self.m - 1),
            "LM": n_prime * half,
            "JM": self.n * half,
            "RM": self.m * (self.m - 1),
            "QM": half,
            "MM": self.m * (self.m - 1),
        }

    def table_rows(self, n_prime: int | None = None) -> list[tuple[str, int, int]]:
        """Rows ``(name, size, accesses)`` in the order used by Table I."""
        sizes = self.sizes()
        acc = self.accesses(n_prime)
        return [(name, sizes[name], acc[name]) for name in ("PTM", "LM", "JM", "RM", "QM", "MM")]


class LowerBoundData:
    """Precomputed, instance-level data of the lower bound.

    Building this object corresponds to the host-side preparation step of
    the paper: the matrices are generated once on the CPU and then copied to
    the device.  The object is immutable after construction; all arrays have
    their writeable flag cleared so they can be shared with the GPU
    simulator's memory model without copies.

    Attributes
    ----------
    ptm:
        ``(n, m)`` processing times (``PTM``).
    mm:
        ``(n_couples, 2)`` machine couples (``MM``).
    lm:
        ``(n, n_couples)`` lags (``LM``): ``lm[j, c]`` is the total
        processing time of job ``j`` on the machines strictly between the
        two machines of couple ``c``.
    jm:
        ``(n, n_couples)`` Johnson matrix (``JM``): ``jm[i, c]`` is the job
        in position ``i`` of the Johnson-with-lags order for couple ``c``.
    tails:
        ``(n, m)`` per-job tails: ``tails[j, k]`` is the total processing
        time of job ``j`` on machines ``k+1 .. m-1``.  The per-node ``QM``
        vector is the column-wise minimum of this matrix over the remaining
        jobs.
    """

    __slots__ = ("instance", "ptm", "mm", "lm", "jm", "tails", "_complexity")

    def __init__(self, instance: FlowShopInstance):
        self.instance = instance
        pt = instance.processing_times
        n, m = pt.shape

        mm = machine_couples(m)
        n_couples = mm.shape[0]

        lm = np.zeros((n, n_couples), dtype=np.int64)
        jm = np.zeros((n, n_couples), dtype=np.int64)
        # cumulative sums along machines make each lag an O(1) lookup
        csum = np.concatenate(
            [np.zeros((n, 1), dtype=np.int64), np.cumsum(pt, axis=1, dtype=np.int64)], axis=1
        )
        for c in range(n_couples):
            k, l = int(mm[c, 0]), int(mm[c, 1])
            # lag = sum of processing times on machines k+1 .. l-1
            lm[:, c] = csum[:, l] - csum[:, k + 1]
            jm[:, c] = johnson_order_with_lags(pt[:, k], pt[:, l], lm[:, c])

        # tails[j, k] = total processing of job j after machine k
        #             = csum[j, m] - csum[j, k + 1]
        tails = (csum[:, -1][:, None] - csum[:, 1:]).astype(np.int64)

        self.ptm = pt
        self.mm = mm
        self.lm = lm
        self.jm = jm
        self.tails = tails
        for arr in (self.mm, self.lm, self.jm, self.tails):
            arr.setflags(write=False)
        self._complexity = DataStructureComplexity(n=n, m=m)

    # ------------------------------------------------------------------ #
    @property
    def n_jobs(self) -> int:
        return self.instance.n_jobs

    @property
    def n_machines(self) -> int:
        return self.instance.n_machines

    @property
    def n_couples(self) -> int:
        return int(self.mm.shape[0])

    @property
    def complexity(self) -> DataStructureComplexity:
        """Table I complexity descriptor for this instance."""
        return self._complexity

    def arrays(self) -> dict[str, np.ndarray]:
        """The device-transferable arrays, keyed by the paper's names."""
        return {"PTM": self.ptm, "LM": self.lm, "JM": self.jm, "MM": self.mm, "TAILS": self.tails}

    # ------------------------------------------------------------------ #
    # Per-node helpers (RM / QM)
    # ------------------------------------------------------------------ #
    def machine_release_times(self, prefix: Sequence[int]) -> np.ndarray:
        """``RM`` — per-machine completion times of the scheduled prefix."""
        front = np.zeros(self.n_machines, dtype=np.int64)
        pt = self.ptm
        for job in prefix:
            prev = 0
            for k in range(self.n_machines):
                start = front[k] if front[k] > prev else prev
                prev = start + pt[job, k]
                front[k] = prev
        return front

    def min_tails(self, scheduled_mask: np.ndarray) -> np.ndarray:
        """``QM`` — minimal remaining tail per machine over unscheduled jobs."""
        if scheduled_mask.all():
            return np.zeros(self.n_machines, dtype=np.int64)
        return self.tails[~scheduled_mask].min(axis=0)


def _scheduled_mask(n_jobs: int, prefix: Sequence[int]) -> np.ndarray:
    mask = np.zeros(n_jobs, dtype=bool)
    for job in prefix:
        if not 0 <= job < n_jobs:
            raise ValueError(f"job index {job} out of range")
        if mask[job]:
            raise ValueError(f"job {job} scheduled twice")
        mask[job] = True
    return mask


def one_machine_bound(
    data: LowerBoundData,
    prefix: Sequence[int],
    release: np.ndarray | None = None,
) -> int:
    """Single-machine relaxation bound (used as a complement / fallback).

    For every machine ``k`` the makespan is at least
    ``RM[k] + sum of remaining work on k + QM[k]``.  This bound is weaker
    than the two-machine bound but is exact for ``m == 1`` and provides the
    base case the couple-based kernel cannot cover.
    """
    mask = _scheduled_mask(data.n_jobs, prefix)
    rm = data.machine_release_times(prefix) if release is None else np.asarray(release, dtype=np.int64)
    if mask.all():
        return int(rm[-1])
    qm = data.min_tails(mask)
    remaining = data.ptm[~mask]
    loads = remaining.sum(axis=0)
    return int(np.max(rm + loads + qm))


def lower_bound(
    data: LowerBoundData,
    prefix: Sequence[int],
    release: np.ndarray | None = None,
    include_one_machine: bool = False,
) -> int:
    """Scalar lower bound of one sub-problem (the paper's ``computeLB``).

    Parameters
    ----------
    data:
        Precomputed instance-level structures.
    prefix:
        The scheduled jobs of the sub-problem (partial schedule), in order.
    release:
        Optional precomputed ``RM`` vector for the prefix; avoids an
        ``O(l * m)`` recomputation when the caller (the B&B engine) already
        maintains release times incrementally.
    include_one_machine:
        Also take the max with the single-machine relaxation.  The paper's
        kernel does not (with ``m = 20`` the couple bound dominates), but it
        is required for ``m == 1`` and harmless otherwise.

    Returns
    -------
    int
        A valid lower bound on the makespan of every completion of
        ``prefix``.  For a complete schedule the bound equals its makespan.
    """
    mask = _scheduled_mask(data.n_jobs, prefix)
    rm = data.machine_release_times(prefix) if release is None else np.asarray(release, dtype=np.int64)
    if rm.shape != (data.n_machines,):
        raise ValueError(f"release vector must have shape ({data.n_machines},)")

    if mask.all():
        return int(rm[-1])

    qm = data.min_tails(mask)
    best = 0

    ptm = data.ptm
    jm = data.jm
    lm = data.lm
    mm = data.mm

    for c in range(data.n_couples):
        m1 = int(mm[c, 0])
        m2 = int(mm[c, 1])
        t_m1 = int(rm[m1])
        t_m2 = int(rm[m2])
        for i in range(data.n_jobs):
            job = int(jm[i, c])
            if mask[job]:
                continue
            t_m1 += int(ptm[job, m1])
            ready = t_m1 + int(lm[job, c])
            if ready > t_m2:
                t_m2 = ready
            t_m2 += int(ptm[job, m2])
        value = t_m2 + int(qm[m2])
        if value > best:
            best = value

    if include_one_machine or data.n_couples == 0:
        best = max(best, one_machine_bound(data, prefix, release=rm))
    return int(best)


def lower_bound_batch(
    data: LowerBoundData,
    scheduled_mask: np.ndarray,
    release: np.ndarray,
    include_one_machine: bool = False,
) -> np.ndarray:
    """Vectorised lower bound of a pool of sub-problems.

    This function reproduces, on the host, exactly what the paper's CUDA
    kernel computes on the device: one logical thread per sub-problem, all
    threads walking the same Johnson orders.  The vectorisation is over the
    pool dimension (``B`` sub-problems evaluated simultaneously), which is
    also the axis the GPU parallelises over.

    Parameters
    ----------
    data:
        Precomputed instance-level structures.
    scheduled_mask:
        ``(B, n)`` boolean matrix; ``scheduled_mask[b, j]`` is True when job
        ``j`` is already scheduled in sub-problem ``b``.
    release:
        ``(B, m)`` matrix of per-machine release times (``RM``) of every
        sub-problem.
    include_one_machine:
        See :func:`lower_bound`.

    Returns
    -------
    numpy.ndarray
        ``(B,)`` int64 vector of lower bounds, bit-identical to calling
        :func:`lower_bound` on every sub-problem individually.
    """
    scheduled_mask = np.asarray(scheduled_mask, dtype=bool)
    release = np.asarray(release, dtype=np.int64)
    if scheduled_mask.ndim != 2 or scheduled_mask.shape[1] != data.n_jobs:
        raise ValueError(f"scheduled_mask must have shape (B, {data.n_jobs})")
    if release.shape != (scheduled_mask.shape[0], data.n_machines):
        raise ValueError(
            f"release must have shape ({scheduled_mask.shape[0]}, {data.n_machines})"
        )

    batch = scheduled_mask.shape[0]
    if batch == 0:
        return np.zeros(0, dtype=np.int64)

    ptm = data.ptm
    jm = data.jm
    lm = data.lm
    mm = data.mm

    complete = scheduled_mask.all(axis=1)
    bounds = np.zeros(batch, dtype=np.int64)
    bounds[complete] = release[complete, -1]

    active = ~complete
    if not active.any():
        return bounds

    mask_a = scheduled_mask[active]
    rel_a = release[active]
    n_active = mask_a.shape[0]

    # QM: per-node minimal tails over unscheduled jobs (masked min).
    big = np.int64(np.iinfo(np.int64).max // 4)
    tails = np.where(mask_a[:, :, None], big, data.tails[None, :, :])
    qm = tails.min(axis=1)  # (B_active, m)

    unscheduled = ~mask_a  # (B_active, n)
    best = np.zeros(n_active, dtype=np.int64)

    for c in range(data.n_couples):
        m1 = int(mm[c, 0])
        m2 = int(mm[c, 1])
        order = jm[:, c]  # (n,)
        a_times = ptm[order, m1]  # (n,)
        b_times = ptm[order, m2]  # (n,)
        lags = lm[order, c]  # (n,)
        present = unscheduled[:, order]  # (B_active, n) in Johnson order

        t_m1 = rel_a[:, m1].astype(np.int64).copy()
        t_m2 = rel_a[:, m2].astype(np.int64).copy()
        for i in range(data.n_jobs):
            sel = present[:, i]
            if not sel.any():
                continue
            t_m1 = t_m1 + np.where(sel, a_times[i], 0)
            ready = t_m1 + lags[i]
            t_m2 = np.where(sel & (ready > t_m2), ready, t_m2)
            t_m2 = t_m2 + np.where(sel, b_times[i], 0)
        value = t_m2 + qm[:, m2]
        best = np.maximum(best, value)

    if include_one_machine or data.n_couples == 0:
        loads = unscheduled.astype(np.int64) @ ptm  # (B_active, m)
        one_mach = (rel_a + loads + qm).max(axis=1)
        best = np.maximum(best, one_mach)

    bounds[active] = best
    return bounds
