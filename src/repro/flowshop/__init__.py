"""Permutation Flow-Shop Scheduling Problem (FSP) substrate.

This package provides everything the Branch-and-Bound engines need to reason
about the permutation flow-shop problem studied by the paper:

* :class:`~repro.flowshop.instance.FlowShopInstance` — problem data (the
  ``n x m`` processing-time matrix) plus validation helpers.
* :mod:`~repro.flowshop.taillard` — Taillard's benchmark instance generator
  (the 1993 linear-congruential scheme) and a registry of named instances.
* :mod:`~repro.flowshop.schedule` — partial / complete schedules and
  makespan evaluation.
* :mod:`~repro.flowshop.johnson` — Johnson's optimal two-machine algorithm
  and its "with lags" variant used by the lower bound.
* :mod:`~repro.flowshop.bounds` — the Lenstra / Lageweg / Rinnooy Kan lower
  bound, including the six data structures (``PTM``, ``LM``, ``JM``, ``RM``,
  ``QM``, ``MM``) whose sizes and access frequencies drive the paper's
  data-placement analysis (Table I).
* :mod:`~repro.flowshop.neh` — the NEH constructive heuristic used to seed
  the upper bound.
* :mod:`~repro.flowshop.generators` — random / structured instance families
  for tests and benchmarks.
"""

from repro.flowshop.instance import FlowShopInstance
from repro.flowshop.schedule import (
    Schedule,
    PartialSchedule,
    makespan,
    completion_times,
    partial_completion_times,
)
from repro.flowshop.johnson import (
    johnson_order,
    johnson_makespan,
    johnson_order_with_lags,
    two_machine_makespan,
    two_machine_makespan_with_lags,
)
from repro.flowshop.bounds import (
    LowerBoundData,
    DataStructureComplexity,
    get_batch_kernel,
    lower_bound,
    lower_bound_batch,
    lower_bound_batch_v2,
    one_machine_bound,
)
from repro.flowshop.taillard import (
    TaillardGenerator,
    taillard_instance,
    TAILLARD_CLASSES,
)
from repro.flowshop.neh import neh_heuristic, neh_order
from repro.flowshop.generators import (
    random_instance,
    correlated_instance,
    structured_instance,
)
from repro.flowshop.local_search import (
    iterated_descent,
    improved_upper_bound,
    insertion_neighbourhood_improve,
    swap_neighbourhood_improve,
)
from repro.flowshop.io import (
    read_taillard_file,
    write_taillard_file,
    read_json_file,
    write_json_file,
    loads_taillard,
    dumps_taillard,
)

__all__ = [
    "FlowShopInstance",
    "Schedule",
    "PartialSchedule",
    "makespan",
    "completion_times",
    "partial_completion_times",
    "johnson_order",
    "johnson_makespan",
    "johnson_order_with_lags",
    "two_machine_makespan",
    "two_machine_makespan_with_lags",
    "LowerBoundData",
    "DataStructureComplexity",
    "get_batch_kernel",
    "lower_bound",
    "lower_bound_batch",
    "lower_bound_batch_v2",
    "one_machine_bound",
    "TaillardGenerator",
    "taillard_instance",
    "TAILLARD_CLASSES",
    "neh_heuristic",
    "neh_order",
    "random_instance",
    "correlated_instance",
    "structured_instance",
    "iterated_descent",
    "improved_upper_bound",
    "insertion_neighbourhood_improve",
    "swap_neighbourhood_improve",
    "read_taillard_file",
    "write_taillard_file",
    "read_json_file",
    "write_json_file",
    "loads_taillard",
    "dumps_taillard",
]
