"""Flow-shop problem instance container.

The permutation flow-shop problem (FSP) schedules ``n`` jobs on ``m``
machines.  Every job visits the machines in the same order
``M1, M2, ..., Mm`` and every machine processes the jobs in the same
(permutation) order.  The only data defining an instance is therefore the
``n x m`` matrix of processing times ``p[i, k]`` — the uninterrupted time
job ``J_i`` spends on machine ``M_k``.

The objective considered by the paper (and by this library) is the makespan
``C_max``: the completion time of the last job on the last machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["FlowShopInstance"]


def _as_processing_matrix(processing_times: object) -> np.ndarray:
    """Coerce user input into a validated ``(n, m)`` int64 matrix."""
    matrix = np.asarray(processing_times)
    if matrix.ndim != 2:
        raise ValueError(
            f"processing_times must be a 2-D array of shape (n_jobs, n_machines); "
            f"got ndim={matrix.ndim}"
        )
    if matrix.shape[0] < 1 or matrix.shape[1] < 1:
        raise ValueError(
            f"instance must have at least one job and one machine; got shape {matrix.shape}"
        )
    if not np.issubdtype(matrix.dtype, np.number):
        raise TypeError(f"processing times must be numeric, got dtype {matrix.dtype}")
    if np.any(~np.isfinite(matrix.astype(np.float64))):
        raise ValueError("processing times must be finite")
    as_int = matrix.astype(np.int64)
    if not np.array_equal(as_int, matrix):
        raise ValueError("processing times must be integers (Taillard-style instances)")
    if np.any(as_int < 0):
        raise ValueError("processing times must be non-negative")
    return as_int


@dataclass(frozen=True)
class FlowShopInstance:
    """A permutation flow-shop instance.

    Parameters
    ----------
    processing_times:
        ``(n_jobs, n_machines)`` matrix of integer processing times.
        ``processing_times[i, k]`` is the time of job ``i`` on machine ``k``.
    name:
        Optional human-readable identifier (e.g. ``"ta021"`` or ``"200x20"``).
    metadata:
        Free-form mapping carrying provenance information (seed, generator,
        whether the instance is a synthetic stand-in for a published one).

    Notes
    -----
    Instances are immutable: the processing-time matrix is stored with the
    writeable flag cleared so that solver code can safely share it across
    threads and "device" buffers without defensive copies.
    """

    processing_times: np.ndarray
    name: str = ""
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        matrix = _as_processing_matrix(self.processing_times)
        matrix.setflags(write=False)
        object.__setattr__(self, "processing_times", matrix)
        object.__setattr__(self, "metadata", dict(self.metadata))

    # ------------------------------------------------------------------ #
    # Basic geometry
    # ------------------------------------------------------------------ #
    @property
    def n_jobs(self) -> int:
        """Number of jobs ``n``."""
        return int(self.processing_times.shape[0])

    @property
    def n_machines(self) -> int:
        """Number of machines ``m``."""
        return int(self.processing_times.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_jobs, n_machines)``."""
        return (self.n_jobs, self.n_machines)

    @property
    def total_processing_time(self) -> int:
        """Sum of all processing times (a trivial upper bound contributor)."""
        return int(self.processing_times.sum())

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def job_times(self, job: int) -> np.ndarray:
        """Processing times of ``job`` on every machine (length ``m``)."""
        self._check_job(job)
        return self.processing_times[job]

    def machine_times(self, machine: int) -> np.ndarray:
        """Processing times of every job on ``machine`` (length ``n``)."""
        self._check_machine(machine)
        return self.processing_times[:, machine]

    def machine_load(self, machine: int) -> int:
        """Total work assigned to ``machine``."""
        return int(self.machine_times(machine).sum())

    def job_total_time(self, job: int) -> int:
        """Total processing time of ``job`` across all machines."""
        return int(self.job_times(job).sum())

    def _check_job(self, job: int) -> None:
        if not 0 <= job < self.n_jobs:
            raise IndexError(f"job index {job} out of range [0, {self.n_jobs})")

    def _check_machine(self, machine: int) -> None:
        if not 0 <= machine < self.n_machines:
            raise IndexError(f"machine index {machine} out of range [0, {self.n_machines})")

    # ------------------------------------------------------------------ #
    # Derived instances
    # ------------------------------------------------------------------ #
    def restricted_to_jobs(self, jobs: Sequence[int]) -> "FlowShopInstance":
        """Return a new instance containing only ``jobs`` (in the given order)."""
        jobs = list(jobs)
        if len(jobs) == 0:
            raise ValueError("cannot restrict an instance to zero jobs")
        for job in jobs:
            self._check_job(job)
        if len(set(jobs)) != len(jobs):
            raise ValueError("duplicate job indices in restriction")
        sub = self.processing_times[np.asarray(jobs, dtype=np.int64)]
        meta = dict(self.metadata)
        meta["restricted_from"] = self.name or f"{self.n_jobs}x{self.n_machines}"
        meta["job_subset"] = tuple(int(j) for j in jobs)
        return FlowShopInstance(sub, name=f"{self.name}|{len(jobs)}jobs", metadata=meta)

    def restricted_to_machines(self, machines: Sequence[int]) -> "FlowShopInstance":
        """Return a new instance using only the given ``machines`` (in order)."""
        machines = list(machines)
        if len(machines) == 0:
            raise ValueError("cannot restrict an instance to zero machines")
        for machine in machines:
            self._check_machine(machine)
        if len(set(machines)) != len(machines):
            raise ValueError("duplicate machine indices in restriction")
        sub = self.processing_times[:, np.asarray(machines, dtype=np.int64)]
        meta = dict(self.metadata)
        meta["machine_subset"] = tuple(int(k) for k in machines)
        return FlowShopInstance(sub, name=f"{self.name}|{len(machines)}mach", metadata=meta)

    # ------------------------------------------------------------------ #
    # Bounds that need no schedule at all
    # ------------------------------------------------------------------ #
    def trivial_lower_bound(self) -> int:
        """A simple machine-load based lower bound on the optimal makespan.

        For each machine ``k`` the makespan is at least the total load of
        ``k`` plus the smallest possible head (work before ``k``) and tail
        (work after ``k``) over jobs.  This is weaker than the Johnson-based
        bound but is useful as a sanity check and as a first incumbent
        filter.
        """
        pt = self.processing_times
        best = 0
        for k in range(self.n_machines):
            heads = pt[:, :k].sum(axis=1)
            tails = pt[:, k + 1 :].sum(axis=1)
            load = int(pt[:, k].sum())
            head = int(heads.min()) if k > 0 else 0
            tail = int(tails.min()) if k + 1 < self.n_machines else 0
            best = max(best, head + load + tail)
        best = max(best, int(pt.sum(axis=1).max()))
        return best

    def trivial_upper_bound(self) -> int:
        """Sum of all processing times — valid for any schedule."""
        return self.total_processing_time

    # ------------------------------------------------------------------ #
    # Serialization helpers
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-Python representation (JSON friendly)."""
        return {
            "name": self.name,
            "n_jobs": self.n_jobs,
            "n_machines": self.n_machines,
            "processing_times": self.processing_times.tolist(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FlowShopInstance":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(payload["processing_times"], dtype=np.int64),
            name=str(payload.get("name", "")),
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence[int]], name: str = "") -> "FlowShopInstance":
        """Build an instance from an iterable of per-job processing-time rows."""
        return cls(np.asarray(list(rows), dtype=np.int64), name=name)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "unnamed"
        return f"FlowShopInstance({label}, n_jobs={self.n_jobs}, n_machines={self.n_machines})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowShopInstance):
            return NotImplemented
        return (
            self.shape == other.shape
            and bool(np.array_equal(self.processing_times, other.processing_times))
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.processing_times.tobytes()))
