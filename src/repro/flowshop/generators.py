"""Random and structured instance families for tests and benchmarks.

Besides the Taillard generator (the paper's benchmark), the test-suite and
the ablation benchmarks use a few additional instance families:

* :func:`random_instance` — i.i.d. uniform processing times with a
  configurable range (the Taillard distribution is ``U(1, 99)``).
* :func:`correlated_instance` — job-correlated times (some jobs are
  uniformly "long"), which stresses the upper-bound quality.
* :func:`structured_instance` — machine-correlated times with a dominant
  bottleneck machine, a regime where the two-machine bound is very tight.
"""

from __future__ import annotations

import numpy as np

from repro.flowshop.instance import FlowShopInstance

__all__ = ["random_instance", "correlated_instance", "structured_instance"]


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_instance(
    n_jobs: int,
    n_machines: int,
    seed: int | None = 0,
    low: int = 1,
    high: int = 99,
    name: str | None = None,
) -> FlowShopInstance:
    """Uniform random instance with processing times in ``[low, high]``."""
    if low < 0 or high < low:
        raise ValueError("require 0 <= low <= high")
    rng = _rng(seed)
    pt = rng.integers(low, high + 1, size=(n_jobs, n_machines), dtype=np.int64)
    return FlowShopInstance(
        pt,
        name=name or f"rand_{n_jobs}x{n_machines}_s{seed}",
        metadata={"generator": "uniform", "seed": seed, "low": low, "high": high},
    )


def correlated_instance(
    n_jobs: int,
    n_machines: int,
    seed: int | None = 0,
    spread: int = 20,
    name: str | None = None,
) -> FlowShopInstance:
    """Job-correlated instance: each job has a base size +/- ``spread``."""
    rng = _rng(seed)
    base = rng.integers(10, 90, size=(n_jobs, 1), dtype=np.int64)
    noise = rng.integers(-spread, spread + 1, size=(n_jobs, n_machines), dtype=np.int64)
    pt = np.clip(base + noise, 1, None)
    return FlowShopInstance(
        pt,
        name=name or f"corr_{n_jobs}x{n_machines}_s{seed}",
        metadata={"generator": "job-correlated", "seed": seed, "spread": spread},
    )


def structured_instance(
    n_jobs: int,
    n_machines: int,
    bottleneck: int | None = None,
    seed: int | None = 0,
    name: str | None = None,
) -> FlowShopInstance:
    """Instance with one dominant bottleneck machine.

    The bottleneck machine's processing times are drawn from ``U(60, 99)``
    while the other machines use ``U(1, 30)``; the optimal schedule is then
    largely determined by the bottleneck, which makes the two-machine lower
    bound involving that machine very tight — a useful regime for testing
    pruning efficiency.
    """
    rng = _rng(seed)
    if bottleneck is None:
        bottleneck = n_machines // 2
    if not 0 <= bottleneck < n_machines:
        raise ValueError("bottleneck machine index out of range")
    pt = rng.integers(1, 31, size=(n_jobs, n_machines), dtype=np.int64)
    pt[:, bottleneck] = rng.integers(60, 100, size=n_jobs, dtype=np.int64)
    return FlowShopInstance(
        pt,
        name=name or f"bott_{n_jobs}x{n_machines}_s{seed}",
        metadata={"generator": "bottleneck", "seed": seed, "bottleneck": bottleneck},
    )
