"""Johnson's algorithm for the two-machine flow shop, with and without lags.

Johnson (1954) showed that the two-machine permutation flow shop is solved
optimally in ``O(n log n)`` by ordering jobs as follows: jobs with
``a_j <= b_j`` first, by increasing ``a_j``; then jobs with ``a_j > b_j`` by
decreasing ``b_j`` (``a_j`` / ``b_j`` being the processing times on the first
and second machine).

The lower bound of Lageweg, Lenstra and Rinnooy Kan (1978) used by the paper
relaxes the ``m``-machine problem to a family of two-machine problems *with
lags*: for a machine couple ``(M_k, M_l)``, ``k < l``, job ``j`` has a lag
``d_j = sum_{u=k+1}^{l-1} p[j, u]`` that must elapse between its completion
on ``M_k`` and its start on ``M_l``.  The optimal order for this relaxation
is Johnson's order applied to the modified times ``(a_j + d_j, d_j + b_j)``.
Both the plain and the lagged variants are provided here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "johnson_comparator_key",
    "johnson_order",
    "johnson_order_with_lags",
    "two_machine_makespan",
    "two_machine_makespan_with_lags",
    "johnson_makespan",
]


def _as_times(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    return arr


def johnson_comparator_key(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sort key implementing Johnson's rule as a single lexicographic pass.

    Jobs belong to group 0 when ``a_j <= b_j`` (sorted by increasing ``a_j``)
    and to group 1 otherwise (sorted by decreasing ``b_j``).  Returning a
    structured key lets callers obtain a *stable, total* order, which matters
    for the Branch-and-Bound use-case: the order restricted to any subset of
    jobs is still a Johnson order of that subset, so the precomputed ``JM``
    matrix can be reused for every sub-problem (this is exactly what the
    paper's kernel does when it skips already-scheduled jobs).
    """
    a = _as_times(a, "a")
    b = _as_times(b, "b")
    if a.size != b.size:
        raise ValueError("a and b must have the same length")
    group = (a > b).astype(np.int64)
    primary = np.where(group == 0, a, -b)
    # key = (group, primary, job index) -> encode as a record array for lexsort
    return np.rec.fromarrays([group, primary, np.arange(a.size)], names="group,primary,job")


def johnson_order(a: Sequence[int] | np.ndarray, b: Sequence[int] | np.ndarray) -> np.ndarray:
    """Optimal job order for the two-machine flow shop (Johnson, 1954).

    Parameters
    ----------
    a, b:
        Processing times on the first and second machine respectively.

    Returns
    -------
    numpy.ndarray
        Permutation of job indices minimising the two-machine makespan.
    """
    a = _as_times(a, "a")
    b = _as_times(b, "b")
    if a.size != b.size:
        raise ValueError("a and b must have the same length")
    group = (a > b).astype(np.int64)
    primary = np.where(group == 0, a, -b)
    order = np.lexsort((np.arange(a.size), primary, group))
    return order.astype(np.int64)


def johnson_order_with_lags(
    a: Sequence[int] | np.ndarray,
    b: Sequence[int] | np.ndarray,
    lags: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Optimal order for the two-machine flow shop *with lags*.

    Applies Johnson's rule to the modified processing times
    ``(a_j + d_j, d_j + b_j)`` which is optimal for the lagged relaxation
    (Lageweg et al., 1978).
    """
    a = _as_times(a, "a")
    b = _as_times(b, "b")
    lags_arr = _as_times(lags, "lags")
    if not (a.size == b.size == lags_arr.size):
        raise ValueError("a, b and lags must have the same length")
    return johnson_order(a + lags_arr, lags_arr + b)


def two_machine_makespan(
    a: Sequence[int] | np.ndarray,
    b: Sequence[int] | np.ndarray,
    order: Sequence[int] | np.ndarray | None = None,
) -> int:
    """Makespan of a two-machine flow shop under ``order`` (default: given order)."""
    return two_machine_makespan_with_lags(
        a, b, np.zeros(len(np.atleast_1d(a)), dtype=np.int64), order
    )


def two_machine_makespan_with_lags(
    a: Sequence[int] | np.ndarray,
    b: Sequence[int] | np.ndarray,
    lags: Sequence[int] | np.ndarray,
    order: Sequence[int] | np.ndarray | None = None,
    start_a: int = 0,
    start_b: int = 0,
) -> int:
    """Makespan of the two-machine-with-lags relaxation for a given order.

    Machine 1 is busy until ``start_a`` and machine 2 until ``start_b``
    before the first job starts (these are the per-machine release times of
    the partial schedule in the Branch-and-Bound use-case).

    The recurrence mirrors lines (11)-(15) of the paper's pseudo-code::

        tM1 += a[job]
        tM2  = max(tM2, tM1 + lag[job]) + b[job]
    """
    a = _as_times(a, "a")
    b = _as_times(b, "b")
    lags_arr = _as_times(lags, "lags")
    if not (a.size == b.size == lags_arr.size):
        raise ValueError("a, b and lags must have the same length")
    if order is None:
        order_arr = np.arange(a.size, dtype=np.int64)
    else:
        order_arr = np.asarray(list(order), dtype=np.int64)
        if sorted(order_arr.tolist()) != list(range(a.size)):
            raise ValueError("order must be a permutation of the job indices")
    t_m1 = int(start_a)
    t_m2 = int(start_b)
    for job in order_arr:
        t_m1 += int(a[job])
        ready = t_m1 + int(lags_arr[job])
        if ready > t_m2:
            t_m2 = ready
        t_m2 += int(b[job])
    return t_m2


def johnson_makespan(
    a: Sequence[int] | np.ndarray, b: Sequence[int] | np.ndarray
) -> int:
    """Optimal two-machine makespan (Johnson order applied, then evaluated)."""
    order = johnson_order(a, b)
    return two_machine_makespan(a, b, order)
